//! The paper's Figure 2, end to end: repeated detection at an interior
//! node, why one-shot detection fails, and failure recovery (Fig. 2(c)).
//!
//! ```text
//! cargo run --example fig2_scenario
//! ```

use ftscp::baselines::garg_waldecker::one_shot_definitely;
use ftscp::core::HierarchicalDetector;
use ftscp::simnet::{NodeId, Topology};
use ftscp::tree::SpanningTree;
use ftscp::vclock::ProcessId;
use ftscp::workload::scenarios;

fn main() {
    // The exact Figure 2 execution: x1 at P1; x2, x3 at P2; x4 at P3;
    // x5 at P4 (processes are 0-indexed here).
    let exec = scenarios::figure2();

    // Spanning tree of Fig. 2(a): P3 roots, P2 and P4 below it, P1 under
    // P2. The P2–P4 topology link is what Fig. 2(c) reconnects over.
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
    let tree = SpanningTree::from_parents(vec![
        Some(NodeId(1)),
        Some(NodeId(2)),
        None,
        Some(NodeId(2)),
    ]);

    // --- Why repeated detection is necessary (§III-A) ------------------
    // A one-shot detector at P2 freezes on {x1, x2}:
    let first = one_shot_definitely(&[exec.intervals[0].clone(), exec.intervals[1].clone()])
        .expect("P2's first solution");
    println!(
        "one-shot at P2 reports only {{x1, x2}} (covers {:?}) and hangs;",
        first.coverage()
    );
    println!("but {{x1, x2, x4, x5}} does NOT satisfy Definitely — the global");
    println!("detection needs P2's *second* solution {{x1, x3}}.\n");

    // --- The hierarchical algorithm handles it -------------------------
    let mut det = HierarchicalDetector::new(&tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }
    println!("hierarchical run (no failure):");
    println!(
        "  P2 found {} subtree solutions",
        det.solutions_at(ProcessId(1))
    );
    for d in det.root_solutions() {
        println!(
            "  global detection at {} covering {:?}",
            d.at_node, d.coverage
        );
    }

    // --- Figure 2(c): P3 fails -----------------------------------------
    let mut det = HierarchicalDetector::new(&tree);
    let (x1_feed, rest): (Vec<_>, Vec<_>) = exec
        .intervals_interleaved()
        .into_iter()
        .partition(|iv| iv.source == ProcessId(0));
    for iv in rest {
        det.feed(iv.clone());
    }
    println!("\nP3 (the root) crashes before x1 completes...");
    det.fail_node(ProcessId(2), &topo);
    println!(
        "  tree repaired: new root {}, children of new root: {:?}",
        det.tree().root(),
        det.tree().children(det.tree().root())
    );
    for iv in x1_feed {
        det.feed(iv.clone());
    }
    for d in det.root_solutions() {
        println!(
            "  partial predicate detected at {} covering {:?}",
            d.at_node, d.coverage
        );
    }
    assert_eq!(det.root_solutions().len(), 1);
    println!("\nThe failure cost only P3's own interval (x4) — detection of the");
    println!("predicate over the survivors {{P1, P2, P4}} continued (Fig. 2c).");
}
