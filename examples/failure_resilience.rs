//! Failure-resilience stress demo: a 31-node system loses a third of its
//! nodes one by one — including the root — while monitoring continues.
//! Contrast with the centralized baseline, which dies with its sink.
//!
//! ```text
//! cargo run --release --example failure_resilience
//! ```

use ftscp::baselines::CentralizedDetector;
use ftscp::core::HierarchicalDetector;
use ftscp::simnet::Topology;
use ftscp::tree::SpanningTree;
use ftscp::vclock::ProcessId;
use ftscp::workload::RandomExecution;

fn main() {
    let n = 31;
    let rounds = 12;
    let topo = Topology::dary_tree(n, 2, 1); // binary tree + escape links
    let tree = SpanningTree::balanced_dary(n, 2);
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(21)
        .build();

    let mut det = HierarchicalDetector::new(&tree);
    let mut central = CentralizedDetector::new(n);
    let mut central_alive = true;

    // Kill a node every ~36 intervals; victim 0 is the root AND the sink.
    let victims = [0u32, 5, 12, 3, 19, 8, 27, 14, 22, 9];
    let all: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
    let chunk = all.len() / (victims.len() + 1) + 1;

    let mut dead = vec![false; n];
    for (round, part) in all.chunks(chunk).enumerate() {
        for iv in part {
            if dead[iv.source.index()] {
                continue;
            }
            det.feed(iv.clone());
            if central_alive {
                central.feed(iv.clone());
            }
        }
        if round < victims.len() {
            let v = victims[round];
            dead[v as usize] = true;
            println!(
                "t{}: node {v} fails — hierarchical so far: {:3} detections{}",
                round,
                det.root_solutions().len(),
                if v == 0 {
                    "  ← the sink: centralized monitoring DIES here"
                } else {
                    ""
                }
            );
            det.fail_node(ProcessId(v), &topo);
            if v == 0 {
                central_alive = false;
            }
        }
    }

    println!("\nfinal score:");
    println!(
        "  hierarchical: {} detections, {} nodes still monitored",
        det.root_solutions().len(),
        det.tree().node_count()
    );
    println!(
        "  centralized: {} detections (sink died at t0 — nothing after)",
        central.solutions().len()
    );

    // Every hierarchical detection is genuine.
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .expect("all detections valid");

    // Coverage shrinks as the population does, but never to zero activity.
    let sizes: Vec<usize> = det
        .root_solutions()
        .iter()
        .map(|d| d.covered_processes().len())
        .collect();
    println!("\ncoverage per detection: {sizes:?}");
    assert!(det.root_solutions().len() > central.solutions().len());
    println!("\nhierarchical detection outlived 10 failures including the root.");
}
