//! Scripted fault injection against the deployed detector: one run, every
//! fault primitive, with the run's invariants re-checked afterwards.
//!
//! A 7-node binary monitoring hierarchy detects 6 rounds of a conjunctive
//! predicate while the script partitions a subtree, duplicates and delays
//! traffic, crashes a leaf, and skews one node's timers. The run is fully
//! deterministic: the same seed and plan always print the same report.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use ftscp::core::deploy::{DeployConfig, Deployment};
use ftscp::core::faultcheck::{detection_fingerprint, verify_detections};
use ftscp::core::monitor::MonitorConfig;
use ftscp::simnet::{FaultPlan, LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp::tree::SpanningTree;
use ftscp::workload::RandomExecution;

fn main() {
    let n = 7;
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(42)
        .build();
    println!(
        "workload: {} intervals across {} monitors",
        exec.total_intervals(),
        n
    );

    // The script: a subtree partition that heals, a window of duplicated
    // and delayed traffic, a mid-run leaf crash, and one slow clock.
    let plan = FaultPlan::new()
        .partition_at(SimTime::from_millis(50), &[NodeId(3)])
        .heal_at(SimTime::from_millis(150))
        .duplicate_between(SimTime::from_millis(20), SimTime::from_millis(250), 0.5)
        .reorder_between(
            SimTime::ZERO,
            SimTime::from_millis(400),
            SimTime::from_millis(10),
            0.5,
        )
        .crash_at(SimTime::from_millis(300), NodeId(5))
        .skew_timers_at(SimTime::ZERO, NodeId(4), 5, 4);
    println!("fault plan: {} scripted operations", plan.len());

    let run = || {
        let mut dep = Deployment::new(
            topo.clone(),
            tree.clone(),
            &exec,
            DeployConfig {
                sim: SimConfig {
                    seed: 7,
                    link: LinkModel {
                        min_delay: SimTime(200),
                        max_delay: SimTime(4_000),
                        drop_prob: 0.0,
                    },
                },
                monitor: MonitorConfig {
                    retransmit_period: Some(SimTime::from_millis(15)),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        dep.apply_fault_plan(&plan);
        dep.run();
        dep
    };

    let dep = run();
    let detections = dep.detections();
    println!(
        "network: {} messages, {} duplicated, {} undeliverable during the cut",
        dep.metrics().sends,
        dep.metrics().duplicated,
        dep.metrics().undeliverable
    );
    for d in &detections {
        println!(
            "  t={:>6}µs  root {} detected occurrence #{} covering {} processes",
            d.time.0,
            d.at_node,
            d.solution.index,
            d.covered_processes().len()
        );
    }

    // Invariant 1 — safety: every detection, checked against the ground
    // truth, still satisfies the overlap condition.
    let violations = verify_detections(&exec, &detections);
    println!("safety violations: {}", violations.len());
    for v in &violations {
        println!("  {v}");
    }

    // Invariant 2 — determinism: an identical second run produces a
    // byte-identical detection sequence.
    let fp1 = detection_fingerprint(&detections);
    let fp2 = detection_fingerprint(&run().detections());
    println!(
        "replay fingerprints: {fp1:#018x} vs {fp2:#018x} — {}",
        if fp1 == fp2 { "identical" } else { "DIVERGED" }
    );
    assert!(violations.is_empty());
    assert_eq!(fp1, fp2);
}
