//! Modular robotics — the paper's second motivating domain (refs [2],
//! [3]): a lattice of robot modules detecting a *configuration predicate*
//! ("every module in the group has latched") at the group level.
//!
//! Demonstrates the hierarchical algorithm's "finer-grained monitoring"
//! claim: the tree's interior nodes correspond to module groups, and each
//! group root detects the group predicate independently of the rest.
//!
//! ```text
//! cargo run --example modular_robotics
//! ```

use ftscp::core::HierarchicalDetector;
use ftscp::simnet::{NodeId, Topology};
use ftscp::tree::SpanningTree;
use ftscp::vclock::ProcessId;
use ftscp::workload::RandomExecution;

fn main() {
    // A 6×4 lattice of modules; links are physical latching faces.
    let (w, h) = (6, 4);
    let n = w * h;
    let topo = Topology::grid(w, h);
    let tree = SpanningTree::bfs(&topo, NodeId(0));
    println!(
        "lattice: {w}×{h} modules, tree height {}, max degree {}",
        tree.height(),
        tree.max_degree()
    );

    // Reconfiguration episodes: in each, modules latch (predicate true),
    // handshake with the episode coordinator, and unlatch. 30% of modules
    // sit some episodes out — their groups cannot complete those episodes.
    let exec = RandomExecution::builder(n)
        .intervals_per_process(8)
        .skip_prob(0.3)
        .seed(13)
        .build();

    let mut det = HierarchicalDetector::new(&tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }

    // Group-level view: each subtree root monitored its own group.
    println!("\nper-group detections (tree node → subtree size → detections):");
    let mut group_rows: Vec<(ProcessId, usize, u64)> = det
        .solution_counts()
        .into_iter()
        .filter(|(p, _)| !det.tree().is_leaf(NodeId(p.0)))
        .map(|(p, c)| (p, det.tree().subtree(NodeId(p.0)).len(), c))
        .collect();
    group_rows.sort_by_key(|&(_, size, _)| std::cmp::Reverse(size));
    for (node, size, count) in group_rows.iter().take(8) {
        println!("  {node}: group of {size} modules → {count} detections");
    }

    let global = det.root_solutions().len();
    println!("\nglobal configuration predicate detected {global} times");
    println!(
        "(with 30% skip probability, most episodes complete only at the\n\
         group level — exactly the finer-grained monitoring the paper\n\
         motivates for large-scale systems)"
    );

    // Smaller groups succeed more often than the whole lattice.
    let smallest_group = group_rows.last().unwrap();
    assert!(
        smallest_group.2 >= global as u64,
        "small groups detect at least as often as the global root"
    );
}
