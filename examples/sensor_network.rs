//! A wireless-sensor-network deployment — the paper's motivating setting:
//! 85 sensor nodes on a random geometric topology, monitored continuously
//! over a simulated non-FIFO multi-hop network, with node failures.
//!
//! The conjunctive predicate models "every sensor in the region reads
//! above threshold at a mutually consistent moment" — each round of the
//! workload is one such episode.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use ftscp::core::deploy::{DeployConfig, Deployment};
use ftscp::core::monitor::MonitorConfig;
use ftscp::simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp::tree::SpanningTree;
use ftscp::vclock::ProcessId;
use ftscp::workload::RandomExecution;

fn main() {
    let n = 85;

    // A connected random geometric graph: the classic WSN topology.
    let topo = Topology::random_geometric(n, 0.16, 99);
    println!(
        "topology: {} sensors, {} radio links",
        topo.len(),
        topo.edge_count()
    );

    // The monitoring tree: BFS from node 0 (the base station's neighbor
    // tree); every tree edge is a radio link.
    let tree = SpanningTree::bfs(&topo, NodeId(0));
    println!(
        "spanning tree: height {}, max degree {}",
        tree.height(),
        tree.max_degree()
    );

    // 12 monitoring episodes; sensors rarely miss one (duty cycling) or
    // spike without correlation. A round is globally detectable only if
    // no sensor skipped it, so even small per-sensor skip rates thin the
    // detections at n = 85.
    let exec = RandomExecution::builder(n)
        .intervals_per_process(12)
        .skip_prob(0.004)
        .solo_prob(0.003)
        .seed(5)
        .build();
    println!(
        "workload: {} intervals over {} causal messages",
        exec.total_intervals(),
        exec.messages
    );

    let mut dep = Deployment::new(
        topo,
        tree,
        &exec,
        DeployConfig {
            sim: SimConfig {
                seed: 5,
                link: LinkModel {
                    min_delay: SimTime(300),
                    max_delay: SimTime(6_000),
                    drop_prob: 0.0,
                },
            },
            interval_spacing: SimTime::from_millis(3),
            monitor: MonitorConfig {
                heartbeat_period: Some(SimTime::from_millis(200)),
                retransmit_period: None,
                ..Default::default()
            },
            repair_delay: SimTime::from_millis(450),
            ..Default::default()
        },
    );

    // Two sensors die mid-run.
    dep.schedule_crash(ProcessId(17), SimTime::from_millis(1_500));
    dep.schedule_crash(ProcessId(42), SimTime::from_millis(2_400));
    println!("\nsensors 17 and 42 will fail at 1.5s and 2.4s...");

    dep.run();

    let dets = dep.detections();
    println!("\n{} episodes detected:", dets.len());
    for d in &dets {
        println!(
            "  t={} at {} covering {} sensors",
            d.time,
            d.at_node,
            d.covered_processes().len()
        );
    }
    println!("\nnetwork cost:");
    println!(
        "  interval messages (1 hop each): {}",
        dep.interval_messages()
    );
    println!(
        "  total traffic incl. heartbeats: {} sends / {} hop-msgs",
        dep.metrics().sends,
        dep.metrics().hop_messages
    );
    println!(
        "  peak queue at any node: {} intervals",
        dep.peak_queue_len()
    );
    assert!(
        !dets.is_empty(),
        "monitoring must keep detecting through failures"
    );
    // Detection continued after the second crash (pre-crash intervals of
    // the dead sensors may legitimately still appear in early post-crash
    // detections — they were already aggregated above the failed nodes).
    let last = dets.last().unwrap();
    assert!(
        last.time > SimTime::from_millis(2_400),
        "monitoring kept going after the last failure (last detection at {})",
        last.time
    );
    println!("\nmonitoring survived both failures — detection never stopped.");
}
