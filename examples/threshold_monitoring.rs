//! From raw sensor values to predicate detections: the paper intro's
//! `Φ = "x_i > threshold ∧ …"` scenario, plus multi-predicate monitoring.
//!
//! Two conjunctive predicates are watched simultaneously over one tree:
//!   Φ_hot  — every sensor reads above 20 °C (heat episodes)
//!   Φ_low  — every sensor's battery is below 30 % (end-of-life episodes)
//!
//! ```text
//! cargo run --example threshold_monitoring
//! ```

use ftscp::core::{MultiDetector, PredicateId};
use ftscp::tree::SpanningTree;
use ftscp::workload::threshold::{from_series, GossipPattern, SensorFleet};

const HOT: PredicateId = PredicateId(0);
const LOW_BATTERY: PredicateId = PredicateId(1);

fn main() {
    let n = 9;

    // Temperature: hourly heat episodes, occasionally missed by a sensor.
    let temp_fleet = SensorFleet {
        n,
        steps: 96,
        period: 16,
        high_len: 5,
        low_value: 14.0,
        high_value: 27.0,
        noise: 2.0,
        dropout: 0.15,
        seed: 6,
    };
    // Battery: "low" episodes become common late in the trace — model as
    // inverted values against a (100 - battery) > 70 predicate.
    let battery_fleet = SensorFleet {
        n,
        steps: 96,
        period: 24,
        high_len: 8,
        low_value: 40.0,  // = battery 60%: fine
        high_value: 85.0, // = battery 15%: low
        noise: 3.0,
        dropout: 0.05,
        seed: 7,
    };

    let temp_exec = from_series(&temp_fleet.series(), 20.0, GossipPattern::Coordinator);
    let batt_exec = from_series(&battery_fleet.series(), 70.0, GossipPattern::Coordinator);
    println!(
        "temperature: {} intervals; battery: {} intervals",
        temp_exec.total_intervals(),
        batt_exec.total_intervals()
    );

    let tree = SpanningTree::balanced_dary(n, 3);
    let mut multi = MultiDetector::new(&tree, 2);
    for iv in temp_exec.intervals_interleaved() {
        multi.feed(HOT, iv.clone());
    }
    for iv in batt_exec.intervals_interleaved() {
        multi.feed(LOW_BATTERY, iv.clone());
    }

    println!("\nΦ_hot (all sensors above 20 °C simultaneously):");
    for d in multi.root_solutions(HOT) {
        println!("  episode covering {} sensors", d.covered_processes().len());
    }
    println!("\nΦ_low (all batteries low simultaneously):");
    for d in multi.root_solutions(LOW_BATTERY) {
        println!("  episode covering {} sensors", d.covered_processes().len());
    }

    let hot = multi.root_solutions(HOT).len();
    let low = multi.root_solutions(LOW_BATTERY).len();
    println!(
        "\n{} heat episodes, {} low-battery episodes detected \
         (expected: {} and {} complete episodes)",
        hot,
        low,
        temp_fleet.complete_episodes(),
        battery_fleet.complete_episodes(),
    );
    assert_eq!(hot, temp_fleet.complete_episodes());
    assert_eq!(low, battery_fleet.complete_episodes());
}
