//! Quickstart: detect every satisfaction of a strong conjunctive
//! predicate over a 7-node system with a binary spanning tree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftscp::core::HierarchicalDetector;
use ftscp::tree::SpanningTree;
use ftscp::workload::RandomExecution;

fn main() {
    // 1. A balanced binary spanning tree over 7 processes (node 0 root).
    let n = 7;
    let tree = SpanningTree::balanced_dary(n, 2);

    // 2. A synthetic distributed execution: 5 rounds in which every
    //    process raises its local predicate and gossips, so
    //    Definitely(Φ) holds once per round. Vector clocks are computed
    //    with the textbook update rules.
    let exec = RandomExecution::builder(n)
        .intervals_per_process(5)
        .seed(1)
        .build();
    println!(
        "execution: {} processes, {} intervals, {} messages",
        n,
        exec.total_intervals(),
        exec.messages
    );

    // 3. Feed the detector every completed interval, in a causally
    //    consistent order. Each node of the tree detects Definitely(Φ)
    //    over its own subtree and reports ⊓-aggregated intervals upward.
    let mut det = HierarchicalDetector::new(&tree);
    for interval in exec.intervals_interleaved() {
        det.feed(interval.clone());
    }

    // 4. Every root-level solution is one satisfaction of the global
    //    predicate; coverage says which concrete local intervals made it.
    println!("\nglobal detections at the root:");
    for d in det.root_solutions() {
        println!("  #{}: covering {:?}", d.solution.index, d.coverage);
    }
    assert_eq!(det.root_solutions().len(), 5, "one detection per round");

    // 5. Interior nodes detected their subtree's partial predicate too —
    //    the property that makes the algorithm fault-tolerant.
    println!("\nper-node subtree detections:");
    for (node, count) in det.solution_counts() {
        println!("  {node}: {count}");
    }

    // 6. Visualize the execution: one row per process, intervals as runs,
    //    the first detected solution's members highlighted as `0`s.
    let first_coverage = det.root_solutions()[0].coverage.clone();
    println!(
        "\n{}",
        ftscp::workload::diagram::render(
            &exec,
            &ftscp::workload::diagram::DiagramOptions {
                max_width: 76,
                highlight: vec![first_coverage],
            },
        )
    );
}
