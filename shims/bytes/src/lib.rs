//! Workspace-local subset of the `bytes` crate.
//!
//! Provides exactly what `ftscp-intervals::codec` consumes: an owned
//! read cursor ([`Bytes`]), a growable write buffer ([`BytesMut`]), and
//! the little-endian [`Buf`]/[`BufMut`] accessors. Cheap-clone semantics
//! are preserved by sharing the backing store behind an `Arc`; a cursor
//! advance never copies.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain — like upstream, callers must
    /// check [`remaining`](Self::remaining) first.
    fn copy_to_slice_n(&mut self, n: usize) -> &[u8];

    /// True iff any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_slice_n(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_to_slice_n(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_to_slice_n(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

/// Write access to a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable, cheaply clonable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Cursor into `data`; reads advance it.
    start: usize,
    /// One past the last readable byte (allows `truncate`).
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Readable length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff nothing is readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keeps only the first `len` readable bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// The readable bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice_n(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {n} > {}", self.len());
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        assert_eq!(w.len(), 13);
        let mut r = w.freeze();
        assert_eq!(r.len(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clone_is_independent_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let mut c = b.clone();
        assert_eq!(c.get_u8(), 1);
        assert_eq!(b.len(), 4, "original cursor untouched");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn truncate_limits_reads() {
        let mut b = Bytes::from(vec![9; 10]);
        b.truncate(4);
        assert_eq!(b.len(), 4);
        b.truncate(100); // no-op
        assert_eq!(b.len(), 4);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
