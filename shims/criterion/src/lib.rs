//! Workspace-local, API-compatible subset of `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the benchmark-harness surface the `ftscp-bench` targets use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], and
//! [`Throughput`].
//!
//! Like upstream, the harness has two modes, selected by the `--bench`
//! CLI flag that `cargo bench` passes to `harness = false` targets:
//!
//! - **bench mode** (`--bench` present): calibrates an iteration count,
//!   takes `sample_size` timed samples, and prints min/mean/max per
//!   benchmark (plus throughput when declared).
//! - **test mode** (no `--bench`, i.e. `cargo test`): runs each routine
//!   once to prove it works, with no timing and no output.
//!
//! There is no statistical analysis, plotting, or baseline comparison —
//! the repo's real measurements flow through `ftscp-analysis`, and these
//! benches are for interactive spot-checks.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum total time one calibrated sample should take in bench mode.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// Names one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Declares how much work one iteration performs, so bench mode can print
/// a rate alongside the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Shared harness state handed to every benchmark function.
pub struct Criterion {
    bench_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.bench_mode, self.sample_size);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(self.criterion.bench_mode, samples);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Closes the group (kept for API parity; drop would do).
    pub fn finish(self) {}
}

/// Timing state for one benchmark routine.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(bench_mode: bool, sample_size: usize) -> Self {
        Bencher {
            bench_mode,
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Times the routine. In test mode it runs once, unmeasured.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if !self.bench_mode {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: double the batch size until one batch clears the
        // target sample time.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || batch >= 1 << 30 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if !self.bench_mode || self.samples_ns.is_empty() {
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / mean * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{label:<48} time: [{} {} {}]{rate}",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forced_bench() -> Criterion {
        Criterion {
            bench_mode: true,
            sample_size: 3,
        }
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion {
            bench_mode: false,
            ..Criterion::default()
        };
        let mut runs = 0u32;
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b = Bencher::new(true, 4);
        b.iter(|| std::hint::black_box(7u64.wrapping_mul(13)));
        assert_eq!(b.samples_ns.len(), 4);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn groups_apply_config_and_ids() {
        let mut c = forced_bench();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut seen: Option<usize> = None;
        group.bench_with_input(BenchmarkId::new("f", 8), &vec![1, 2, 3], |b, v| {
            seen = Some(v.len());
            b.iter(|| std::hint::black_box(v.iter().sum::<i32>()));
        });
        group.finish();
        assert_eq!(seen, Some(3));
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
        assert_eq!(BenchmarkId::new("join", 8).label, "join/8");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12e9).ends_with('s'));
    }
}
