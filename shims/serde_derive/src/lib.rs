//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace uses serde derives purely as forward-looking markers on
//! its data types; nothing serializes through serde at runtime (the wire
//! codec lives in `ftscp-intervals::codec`). Offline builds therefore
//! accept the derive attributes and emit no code. If real serialization
//! is ever needed, swap these shims for the upstream crates.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers), emits
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers), emits
/// nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
