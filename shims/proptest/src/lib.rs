//! Workspace-local, API-compatible subset of `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer/float range strategies, tuple and `Vec`
//! composition, [`collection::vec`], `num::*::ANY`, `bool::ANY`, the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: generation is driven by the workspace's
//! seeded `rand::rngs::StdRng` (fully deterministic per test name + case
//! index), and failing cases are reported with their inputs but **not
//! shrunk**. That trade keeps the shim small while preserving what the
//! suite relies on: reproducibility and coverage breadth.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A recipe for generating values of `Self::Value` from a seeded RNG.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim collapses both into direct generation.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `lo..hi` and `lo..=hi` sample uniformly from the range.
    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Samples the full domain of `T` (backs `num::*::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub std::marker::PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Tuples of strategies generate tuples of values, left to right.
    macro_rules! tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

    /// A `Vec` of strategies generates one value per element, in order.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible lengths for generated collections; built from a `usize`
    /// (exact) or a `Range<usize>` (half-open), as upstream allows.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound; `lo + 1` for exact sizes.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Whole-domain strategies for the primitive integer types.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                /// Uniform over all values of the type.
                pub const ANY: crate::strategy::Any<$t> =
                    crate::strategy::Any(std::marker::PhantomData);
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

pub mod bool {
    /// Fair coin.
    pub const ANY: crate::strategy::Any<bool> = crate::strategy::Any(std::marker::PhantomData);
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test knobs (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert*` inside a case body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Derives the per-case RNG seed from the fully qualified test name, so
    /// every test sees an independent deterministic stream.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Drives one property test: `config.cases` iterations, each with a
    /// fresh deterministic RNG. `f` returns the failure message paired with
    /// a rendering of the generated inputs.
    pub fn run<F>(test_name: &str, config: &ProptestConfig, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), (TestCaseError, String)>,
    {
        for case in 0..config.cases {
            let seed = case_seed(test_name, case);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err((e, inputs)) = f(&mut rng) {
                panic!(
                    "proptest case {case}/{total} failed (seed {seed:#x}): {e}\n\
                     inputs: {inputs}",
                    total = config.cases,
                );
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests, upstream-style:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(0u8..8, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strats = ($($strat,)+);
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    let __vals = $crate::strategy::Strategy::generate(&__strats, __rng);
                    let __inputs = format!("{:?}", __vals);
                    let ($($arg,)+) = __vals;
                    let __out: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    __out.map_err(|e| (e, __inputs))
                },
            );
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Fails the current case (returns `Err` from the case body) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (
            3u32..9,
            crate::collection::vec(0u8..4, 2..6),
            crate::bool::ANY,
        );
        for _ in 0..200 {
            let (a, v, _b) = strat.generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn flat_map_makes_dependent_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        let mut rng = StdRng::seed_from_u64(3);
        let strats: Vec<_> = (0..4u32).map(|i| i..i + 1).collect();
        assert_eq!(strats.generate(&mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn case_seeds_are_per_test_and_per_case() {
        use crate::test_runner::case_seed;
        assert_eq!(case_seed("a::b", 0), case_seed("a::b", 0));
        assert_ne!(case_seed("a::b", 0), case_seed("a::b", 1));
        assert_ne!(case_seed("a::b", 0), case_seed("a::c", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, config, and assertions together.
        #[test]
        fn macro_end_to_end(
            x in 0u64..100,
            v in crate::collection::vec(0i32..5, 1..8),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(x < 100);
            prop_assert!(!v.is_empty() && v.len() < 8, "len {}", v.len());
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(v.len(), 0usize);
        }
    }

    proptest! {
        /// Default config (no inner attribute) also parses.
        #[test]
        fn macro_default_config(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
