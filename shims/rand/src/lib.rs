//! Workspace-local, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] sampling
//! surface (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality
//! and fully deterministic, which is all the simulator and the test suite
//! require. Streams are *not* bit-compatible with upstream `rand`; nothing
//! in this workspace depends on upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is needed here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Per-type uniform sampling, enabling the single blanket
/// [`SampleRange`] impl below (one impl per range *shape*, not per element
/// type, so the element type stays inferrable from context — upstream
/// behaves the same way).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + (uniform_u64(rng, (hi - lo) as u64) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Unbiased uniform draw in `[0, span)` (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// The user-facing sampling surface (blanket-implemented for every
/// [`RngCore`], like upstream `rand`).
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic given the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (subset of upstream `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is not identity");
        assert!([1u32, 2, 3].choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
