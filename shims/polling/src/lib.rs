//! Offline shim for the [`polling`](https://docs.rs/polling/3) crate:
//! portable readiness polling over OS sockets, implementing exactly the
//! API surface the workspace consumes (see `shims/README.md`).
//!
//! On Linux the backend is **epoll**, reached through self-declared
//! `extern "C"` prototypes — `std` already links libc, so no external
//! crate is needed to make the syscalls. Everywhere else the backend is
//! **`poll(2)`**, which is slower (O(fds) per wait, interest list
//! rebuilt in userspace) but semantically identical for the level-
//! triggered subset used here.
//!
//! Deliberate differences from upstream `polling 3`:
//!
//! - `Poller::add` is a safe fn (upstream marks it `unsafe` because the
//!   caller must keep the fd alive; our callers register owned sockets
//!   they deregister before dropping).
//! - Level-triggered only — `Event` carries no mode, and interests stay
//!   armed until changed (upstream defaults to oneshot). Callers
//!   `modify` interests instead of re-arming after every wait.
//! - `wait` returns on `EINTR` with zero events instead of retrying.
//!
//! The shim also counts every `epoll_wait`/`poll` syscall it issues
//! ([`Poller::syscalls`]) so reactor benchmarks can report syscalls per
//! unit of work without instrumenting the kernel.

use std::io;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Interest in (or readiness of) a registered source, tagged with the
/// caller's `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier, echoed back on readiness.
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest — keeps the source registered (so `modify` can re-arm
    /// it later) without reporting readiness.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Output buffer for [`Poller::wait`]. Reused across calls; `wait`
/// clears it before filling.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// Readiness poller over OS sockets.
pub struct Poller {
    backend: backend::Backend,
    waits: AtomicU64,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: backend::Backend::new()?,
            waits: AtomicU64::new(0),
        })
    }

    /// Registers `source` with the given interest. The source must stay
    /// open (and should be nonblocking) until [`Poller::delete`].
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.backend.add(source.as_raw_fd(), interest)
    }

    /// Replaces the interest of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.backend.modify(source.as_raw_fd(), interest)
    }

    /// Deregisters a source. Must be called before the source is closed.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.backend.delete(source.as_raw_fd())
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` blocks indefinitely). Returns the number of
    /// events written into `events` (0 on timeout or `EINTR`).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.backend.wait(&mut events.inner, timeout)
    }

    /// Number of wait syscalls issued so far (shim extension; see the
    /// module docs).
    pub fn syscalls(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

/// Clamps a timeout to the millisecond resolution of the kernel APIs,
/// rounding up so a nonzero timeout never busy-spins as 0ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) if t.is_zero() => 0,
        Some(t) => {
            let ms = t.as_millis().max(1);
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    //! epoll(7), level-triggered.

    use super::{timeout_ms, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // x86_64 Linux declares `struct epoll_event` packed; matching the
    // kernel ABI exactly is what makes these prototypes safe to declare
    // by hand.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    pub struct Backend {
        epfd: RawFd,
    }

    // The epoll fd is only used behind `&self` syscalls, all of which
    // are thread-safe per epoll(7).
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn check(ret: i32) -> io::Result<()> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            check(epfd)?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            let mut ev = interest.map(|i| EpollEvent {
                events: interest_bits(i),
                data: i.key as u64,
            });
            let ptr = ev
                .as_mut()
                .map(|e| e as *mut EpollEvent)
                .unwrap_or(std::ptr::null_mut());
            check(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (ev.events, ev.data);
                out.push(Event {
                    key: data as usize,
                    // Errors and hangups surface as both readable and
                    // writable so whichever direction the caller is
                    // waiting on observes the failure via read()/write().
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    //! Portable poll(2) fallback: the interest list lives in userspace
    //! and is rebuilt into a `pollfd` array on every wait.

    use super::{timeout_ms, Event};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    pub struct Backend {
        interests: Mutex<BTreeMap<RawFd, Event>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                interests: Mutex::new(BTreeMap::new()),
            })
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut map = self.interests.lock().unwrap();
            if map.insert(fd, interest).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut map = self.interests.lock().unwrap();
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.interests.lock().unwrap();
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let entries: Vec<(RawFd, Event)> = {
                let map = self.interests.lock().unwrap();
                map.iter().map(|(&fd, &ev)| (fd, ev)).collect()
            };
            let mut fds: Vec<PollFd> = entries
                .iter()
                .map(|&(fd, ev)| PollFd {
                    fd,
                    events: if ev.readable { POLLIN } else { 0 }
                        | if ev.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            for (pfd, &(_, interest)) in fds.iter().zip(&entries) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    key: interest.key,
                    readable: pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: pfd.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn empty_poller_times_out() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(poller.syscalls(), 1);
    }

    #[test]
    fn connected_stream_is_writable_then_readable() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::writable(7)).unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("connected stream writable");
        assert_eq!(ev.key, 7);
        assert!(ev.writable);

        // Flip interest to readable; nothing to read yet.
        poller.modify(&a, Event::readable(7)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        b.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("data makes the peer readable");
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        let got = {
            let mut a = &a;
            a.read(&mut buf).unwrap()
        };
        assert_eq!(&buf[..got], b"ping");
    }

    #[test]
    fn peer_close_reports_readable_eof() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::readable(3)).unwrap();
        drop(b);
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        let ev = events.iter().next().expect("hangup is reported");
        assert_eq!(ev.key, 3);
        assert!(ev.readable, "EOF must surface as readability");
    }

    #[test]
    fn delete_stops_reporting() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::readable(1)).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(events.len(), 1);
        poller.delete(&a).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn none_interest_keeps_registration_silent() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::none(9)).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no interest, no events");
        poller.modify(&a, Event::readable(9)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }
}
