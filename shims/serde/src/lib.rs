//! Workspace-local stand-in for `serde`.
//!
//! The workspace tags its data types with `#[derive(Serialize,
//! Deserialize)]` as forward-looking markers, but nothing serializes
//! through serde at runtime (the real wire format is
//! `ftscp-intervals::codec`). Because the build environment cannot reach
//! crates.io, this shim provides the trait names and no-op derives so the
//! annotations compile. Swapping back to upstream serde is a two-line
//! `Cargo.toml` change.

#![forbid(unsafe_code)]

/// Marker: the type opts into serialization (no-op in the offline build).
pub use serde_derive::Serialize;

/// Marker: the type opts into deserialization (no-op in the offline build).
pub use serde_derive::Deserialize;
