//! # ftscp — Fault-Tolerant Strong Conjunctive Predicate detection
//!
//! Facade crate for the `ftscp` workspace: a production-grade Rust
//! reproduction of
//!
//! > Min Shen, Ajay D. Kshemkalyani. *A Fault-Tolerant Strong Conjunctive
//! > Predicate Detection Algorithm for Large-Scale Networks.* IPDPS
//! > Workshops 2013.
//!
//! The paper's contribution is the first **decentralized, hierarchical,
//! repeated** detection algorithm for `Definitely(Φ)` where `Φ` is a
//! conjunctive predicate over an asynchronous distributed execution. This
//! crate re-exports the whole workspace under one roof:
//!
//! * [`vclock`] — vector clocks and the happens-before partial order;
//! * [`intervals`] — intervals, the `overlap` condition for
//!   `Definitely(Φ)`, the aggregation function `⊓` (Theorem 1), and the
//!   repeated-detection prune rules (Theorems 3–4);
//! * [`tree`] — spanning-tree construction and failure-time reconnection;
//! * [`simnet`] — a deterministic discrete-event simulator of an
//!   asynchronous non-FIFO message-passing network;
//! * [`core`] — the paper's Algorithm 1: the per-node engine, the in-memory
//!   hierarchical detector, and the fault-tolerant simulated deployment;
//! * [`baselines`] — the centralized repeated-detection comparator
//!   \[Kshemkalyani, IPL 2011\], Garg–Waldecker one-shot detectors, and a
//!   brute-force global-state-lattice oracle;
//! * [`workload`] — synthetic execution generators with tunable interval
//!   counts and overlap probability `α`;
//! * [`analysis`] — the paper's closed-form complexity models (Eqs. 11–14)
//!   and experiment runners for Table I and Figures 4–5.
//!
//! ## Quickstart
//!
//! ```
//! use ftscp::core::HierarchicalDetector;
//! use ftscp::tree::SpanningTree;
//! use ftscp::workload::RandomExecution;
//!
//! // A balanced binary spanning tree over 7 processes.
//! let tree = SpanningTree::balanced_dary(7, 2);
//! // A seeded random execution: 6 local-predicate intervals per process.
//! let exec = RandomExecution::builder(7).intervals_per_process(6).seed(1).build();
//! // Feed every interval, in a causally consistent order, to the detector.
//! let mut det = HierarchicalDetector::new(&tree);
//! for iv in exec.intervals_interleaved() {
//!     det.feed(iv.clone());
//! }
//! // Every root-level solution is one satisfaction of Definitely(Φ).
//! println!("{} global detections", det.root_solutions().len());
//! ```

#![forbid(unsafe_code)]

pub use ftscp_analysis as analysis;
pub use ftscp_baselines as baselines;
pub use ftscp_core as core;
pub use ftscp_intervals as intervals;
pub use ftscp_simnet as simnet;
pub use ftscp_tree as tree;
pub use ftscp_vclock as vclock;
pub use ftscp_workload as workload;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
