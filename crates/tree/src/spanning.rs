//! The [`SpanningTree`] structure and constructors.

use ftscp_simnet::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A rooted spanning tree over (a subset of) the network's nodes.
///
/// Nodes that have failed or are partitioned away are simply *not in* the
/// tree ([`SpanningTree::contains`] is false); the remaining structure is
/// always a forest rooted at [`SpanningTree::root`] — a single tree as long
/// as no partition has occurred.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    in_tree: Vec<bool>,
}

impl SpanningTree {
    /// Builds a BFS spanning tree of `topology` rooted at `root`, covering
    /// every node reachable from it. Children are visited in neighbor-list
    /// order, so construction is deterministic.
    pub fn bfs(topology: &Topology, root: NodeId) -> SpanningTree {
        let n = topology.len();
        let mut tree = SpanningTree {
            root,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            in_tree: vec![false; n],
        };
        let mut q = VecDeque::from([root]);
        tree.in_tree[root.index()] = true;
        while let Some(u) = q.pop_front() {
            for &v in topology.neighbors(u) {
                if !tree.in_tree[v.index()] {
                    tree.in_tree[v.index()] = true;
                    tree.parent[v.index()] = Some(u);
                    tree.children[u.index()].push(v);
                    q.push_back(v);
                }
            }
        }
        tree
    }

    /// BFS spanning tree with a **degree bound**: no node adopts more than
    /// `max_children` children. Useful on hub-heavy topologies (scale-free
    /// graphs), where plain BFS hangs dozens of children off one hub and
    /// wrecks the paper's `d` parameter. Overflow neighbors are adopted by
    /// already-placed tree nodes discovered later (deeper tree, bounded
    /// degree). Falls back to exceeding the bound only when a node would
    /// otherwise be unreachable.
    pub fn bfs_bounded(topology: &Topology, root: NodeId, max_children: usize) -> SpanningTree {
        assert!(max_children >= 1);
        let n = topology.len();
        let mut tree = SpanningTree {
            root,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            in_tree: vec![false; n],
        };
        let adopt = |tree: &mut SpanningTree, v: NodeId, a: NodeId| {
            tree.in_tree[v.index()] = true;
            tree.parent[v.index()] = Some(a);
            tree.children[a.index()].push(v);
        };
        let mut frontier = VecDeque::from([root]);
        tree.in_tree[root.index()] = true;
        let mut deferred: Vec<NodeId> = Vec::new();
        while let Some(u) = frontier.pop_front() {
            for &v in topology.neighbors(u) {
                if tree.in_tree[v.index()] {
                    continue;
                }
                if tree.children[u.index()].len() < max_children {
                    adopt(&mut tree, v, u);
                    frontier.push_back(v);
                } else {
                    deferred.push(v);
                }
            }
        }
        // Adoption rounds for deferred nodes: any in-tree neighbor with
        // spare capacity; repeat until stable (capacity appears as the
        // tree deepens).
        loop {
            let mut progressed = false;
            let mut still = Vec::new();
            for v in deferred {
                if tree.in_tree[v.index()] {
                    continue;
                }
                let slot = topology.neighbors(v).iter().copied().find(|w| {
                    tree.in_tree[w.index()] && tree.children[w.index()].len() < max_children
                });
                if let Some(a) = slot {
                    adopt(&mut tree, v, a);
                    progressed = true;
                    // Its own neighbors may now be adoptable under it.
                    for &nb in topology.neighbors(v) {
                        if !tree.in_tree[nb.index()] {
                            still.push(nb);
                        }
                    }
                } else {
                    still.push(v);
                }
            }
            still.sort_unstable();
            still.dedup();
            still.retain(|v| !tree.in_tree[v.index()]);
            deferred = still;
            if deferred.is_empty() {
                break;
            }
            if !progressed {
                // Bound genuinely unachievable for these (e.g. a leaf whose
                // only neighbor is a saturated cut vertex): exceed it for
                // one node and keep going — its subtree may open capacity.
                let mut attached_any = false;
                let mut still = Vec::new();
                for v in std::mem::take(&mut deferred) {
                    if tree.in_tree[v.index()] {
                        continue;
                    }
                    if !attached_any {
                        if let Some(a) = topology
                            .neighbors(v)
                            .iter()
                            .copied()
                            .find(|w| tree.in_tree[w.index()])
                        {
                            adopt(&mut tree, v, a);
                            attached_any = true;
                            for &nb in topology.neighbors(v) {
                                if !tree.in_tree[nb.index()] {
                                    still.push(nb);
                                }
                            }
                            continue;
                        }
                    }
                    still.push(v);
                }
                still.sort_unstable();
                still.dedup();
                still.retain(|v| !tree.in_tree[v.index()]);
                deferred = still;
                if !attached_any {
                    break; // remaining nodes are unreachable
                }
            }
        }
        tree
    }

    /// The idealized complete `d`-ary tree on `n` nodes used throughout the
    /// paper's complexity analysis (`n = d^h`): node 0 is the root, node
    /// `i`'s children are `i·d+1 ..= i·d+d`.
    pub fn balanced_dary(n: usize, d: usize) -> SpanningTree {
        assert!(d >= 1, "degree must be positive");
        assert!(n >= 1, "tree must be non-empty");
        let mut tree = SpanningTree {
            root: NodeId(0),
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            in_tree: vec![true; n],
        };
        for i in 1..n {
            let p = (i - 1) / d;
            tree.parent[i] = Some(NodeId(p as u32));
            tree.children[p].push(NodeId(i as u32));
        }
        tree
    }

    /// Builds from explicit parent pointers (root has `None`).
    ///
    /// # Panics
    ///
    /// Panics if there is not exactly one root or the structure is cyclic.
    pub fn from_parents(parents: Vec<Option<NodeId>>) -> SpanningTree {
        let n = parents.len();
        let roots: Vec<usize> = parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(roots.len(), 1, "exactly one root required");
        let root = NodeId(roots[0] as u32);
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(NodeId(i as u32));
            }
        }
        let tree = SpanningTree {
            root,
            parent: parents,
            children,
            in_tree: vec![true; n],
        };
        // Cycle check: every node must reach the root.
        for i in 0..n {
            let mut cur = NodeId(i as u32);
            let mut steps = 0;
            while let Some(p) = tree.parent[cur.index()] {
                cur = p;
                steps += 1;
                assert!(steps <= n, "cycle detected in parent pointers");
            }
            assert_eq!(cur, root, "node {i} does not reach the root");
        }
        tree
    }

    /// Rebuilds a tree view from decentralized membership state: each
    /// live member's claimed parent pointer, plus the current root. Only
    /// nodes whose parent chain reaches `root` through live members are
    /// included — dead nodes, and subtrees orphaned mid-adoption whose
    /// parent pointer still names a dead node, are simply *not in* the
    /// view (consistent with how failures are represented everywhere
    /// else in this structure).
    pub fn from_membership(
        members: &[(NodeId, Option<NodeId>)],
        capacity: usize,
        root: NodeId,
    ) -> SpanningTree {
        let mut member = vec![false; capacity];
        for &(n, _) in members {
            member[n.index()] = true;
        }
        let mut children = vec![Vec::new(); capacity];
        for &(n, p) in members {
            if let Some(p) = p {
                if member[p.index()] {
                    children[p.index()].push(n);
                }
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }
        // Keep only what the root actually reaches: a cycle among stale
        // claims, or an orphan hanging off a dead parent, stays out.
        let mut tree = SpanningTree {
            root,
            parent: vec![None; capacity],
            children: vec![Vec::new(); capacity],
            in_tree: vec![false; capacity],
        };
        let mut q = VecDeque::from([root]);
        tree.in_tree[root.index()] = true;
        while let Some(u) = q.pop_front() {
            for &v in &children[u.index()] {
                if !tree.in_tree[v.index()] {
                    tree.in_tree[v.index()] = true;
                    tree.parent[v.index()] = Some(u);
                    tree.children[u.index()].push(v);
                    q.push_back(v);
                }
            }
        }
        tree
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Capacity (network size `n`), counting removed nodes.
    pub fn capacity(&self) -> usize {
        self.parent.len()
    }

    /// Number of nodes currently in the tree.
    pub fn node_count(&self) -> usize {
        self.in_tree.iter().filter(|&&b| b).count()
    }

    /// True iff `node` is currently part of the tree.
    pub fn contains(&self, node: NodeId) -> bool {
        self.in_tree[node.index()]
    }

    /// Parent of `node` (`None` for the root or detached nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// True iff `node` is in the tree and has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.contains(node) && self.children[node.index()].is_empty()
    }

    /// Hop distance from the root (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent[cur.index()] {
            cur = p;
            d += 1;
        }
        d
    }

    /// Number of levels (`h` in the paper: a root-only tree has height 1,
    /// leaves are level 1, the root is level `h`).
    pub fn height(&self) -> usize {
        (0..self.parent.len())
            .filter(|&i| self.in_tree[i])
            .map(|i| self.depth(NodeId(i as u32)) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Level of a node in the paper's numbering: leaves-deepest = 1, root =
    /// height. Computed as `height - depth`.
    pub fn level(&self, node: NodeId) -> usize {
        self.height() - self.depth(node)
    }

    /// Maximum number of children of any in-tree node (`d` in the paper).
    pub fn max_degree(&self) -> usize {
        self.children
            .iter()
            .enumerate()
            .filter(|(i, _)| self.in_tree[*i])
            .map(|(_, c)| c.len())
            .max()
            .unwrap_or(0)
    }

    /// The nodes of the subtree rooted at `node` (preorder).
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        if !self.contains(node) {
            return out;
        }
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in self.children(u).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All in-tree nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.parent.len())
            .filter(|&i| self.in_tree[i])
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Validates that every tree edge is also a topology edge — required
    /// for parent/child messages to be single-hop.
    pub fn is_subgraph_of(&self, topology: &Topology) -> bool {
        (0..self.parent.len()).all(|i| match self.parent[i] {
            Some(p) => topology.neighbors(NodeId(i as u32)).contains(&p),
            None => true,
        })
    }

    /// Re-admits a previously removed node as a **leaf** child of
    /// `parent` — the crash-recovery path: a rebooted node rejoins the
    /// tree at the edge (its former children have long been re-parented).
    ///
    /// # Panics
    ///
    /// Panics if `node` is still in the tree or `parent` is not.
    pub fn rejoin_leaf(&mut self, node: NodeId, parent: NodeId) {
        assert!(!self.contains(node), "{node} is still in the tree");
        assert!(self.contains(parent), "{parent} is not in the tree");
        self.in_tree[node.index()] = true;
        self.parent[node.index()] = Some(parent);
        self.children[node.index()].clear();
        self.children[parent.index()].push(node);
    }

    // ----- mutation (used by reconnect) -----

    pub(crate) fn detach_node(&mut self, node: NodeId) {
        if let Some(p) = self.parent[node.index()].take() {
            self.children[p.index()].retain(|&c| c != node);
        }
        // The node's children become orphan subtree roots.
        let kids = std::mem::take(&mut self.children[node.index()]);
        for c in kids {
            self.parent[c.index()] = None;
        }
        self.in_tree[node.index()] = false;
    }

    #[cfg(test)]
    pub(crate) fn detach_edge_to_parent(&mut self, node: NodeId) {
        if let Some(p) = self.parent[node.index()].take() {
            self.children[p.index()].retain(|&c| c != node);
        }
    }

    /// Reverses parent pointers along the path `new_root .. old_root`,
    /// making `new_root` the root of its subtree.
    pub(crate) fn reroot_subtree(&mut self, new_root: NodeId) {
        // Collect the path up to the (current) subtree root.
        let mut path = vec![new_root];
        let mut cur = new_root;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        // Reverse each edge on the path.
        for w in path.windows(2) {
            let (child, par) = (w[0], w[1]);
            // par loses child; child gains par.
            self.children[par.index()].retain(|&c| c != child);
            self.children[child.index()].push(par);
            self.parent[par.index()] = Some(child);
        }
        self.parent[new_root.index()] = None;
    }

    pub(crate) fn attach(&mut self, child: NodeId, parent: NodeId) {
        debug_assert!(self.parent[child.index()].is_none());
        self.parent[child.index()] = Some(parent);
        self.children[parent.index()].push(child);
    }

    pub(crate) fn set_root(&mut self, root: NodeId) {
        debug_assert!(self.in_tree[root.index()]);
        self.root = root;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_tree_covers_connected_topology() {
        let topo = Topology::grid(3, 3);
        let tree = SpanningTree::bfs(&topo, NodeId(4)); // center
        assert_eq!(tree.node_count(), 9);
        assert_eq!(tree.root(), NodeId(4));
        assert!(tree.is_subgraph_of(&topo));
        assert_eq!(tree.depth(NodeId(4)), 0);
        assert_eq!(tree.height(), 3, "center-rooted 3x3 grid has 3 levels");
    }

    #[test]
    fn bfs_tree_skips_unreachable_nodes() {
        let topo = Topology::from_edges(4, &[(0, 1)]); // 2, 3 isolated
        let tree = SpanningTree::bfs(&topo, NodeId(0));
        assert!(tree.contains(NodeId(1)));
        assert!(!tree.contains(NodeId(2)));
        assert_eq!(tree.node_count(), 2);
    }

    #[test]
    fn bounded_bfs_respects_degree_on_hub_graphs() {
        // Seed picked so the hub structure exercises the bound without
        // forcing the last-resort slack past it.
        let topo = Topology::scale_free(60, 2, 9);
        let plain = SpanningTree::bfs(&topo, NodeId(0));
        let bounded = SpanningTree::bfs_bounded(&topo, NodeId(0), 3);
        assert_eq!(bounded.node_count(), 60, "full coverage");
        assert!(bounded.is_subgraph_of(&topo));
        assert!(
            bounded.max_degree() <= plain.max_degree(),
            "bounded ({}) ≤ plain ({})",
            bounded.max_degree(),
            plain.max_degree()
        );
        assert!(
            bounded.max_degree() <= 4,
            "close to the bound (small slack for last-resort)"
        );
        // Deeper as the price of bounded degree.
        assert!(bounded.height() >= plain.height());
    }

    #[test]
    fn bounded_bfs_on_line_equals_plain() {
        let topo = Topology::line(6);
        let a = SpanningTree::bfs(&topo, NodeId(0));
        let b = SpanningTree::bfs_bounded(&topo, NodeId(0), 2);
        assert_eq!(a.height(), b.height());
        assert_eq!(b.node_count(), 6);
    }

    #[test]
    fn balanced_dary_shape() {
        let tree = SpanningTree::balanced_dary(7, 2);
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(tree.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert_eq!(tree.parent(NodeId(6)), Some(NodeId(2)));
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.max_degree(), 2);
        assert!(tree.is_leaf(NodeId(3)));
        assert!(!tree.is_leaf(NodeId(1)));
    }

    #[test]
    fn levels_follow_paper_numbering() {
        let tree = SpanningTree::balanced_dary(7, 2);
        assert_eq!(tree.level(NodeId(0)), 3, "root is level h");
        assert_eq!(tree.level(NodeId(1)), 2);
        assert_eq!(tree.level(NodeId(3)), 1, "leaves are level 1");
    }

    #[test]
    fn subtree_preorder() {
        let tree = SpanningTree::balanced_dary(7, 2);
        assert_eq!(
            tree.subtree(NodeId(1)),
            vec![NodeId(1), NodeId(3), NodeId(4)]
        );
        assert_eq!(tree.subtree(NodeId(0)).len(), 7);
    }

    #[test]
    fn from_parents_round_trips() {
        let tree = SpanningTree::balanced_dary(5, 2);
        let parents: Vec<Option<NodeId>> = (0..5).map(|i| tree.parent(NodeId(i))).collect();
        let rebuilt = SpanningTree::from_parents(parents);
        assert_eq!(rebuilt.root(), tree.root());
        for i in 0..5u32 {
            assert_eq!(rebuilt.children(NodeId(i)), tree.children(NodeId(i)));
        }
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn from_parents_rejects_two_roots() {
        let _ = SpanningTree::from_parents(vec![None, None]);
    }

    #[test]
    fn from_membership_excludes_dead_and_orphaned() {
        // 0 ← 1 ← 3, 0 ← 2(dead), 2 ← 4: node 4's parent claim names a
        // dead node, so 4 is orphaned out of the view along with 2.
        let members = vec![
            (NodeId(0), None),
            (NodeId(1), Some(NodeId(0))),
            (NodeId(3), Some(NodeId(1))),
            (NodeId(4), Some(NodeId(2))),
        ];
        let tree = SpanningTree::from_membership(&members, 5, NodeId(0));
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.node_count(), 3);
        assert!(tree.contains(NodeId(3)));
        assert!(!tree.contains(NodeId(2)), "dead node out");
        assert!(!tree.contains(NodeId(4)), "orphan out until adopted");
        assert_eq!(tree.children(NodeId(0)), &[NodeId(1)]);
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
    }

    #[test]
    fn reroot_reverses_path() {
        let mut tree = SpanningTree::balanced_dary(7, 2);
        // Detach subtree rooted at 1 and re-root it at leaf 3.
        tree.detach_edge_to_parent(NodeId(1));
        tree.reroot_subtree(NodeId(3));
        assert_eq!(tree.parent(NodeId(3)), None);
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId(3)));
        assert_eq!(tree.parent(NodeId(4)), Some(NodeId(1)));
        assert!(tree.children(NodeId(3)).contains(&NodeId(1)));
    }

    #[test]
    fn detach_node_removes_from_everything() {
        let mut tree = SpanningTree::balanced_dary(7, 2);
        tree.detach_node(NodeId(2));
        assert!(!tree.contains(NodeId(2)));
        assert!(!tree.children(NodeId(0)).contains(&NodeId(2)));
        assert_eq!(tree.node_count(), 6);
    }
}
