//! # ftscp-tree — spanning trees and failure-time reconnection
//!
//! The hierarchical detection algorithm "assumes a pre-constructed spanning
//! tree in the system" (§III-A) and, on a node failure, repairs it by
//! re-attaching each orphaned subtree "by establishing a link between a node
//! in the subtree and its neighbor which is still in the spanning tree"
//! (§III-F). This crate provides both halves:
//!
//! * [`SpanningTree`] — construction ([`SpanningTree::bfs`] over an
//!   arbitrary [`ftscp_simnet::Topology`], or the idealized
//!   [`SpanningTree::balanced_dary`] used by the complexity analysis), plus
//!   structure queries (parent/children/depth/height/degree/subtree);
//! * [`SpanningTree::handle_failure`] — the §III-F repair: the dead node's
//!   parent drops it, and every orphaned subtree is re-rooted at a node
//!   that has an alive topology neighbor inside the connected tree and
//!   re-attached there. Subtrees with no such neighbor are reported as
//!   partitioned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reconnect;
pub mod spanning;

pub use reconnect::ReconnectReport;
pub use spanning::SpanningTree;
