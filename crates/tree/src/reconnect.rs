//! Failure-time tree repair (§III-F of the paper).

use crate::spanning::SpanningTree;
use ftscp_simnet::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome of [`SpanningTree::handle_failure`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconnectReport {
    /// The node that failed.
    pub failed: Option<NodeId>,
    /// The failed node's (former) parent, which dropped a child queue.
    pub former_parent: Option<NodeId>,
    /// `(new_subtree_root, adopting_parent)` for every reattached orphan
    /// subtree. The subtree may have been re-rooted, so `new_subtree_root`
    /// is not necessarily a former child of the failed node.
    pub reattached: Vec<(NodeId, NodeId)>,
    /// Roots of orphan subtrees that could not reach the main tree
    /// (network partition). They keep operating as independent trees.
    pub partitioned: Vec<NodeId>,
    /// Set when the *root* failed: the promoted replacement root.
    pub new_root: Option<NodeId>,
    /// Every node whose parent or child set changed — the monitor layer
    /// rebuilds these nodes' queue wiring.
    pub affected: Vec<NodeId>,
}

impl SpanningTree {
    /// Repairs the tree after `failed` crash-stops, following §III-F:
    ///
    /// 1. `failed`'s parent removes it (dropping the corresponding queue —
    ///    the caller's responsibility, guided by the report);
    /// 2. each subtree rooted at a child of `failed` re-attaches by finding
    ///    a node `u` inside it with an alive topology neighbor `v` in the
    ///    connected main tree; the subtree is re-rooted at `u` and `u`
    ///    becomes a child of `v`. Orphans may also chain onto orphans that
    ///    have already reattached.
    /// 3. subtrees with no such link are reported as `partitioned`.
    ///
    /// `alive[i]` must already be `false` for `failed`.
    pub fn handle_failure(
        &mut self,
        failed: NodeId,
        topology: &Topology,
        alive: &[bool],
    ) -> ReconnectReport {
        assert!(!alive[failed.index()], "handle_failure on a live node");
        let mut report = ReconnectReport {
            failed: Some(failed),
            ..Default::default()
        };
        if !self.contains(failed) {
            return report;
        }

        let former_parent = self.parent(failed);
        let mut orphan_roots: Vec<NodeId> = self.children(failed).to_vec();
        let root_failed = failed == self.root();
        self.detach_node(failed);

        let mut affected = BTreeSet::new();
        if let Some(p) = former_parent {
            report.former_parent = Some(p);
            affected.insert(p);
        }

        // If the root itself failed, promote its largest orphan subtree:
        // that subtree becomes the main tree and the others re-attach to it.
        if root_failed {
            if orphan_roots.is_empty() {
                // The root died childless. If earlier partitions left
                // independent forests alive, promote the largest forest
                // root so the tree keeps a live root; otherwise the tree
                // is empty.
                let forest_roots: Vec<NodeId> = (0..self.capacity() as u32)
                    .map(NodeId)
                    .filter(|&x| self.contains(x) && self.parent(x).is_none())
                    .collect();
                if let Some(&promoted) = forest_roots.iter().max_by_key(|&&r| self.subtree(r).len())
                {
                    self.set_root(promoted);
                    report.new_root = Some(promoted);
                    affected.insert(promoted);
                }
                report.affected = affected.into_iter().collect();
                return report;
            }
            let promoted = *orphan_roots
                .iter()
                .max_by_key(|&&r| self.subtree(r).len())
                .expect("non-empty");
            orphan_roots.retain(|&r| r != promoted);
            self.set_root(promoted);
            report.new_root = Some(promoted);
            affected.insert(promoted);
        }

        // Membership of the connected main tree (rooted at self.root).
        let mut connected: BTreeSet<NodeId> = if alive[self.root().index()] {
            self.subtree(self.root()).into_iter().collect()
        } else {
            BTreeSet::new()
        };

        // Orphans waiting to re-attach. Iterate until no orphan can attach.
        // The dead node's former parent is the preferred adopter: when the
        // topology allows it (grandparent cross-links), the grandparent
        // takes over the crashed child's subtrees directly, so the interval
        // stream keeps flowing through the node that already aggregated the
        // dead child's queue — the parent-takeover of §III-F.
        let pending = self.attach_orphan_loop(
            orphan_roots,
            topology,
            alive,
            former_parent,
            &mut connected,
            &mut affected,
            &mut report,
        );
        // Partitioned roots' parents changed (to none): they operate as
        // independent forest roots until a later repair can re-attach them.
        for &orphan in &pending {
            affected.insert(orphan);
        }
        report.partitioned = pending;
        report.affected = affected.into_iter().collect();
        report
    }

    /// Retries attaching previously partitioned orphan subtree roots into
    /// the main tree (used when a later repair restores connectivity that
    /// an earlier, overlapping failure had broken). Returns a report with
    /// `reattached`, remaining `partitioned`, and `affected` nodes.
    pub fn reattach_orphans(
        &mut self,
        orphans: &[NodeId],
        topology: &Topology,
        alive: &[bool],
    ) -> ReconnectReport {
        let mut report = ReconnectReport::default();
        let mut affected = BTreeSet::new();
        let live_orphans: Vec<NodeId> = orphans
            .iter()
            .copied()
            .filter(|&o| {
                self.contains(o) && alive[o.index()] && self.parent(o).is_none() && o != self.root()
            })
            .collect();
        let mut connected: BTreeSet<NodeId> = if self.node_count() > 0 && alive[self.root().index()]
        {
            self.subtree(self.root()).into_iter().collect()
        } else {
            BTreeSet::new()
        };
        let pending = self.attach_orphan_loop(
            live_orphans,
            topology,
            alive,
            None,
            &mut connected,
            &mut affected,
            &mut report,
        );
        report.partitioned = pending;
        report.affected = affected.into_iter().collect();
        report
    }

    #[allow(clippy::too_many_arguments)] // internal worker threading three accumulators
    fn attach_orphan_loop(
        &mut self,
        orphan_roots: Vec<NodeId>,
        topology: &Topology,
        alive: &[bool],
        preferred: Option<NodeId>,
        connected: &mut BTreeSet<NodeId>,
        affected: &mut BTreeSet<NodeId>,
        report: &mut ReconnectReport,
    ) -> Vec<NodeId> {
        let mut pending: Vec<NodeId> = orphan_roots;
        loop {
            let mut attached_this_round = false;
            let mut still_pending = Vec::new();
            for orphan_root in pending {
                match self.find_attach_point(orphan_root, topology, alive, connected, preferred) {
                    Some((u, v)) => {
                        // Re-root the orphan subtree at u, then hang it off v.
                        let members = self.subtree(orphan_root);
                        self.reroot_subtree(u);
                        self.attach(u, v);
                        for m in &members {
                            connected.insert(*m);
                        }
                        // Every node on the reversed path changed its
                        // parent/children, plus the adopter v.
                        affected.insert(v);
                        for m in members {
                            affected.insert(m);
                        }
                        report.reattached.push((u, v));
                        attached_this_round = true;
                    }
                    None => still_pending.push(orphan_root),
                }
            }
            pending = still_pending;
            if pending.is_empty() || !attached_this_round {
                break;
            }
        }
        pending
    }

    /// Finds `(u, v)`: `u` inside the subtree rooted at `orphan_root`, `v`
    /// an alive topology neighbor of `u` inside `connected`. When
    /// `preferred` (the failed node's former parent) is adoptable, it wins
    /// over any other candidate — grandparent adoption keeps the orphan's
    /// interval stream flowing through the aggregator that already held
    /// its dead parent's queue. Otherwise prefers the shallowest `u`
    /// (fewest re-rooted edges).
    fn find_attach_point(
        &self,
        orphan_root: NodeId,
        topology: &Topology,
        alive: &[bool],
        connected: &BTreeSet<NodeId>,
        preferred: Option<NodeId>,
    ) -> Option<(NodeId, NodeId)> {
        if let Some(pref) = preferred {
            if alive[pref.index()] && connected.contains(&pref) {
                for u in self.subtree(orphan_root) {
                    if topology.neighbors(u).contains(&pref) {
                        return Some((u, pref));
                    }
                }
            }
        }
        for u in self.subtree(orphan_root) {
            for &v in topology.neighbors(u) {
                if alive[v.index()] && connected.contains(&v) {
                    return Some((u, v));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Binary tree over 7 nodes with grandparent cross-links so orphans can
    /// always escape one failure. The spanning tree is the balanced binary
    /// tree, which is a subgraph of the cross-linked topology.
    fn setup() -> (Topology, SpanningTree) {
        let topo = Topology::dary_tree(7, 2, 1);
        let tree = SpanningTree::balanced_dary(7, 2);
        assert!(tree.is_subgraph_of(&topo));
        (topo, tree)
    }

    #[test]
    fn leaf_failure_only_affects_parent() {
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        let leaf = tree.nodes().into_iter().find(|&n| tree.is_leaf(n)).unwrap();
        let parent = tree.parent(leaf).unwrap();
        alive[leaf.index()] = false;
        let report = tree.handle_failure(leaf, &topo, &alive);
        assert_eq!(report.failed, Some(leaf));
        assert_eq!(report.former_parent, Some(parent));
        assert!(report.reattached.is_empty());
        assert!(report.partitioned.is_empty());
        assert_eq!(report.affected, vec![parent]);
        assert!(!tree.contains(leaf));
        assert_eq!(tree.node_count(), 6);
    }

    #[test]
    fn internal_failure_reattaches_orphans() {
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        // Fail an internal (non-root) node with children.
        let internal = tree
            .nodes()
            .into_iter()
            .find(|&x| x != tree.root() && !tree.is_leaf(x))
            .unwrap();
        let orphan_count = tree.children(internal).len();
        alive[internal.index()] = false;
        let report = tree.handle_failure(internal, &topo, &alive);
        assert_eq!(report.reattached.len(), orphan_count);
        assert!(report.partitioned.is_empty());
        assert_eq!(tree.node_count(), 6);
        // All survivors still reach the root.
        for node in tree.nodes() {
            let mut cur = node;
            while let Some(p) = tree.parent(cur) {
                cur = p;
            }
            assert_eq!(cur, tree.root(), "{node} must reach the root");
        }
        // Tree edges remain topology edges (single-hop parent links).
        assert!(tree.is_subgraph_of(&topo));
    }

    #[test]
    fn partition_is_reported() {
        // A bare tree: killing an internal node strands its subtree.
        let topo = Topology::dary_tree(7, 2, 0);
        let mut tree = SpanningTree::bfs(&topo, NodeId(0));
        let mut alive = vec![true; 7];
        alive[1] = false;
        let report = tree.handle_failure(NodeId(1), &topo, &alive);
        assert_eq!(report.partitioned.len(), 2, "children 3 and 4 stranded");
        assert!(report.reattached.is_empty());
    }

    #[test]
    fn failure_of_unknown_node_is_noop() {
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        alive[3] = false;
        tree.handle_failure(NodeId(3), &topo, &alive);
        // Second failure report of the same node changes nothing.
        let before = tree.clone();
        let report = tree.handle_failure(NodeId(3), &topo, &alive);
        assert_eq!(tree, before);
        assert!(report.former_parent.is_none());
    }

    #[test]
    fn cascading_failures_keep_survivors_connected() {
        // Richly linked topology: survivors stay connected through many
        // failures; the tree must track that.
        let topo = Topology::grid(4, 4);
        let mut tree = SpanningTree::bfs(&topo, NodeId(0));
        let mut alive = vec![true; 16];
        for &victim in &[5u32, 10, 6, 9] {
            alive[victim as usize] = false;
            let report = tree.handle_failure(NodeId(victim), &topo, &alive);
            assert!(
                report.partitioned.is_empty(),
                "grid survivors remain connected after killing {victim}"
            );
        }
        assert_eq!(tree.node_count(), 12);
        assert!(tree.is_subgraph_of(&topo));
        for node in tree.nodes() {
            let mut cur = node;
            let mut steps = 0;
            while let Some(p) = tree.parent(cur) {
                cur = p;
                steps += 1;
                assert!(steps <= 16, "no cycles");
            }
            assert_eq!(cur, tree.root());
        }
    }

    #[test]
    fn root_failure_promotes_an_orphan() {
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        alive[0] = false;
        let report = tree.handle_failure(NodeId(0), &topo, &alive);
        let new_root = report.new_root.expect("a replacement root");
        assert_eq!(tree.root(), new_root);
        assert!(
            report.partitioned.is_empty(),
            "cross-links reconnect the rest"
        );
        assert_eq!(tree.node_count(), 6);
        for node in tree.nodes() {
            let mut cur = node;
            while let Some(p) = tree.parent(cur) {
                cur = p;
            }
            assert_eq!(cur, new_root);
        }
    }

    #[test]
    fn root_failure_with_no_children_empties_tree() {
        let topo = Topology::line(1);
        let mut tree = SpanningTree::bfs(&topo, NodeId(0));
        let alive = vec![false];
        let report = tree.handle_failure(NodeId(0), &topo, &alive);
        assert!(report.new_root.is_none());
        assert_eq!(tree.node_count(), 0);
    }

    #[test]
    fn grandparent_adopts_orphans_when_linked() {
        // dary_tree(_, _, 1) has grandparent cross-links: when node 1 dies,
        // its children 3 and 4 can reach node 0 (their grandparent)
        // directly, and the preference must route them there rather than
        // to sibling subtrees.
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        let failed = NodeId(1);
        let grandparent = tree.parent(failed).unwrap();
        alive[failed.index()] = false;
        let report = tree.handle_failure(failed, &topo, &alive);
        assert!(report.partitioned.is_empty());
        for &(_, adopter) in &report.reattached {
            assert_eq!(adopter, grandparent, "grandparent takeover preferred");
        }
        assert!(tree.is_subgraph_of(&topo));
    }

    #[test]
    fn affected_nodes_cover_rewired_parents() {
        let (topo, mut tree) = setup();
        let mut alive = vec![true; 7];
        let internal = NodeId(1);
        alive[1] = false;
        let report = tree.handle_failure(internal, &topo, &alive);
        // Every reattached orphan's new parent must appear in `affected`.
        for (child, parent) in &report.reattached {
            assert!(report.affected.contains(parent));
            assert!(report.affected.contains(child));
        }
    }
}
