//! Property tests: spanning-tree repair maintains structural invariants
//! under arbitrary failure sequences on arbitrary topologies.

use ftscp_simnet::{NodeId, Topology};
use ftscp_tree::SpanningTree;
use proptest::prelude::*;

/// Structural invariants that must hold after every repair:
/// acyclic parent chains ending at the root (per component), children
/// lists consistent with parent pointers, tree edges ⊆ topology edges.
fn check_invariants(tree: &SpanningTree, topo: &Topology) {
    let n = tree.capacity();
    for i in 0..n {
        let node = NodeId(i as u32);
        if !tree.contains(node) {
            assert!(
                tree.parent(node).is_none(),
                "{node} detached but has parent"
            );
            continue;
        }
        // Parent chain terminates without cycles.
        let mut cur = node;
        let mut steps = 0;
        while let Some(p) = tree.parent(cur) {
            assert!(tree.contains(p), "{cur} has detached parent {p}");
            // Tree edge must be a topology edge.
            assert!(
                topo.neighbors(cur).contains(&p),
                "tree edge {cur}–{p} not in topology"
            );
            // Parent's children list must contain cur.
            assert!(
                tree.children(p).contains(&cur),
                "{p} does not list child {cur}"
            );
            cur = p;
            steps += 1;
            assert!(steps <= n, "cycle through {node}");
        }
        // Children lists point back.
        for &c in tree.children(node) {
            assert_eq!(tree.parent(c), Some(node), "child {c} disagrees");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random geometric topologies, BFS trees, random kill orders.
    #[test]
    fn repair_preserves_invariants(
        seed in 0u64..500,
        kills in proptest::collection::vec(0usize..20, 1..12),
    ) {
        let n = 20;
        let topo = Topology::random_geometric(n, 0.3, seed);
        let mut tree = SpanningTree::bfs(&topo, NodeId(0));
        let mut alive = vec![true; n];
        for k in kills {
            if !alive[k] || !tree.contains(NodeId(k as u32)) {
                continue;
            }
            alive[k] = false;
            let report = tree.handle_failure(NodeId(k as u32), &topo, &alive);
            check_invariants(&tree, &topo);
            // Node counts reconcile: in-tree = previously in-tree − failed
            // (partitioned subtrees remain "in tree" as separate forests
            // only if reattached; otherwise they are reported).
            for &(child, parent) in &report.reattached {
                prop_assert_eq!(tree.parent(child), Some(parent));
            }
            // The root is alive (possibly promoted).
            if tree.node_count() > 0 {
                prop_assert!(alive[tree.root().index()], "root must be alive");
            }
        }
    }

    /// After any single failure on a connected grid, survivors stay in one
    /// tree (grids are 2-connected except corners' adjacency).
    #[test]
    fn grid_single_failure_never_partitions(victim in 0usize..16) {
        let topo = Topology::grid(4, 4);
        let mut tree = SpanningTree::bfs(&topo, NodeId(0));
        let mut alive = vec![true; 16];
        alive[victim] = false;
        // Root failure promotes; others reattach.
        let report = tree.handle_failure(NodeId(victim as u32), &topo, &alive);
        prop_assert!(report.partitioned.is_empty(), "grid survivors stay connected");
        prop_assert_eq!(tree.node_count(), 15);
        check_invariants(&tree, &topo);
    }

    /// Degree-bounded BFS covers every node of connected topologies and
    /// keeps the bound except for forced cut vertices.
    #[test]
    fn bounded_bfs_full_coverage(seed in 0u64..200, bound in 2usize..5) {
        let n = 25;
        let topo = Topology::random_geometric(n, 0.28, seed);
        let tree = SpanningTree::bfs_bounded(&topo, NodeId(0), bound);
        prop_assert_eq!(tree.node_count(), n, "all nodes adopted");
        check_invariants(&tree, &topo);
        // The bound holds for the overwhelming majority of nodes.
        let violators = tree
            .nodes()
            .into_iter()
            .filter(|&x| tree.children(x).len() > bound)
            .count();
        prop_assert!(violators <= n / 5, "violators: {violators}");
    }

    /// BFS trees over random connected topologies are valid and complete.
    #[test]
    fn bfs_tree_well_formed(seed in 0u64..500) {
        let n = 25;
        let topo = Topology::random_geometric(n, 0.28, seed);
        let tree = SpanningTree::bfs(&topo, NodeId(3));
        prop_assert_eq!(tree.node_count(), n, "connected topology fully covered");
        check_invariants(&tree, &topo);
        prop_assert!(tree.height() >= 1);
        prop_assert!(tree.max_degree() >= 1);
    }
}
