//! Property tests: the paper's theorems hold for arbitrary well-formed
//! interval data, and the on-line bank agrees with the offline reference.

use ftscp_intervals::offline::OfflineDetector;
use ftscp_intervals::prune::{approximate_removals, exact_removals};
use ftscp_intervals::{theorems, Interval, PruneRule, QueueBank, SlotId};
use ftscp_vclock::{OpCounter, ProcessId, VectorClock};
use proptest::prelude::*;

const WIDTH: usize = 5;

/// A random well-formed interval: lo is random, hi = lo + non-negative
/// deltas (with at least one strictly positive).
fn interval_strategy(p: u32) -> impl Strategy<Value = Interval> {
    (
        proptest::collection::vec(0u32..12, WIDTH),
        proptest::collection::vec(0u32..6, WIDTH),
        0u32..WIDTH as u32,
    )
        .prop_map(move |(lo, deltas, bump)| {
            let hi: Vec<u32> = lo
                .iter()
                .zip(&deltas)
                .enumerate()
                .map(|(i, (l, d))| l + d + u32::from(i as u32 == bump))
                .collect();
            Interval::local(
                ProcessId(p),
                0,
                VectorClock::from_components(lo),
                VectorClock::from_components(hi),
            )
        })
}

fn interval_set(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Interval>> {
    len.prop_flat_map(|n| {
        (0..n)
            .map(|i| interval_strategy(i as u32))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Theorem 1: overlap(X ∪ Y) ⇔ overlap(X) ∧ overlap(Y) ∧ overlap(⊓X, ⊓Y).
    #[test]
    fn theorem1(x in interval_set(1..4), y in interval_set(1..4)) {
        let (lhs, rhs) = theorems::theorem1_sides(&x, &y);
        prop_assert_eq!(lhs, rhs);
    }

    /// Lemma 1: the d-way generalization.
    #[test]
    fn lemma1(sets in proptest::collection::vec(interval_set(1..3), 1..5)) {
        let (lhs, rhs) = theorems::lemma1_sides(&sets);
        prop_assert_eq!(lhs, rhs);
    }

    /// Eq. (7): aggregation of aggregations equals aggregation of the union.
    #[test]
    fn eq7(x in interval_set(1..4), y in interval_set(1..4)) {
        prop_assert!(theorems::eq7_holds(&x, &y));
    }

    /// Theorem 2 (first half): aggregations of overlapping sets are
    /// well-formed intervals.
    #[test]
    fn theorem2_well_formed(x in interval_set(1..5)) {
        prop_assert!(theorems::theorem2_well_formed(&x));
    }

    /// Safety (Theorem 3) via the offline detector: every emitted solution
    /// satisfies Definitely, regardless of prune rule.
    #[test]
    fn all_solutions_valid(
        seqs in proptest::collection::vec(
            proptest::collection::vec(interval_strategy(0), 0..5), 1..4),
        exact in proptest::bool::ANY,
    ) {
        // Re-sequence: each queue's intervals must be totally ordered
        // (max(x) < min(succ(x))); enforce by cumulative shifting.
        let seqs = sequence_queues(seqs);
        let rule = if exact { PruneRule::ExactWithHindsight } else { PruneRule::Approximate };
        let out = OfflineDetector::new(seqs, rule).run();
        for s in &out.solutions {
            prop_assert!(s.is_valid());
        }
    }

    /// The on-line QueueBank and the offline reference find identical
    /// solution sequences when fed queue-by-queue in any interleaving that
    /// respects queue order.
    #[test]
    fn bank_matches_offline(
        seqs in proptest::collection::vec(
            proptest::collection::vec(interval_strategy(0), 0..5), 1..4),
        seed in 0u64..1000,
    ) {
        let seqs = sequence_queues(seqs);
        let offline = OfflineDetector::new(seqs.clone(), PruneRule::Approximate).run();

        let mut bank = QueueBank::new(seqs.len());
        let mut cursors = vec![0usize; seqs.len()];
        let mut online = Vec::new();
        // Deterministic pseudo-random interleaving.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        loop {
            let pending: Vec<usize> = (0..seqs.len())
                .filter(|&q| cursors[q] < seqs[q].len())
                .collect();
            if pending.is_empty() {
                break;
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let q = pending[(state >> 33) as usize % pending.len()];
            let iv = seqs[q][cursors[q]].clone();
            cursors[q] += 1;
            online.extend(bank.enqueue(SlotId(q as u32), iv));
        }

        prop_assert_eq!(online.len(), offline.solutions.len());
        for (a, b) in online.iter().zip(&offline.solutions) {
            prop_assert_eq!(a.coverage(), b.coverage());
        }
    }

    /// Prune soundness: the approximate on-line rule Eq. (10) never
    /// removes a head the exact rule Eq. (9) would keep, whenever the
    /// successors obey the per-queue causal order `max(x) < min(succ(x))`
    /// (Theorem 2). Approximate removals ⊆ exact removals.
    #[test]
    fn approximate_prune_subsumed_by_exact(
        members in proptest::collection::vec(
            (interval_strategy(0), proptest::collection::vec(0u32..5, WIDTH)), 2..6),
    ) {
        // Each member's successor low: strictly above its own hi in every
        // component, as causally ordered interval queues guarantee.
        let pairs: Vec<(Interval, VectorClock)> = members
            .into_iter()
            .map(|(iv, gap)| {
                let succ_lo: Vec<u32> = iv
                    .hi
                    .components()
                    .iter()
                    .zip(&gap)
                    .map(|(h, g)| h + g + 1)
                    .collect();
                (iv, VectorClock::from_components(succ_lo))
            })
            .collect();
        let solution: Vec<&Interval> = pairs.iter().map(|(iv, _)| iv).collect();
        let succ_lows: Vec<Option<&VectorClock>> =
            pairs.iter().map(|(_, lo)| Some(lo)).collect();
        let ops = OpCounter::new();
        let approx = approximate_removals(&solution, &ops);
        let exact = exact_removals(&solution, &succ_lows, &ops);
        prop_assert!(!approx.is_empty(), "Theorem 4: at least one removal");
        for i in &approx {
            prop_assert!(
                exact.contains(i),
                "Eq. (10) removed head {} which Eq. (9) keeps", i
            );
        }
    }
}

/// Rewrites queue contents so that successive intervals in the same queue
/// are causally ordered (`max(x) < min(succ(x))`), as real per-process and
/// per-subtree interval streams are (Theorem 2).
fn sequence_queues(seqs: Vec<Vec<Interval>>) -> Vec<Vec<Interval>> {
    seqs.into_iter()
        .enumerate()
        .map(|(q, seq)| {
            let mut shifted = Vec::with_capacity(seq.len());
            let mut base = vec![0u32; WIDTH];
            for (s, iv) in seq.into_iter().enumerate() {
                let lo: Vec<u32> = iv
                    .lo
                    .components()
                    .iter()
                    .zip(&base)
                    .map(|(c, b)| c + b + 1)
                    .collect();
                let hi: Vec<u32> = iv
                    .hi
                    .components()
                    .iter()
                    .zip(&base)
                    .map(|(c, b)| c + b + 1)
                    .collect();
                base = hi.clone();
                shifted.push(Interval::local(
                    ProcessId(q as u32),
                    s as u64,
                    VectorClock::from_components(lo),
                    VectorClock::from_components(hi),
                ));
            }
            shifted
        })
        .collect()
}

/// Interleaving order must not matter for the *set* of solutions: the bank
/// is deterministic given per-queue sequences.
#[test]
fn bank_interleaving_invariance() {
    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(7);
    // Build 3 queues of causally ordered intervals with random gaps.
    let mut seqs: Vec<Vec<Interval>> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for q in 0..3u32 {
        let mut seq = Vec::new();
        let mut base = vec![0u32; WIDTH];
        for s in 0..6u64 {
            let lo: Vec<u32> = base.iter().map(|b| b + rng.gen_range(1..4)).collect();
            let hi: Vec<u32> = lo.iter().map(|l| l + rng.gen_range(0..5)).collect();
            let mut hi = hi;
            hi[q as usize] += 1; // ensure strictness somewhere
            base = hi.clone();
            seq.push(Interval::local(
                ProcessId(q),
                s,
                VectorClock::from_components(lo),
                VectorClock::from_components(hi),
            ));
        }
        seqs.push(seq);
    }

    let mut reference: Option<Vec<Vec<ftscp_intervals::IntervalRef>>> = None;
    for trial in 0..10 {
        let mut bank = QueueBank::new(3);
        let mut feed: Vec<(usize, Interval)> = Vec::new();
        for (q, seq) in seqs.iter().enumerate() {
            for iv in seq {
                feed.push((q, iv.clone()));
            }
        }
        // Random interleaving that preserves per-queue order: shuffle then
        // stable-sort by (queue, seq) within each queue via stable pass.
        feed.shuffle(&mut rng);
        let mut next_seq = [0u64; 3];
        let mut ordered = Vec::new();
        while !feed.is_empty() {
            let pos = feed
                .iter()
                .position(|(q, iv)| iv.seq == next_seq[*q])
                .expect("some queue head must be feedable");
            let (q, iv) = feed.remove(pos);
            next_seq[q] += 1;
            ordered.push((q, iv));
        }
        let mut solutions = Vec::new();
        for (q, iv) in ordered {
            solutions.extend(bank.enqueue(SlotId(q as u32), iv));
        }
        let coverages: Vec<_> = solutions.iter().map(|s| s.coverage()).collect();
        match &reference {
            None => reference = Some(coverages),
            Some(r) => assert_eq!(r, &coverages, "trial {trial} diverged"),
        }
    }
}
