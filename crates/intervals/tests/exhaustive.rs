//! Exhaustive small-model checking: enumerate **every** interleaving of
//! small per-queue interval sequences and assert the bank is confluent —
//! the same solutions, in the same order, regardless of arrival order.
//! Stronger than the randomized interleaving tests: nothing is sampled.

use ftscp_intervals::{Interval, IntervalRef, QueueBank, SlotId};
use ftscp_vclock::{ProcessId, VectorClock};

/// All interleavings of the given per-queue sequences (preserving each
/// queue's internal order), as index streams.
fn interleavings(lens: &[usize]) -> Vec<Vec<usize>> {
    fn go(
        cursors: &mut Vec<usize>,
        lens: &[usize],
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let mut progressed = false;
        for q in 0..lens.len() {
            if cursors[q] < lens[q] {
                progressed = true;
                cursors[q] += 1;
                prefix.push(q);
                go(cursors, lens, prefix, out);
                prefix.pop();
                cursors[q] -= 1;
            }
        }
        if !progressed {
            out.push(prefix.clone());
        }
    }
    let mut out = Vec::new();
    go(&mut vec![0; lens.len()], lens, &mut Vec::new(), &mut out);
    out
}

/// Runs the bank over one interleaving, returning solution coverages.
fn run(seqs: &[Vec<Interval>], order: &[usize]) -> Vec<Vec<IntervalRef>> {
    let mut bank = QueueBank::new(seqs.len());
    let mut cursors = vec![0usize; seqs.len()];
    let mut out = Vec::new();
    for &q in order {
        let iv = seqs[q][cursors[q]].clone();
        cursors[q] += 1;
        for sol in bank.enqueue(SlotId(q as u32), iv) {
            out.push(sol.coverage());
        }
    }
    out
}

fn check_confluent(seqs: &[Vec<Interval>]) {
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let all = interleavings(&lens);
    assert!(!all.is_empty());
    let reference = run(seqs, &all[0]);
    for (i, order) in all.iter().enumerate().skip(1) {
        let got = run(seqs, order);
        assert_eq!(
            got,
            reference,
            "interleaving {i} of {} diverged (order {order:?})",
            all.len()
        );
    }
}

fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
    Interval::local(
        ProcessId(p),
        seq,
        VectorClock::from_components(lo.to_vec()),
        VectorClock::from_components(hi.to_vec()),
    )
}

/// Two queues, three intervals each, overlapping chain-wise: 20 choose 10
/// style enumeration (C(6,3) = 20 interleavings).
#[test]
fn confluence_two_queues_interleaved_chain() {
    let seqs = vec![
        vec![
            iv(0, 0, &[1, 0], &[4, 3]),
            iv(0, 1, &[6, 5], &[9, 8]),
            iv(0, 2, &[11, 10], &[14, 13]),
        ],
        vec![
            iv(1, 0, &[2, 1], &[3, 4]),
            iv(1, 1, &[7, 6], &[8, 9]),
            iv(1, 2, &[12, 11], &[13, 14]),
        ],
    ];
    check_confluent(&seqs);
    // Sanity: the reference finds all three matches.
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let reference = run(&seqs, &interleavings(&lens)[0]);
    assert_eq!(reference.len(), 3);
}

/// Mismatched streams: queue 0's intervals mostly precede queue 1's, so
/// sweeps dominate. 10 interleavings… C(5,2) = 10.
#[test]
fn confluence_with_sweep_heavy_streams() {
    let seqs = vec![
        vec![
            iv(0, 0, &[1, 0], &[2, 0]),
            iv(0, 1, &[3, 0], &[4, 0]),
            iv(0, 2, &[5, 0], &[9, 8]),
        ],
        vec![
            iv(1, 0, &[6, 1], &[7, 2]), // after x0#0, x0#1 entirely
            iv(1, 1, &[6, 3], &[8, 9]),
        ],
    ];
    check_confluent(&seqs);
}

/// Three queues, two intervals each: C(6; 2,2,2) = 90 interleavings.
#[test]
fn confluence_three_queues() {
    let seqs = vec![
        vec![
            iv(0, 0, &[1, 0, 0], &[4, 3, 3]),
            iv(0, 1, &[6, 5, 5], &[9, 8, 8]),
        ],
        vec![
            iv(1, 0, &[2, 1, 0], &[3, 4, 3]),
            iv(1, 1, &[7, 6, 5], &[8, 9, 8]),
        ],
        vec![
            iv(2, 0, &[2, 0, 1], &[3, 3, 4]),
            iv(2, 1, &[7, 5, 6], &[8, 8, 9]),
        ],
    ];
    check_confluent(&seqs);
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    assert_eq!(interleavings(&lens).len(), 90);
    let reference = run(&seqs, &interleavings(&lens)[0]);
    assert_eq!(reference.len(), 2, "both rounds detected");
}

/// Solo (non-overlapping) intervals sprinkled in: the sweep must discard
/// them identically under every interleaving.
#[test]
fn confluence_with_solo_intervals() {
    let seqs = vec![
        vec![
            iv(0, 0, &[1, 0, 0], &[2, 0, 0]), // solo: communicates with no one
            iv(0, 1, &[3, 2, 2], &[6, 5, 5]),
        ],
        vec![iv(1, 0, &[4, 3, 2], &[5, 6, 5])],
        vec![iv(2, 0, &[4, 3, 3], &[5, 5, 6])],
    ];
    check_confluent(&seqs);
}

/// Degenerate: one queue empty the whole time — no solutions under any
/// interleaving (the empty queue blocks).
#[test]
fn confluence_with_permanently_empty_queue() {
    let seqs = vec![
        vec![
            iv(0, 0, &[1, 0, 0], &[4, 3, 0]),
            iv(0, 1, &[5, 4, 0], &[8, 7, 0]),
        ],
        vec![iv(1, 0, &[2, 1, 0], &[3, 4, 0])],
        vec![], // silent process
    ];
    let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    for order in interleavings(&lens) {
        assert!(run(&seqs, &order).is_empty());
    }
}
