//! Property tests: the binary codec round-trips every well-formed value
//! and reports exact sizes.

use bytes::{Buf, Bytes};
use ftscp_intervals::codec;
use ftscp_intervals::{aggregate, Interval};
use ftscp_vclock::{ProcessId, VectorClock};
use proptest::prelude::*;

fn clock_strategy(width: usize) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(proptest::num::u32::ANY, width).prop_map(VectorClock::from_components)
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (1usize..8).prop_flat_map(|width| {
        (
            0u32..64,
            proptest::num::u64::ANY,
            clock_strategy(width),
            clock_strategy(width),
        )
            .prop_map(|(p, seq, lo, hi)| Interval::local(ProcessId(p), seq, lo, hi))
    })
}

/// Mixed-tenant batches: 1–6 groups over one clock width (one
/// connection serves one network), each group fanning out to 1–4
/// arbitrary predicate ids.
fn tenant_groups_strategy() -> impl Strategy<Value = Vec<(Vec<u32>, Interval)>> {
    (1usize..8).prop_flat_map(|width| {
        proptest::collection::vec(
            (
                proptest::collection::vec(0u32..1_000_000, 1..5),
                (
                    0u32..64,
                    proptest::num::u64::ANY,
                    clock_strategy(width),
                    clock_strategy(width),
                )
                    .prop_map(|(p, seq, lo, hi)| Interval::local(ProcessId(p), seq, lo, hi)),
            ),
            1..7,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clock_round_trip(c in clock_strategy(6)) {
        let mut buf = bytes::BytesMut::new();
        codec::encode_clock(&c, &mut buf);
        let mut b = buf.freeze();
        prop_assert_eq!(codec::decode_clock(&mut b).unwrap(), c);
    }

    #[test]
    fn local_interval_round_trip(iv in interval_strategy()) {
        let bytes = codec::interval_to_bytes(&iv);
        prop_assert_eq!(bytes.len(), codec::encoded_interval_len(&iv));
        prop_assert_eq!(codec::interval_from_bytes(&bytes).unwrap(), iv);
    }

    /// Aggregations (with multi-entry coverage and level tags) round-trip.
    #[test]
    fn aggregated_interval_round_trip(
        a in interval_strategy(),
        seq in proptest::num::u64::ANY,
        level in 0u32..16,
    ) {
        // Build a second interval of the same width so aggregation works.
        let b = Interval::local(
            ProcessId(a.source.0 + 1),
            a.seq.wrapping_add(1),
            a.lo.clone(),
            a.hi.clone(),
        );
        let agg = aggregate(&[a, b], ProcessId(99), seq, level);
        let bytes = codec::interval_to_bytes(&agg);
        prop_assert_eq!(bytes.len(), codec::encoded_interval_len(&agg));
        prop_assert_eq!(codec::interval_from_bytes(&bytes).unwrap(), agg);
    }

    /// Any truncation of a valid encoding fails cleanly (no panic).
    #[test]
    fn truncation_never_panics(iv in interval_strategy(), cut_frac in 0.0f64..1.0) {
        let bytes = codec::interval_to_bytes(&iv);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let mut t = bytes.clone();
            t.truncate(cut);
            prop_assert!(codec::interval_from_bytes(&t).is_err());
        }
    }

    /// Arbitrary garbage either fails or decodes without panicking.
    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        let b = Bytes::from(data);
        let _ = codec::interval_from_bytes(&b); // must not panic
    }

    /// Any mixed-tenant batch round-trips exactly — standalone or
    /// against a connection base — and the size query is exact. The
    /// in-frame delta chain (group i encoded against group i−1's `lo`)
    /// must be transparent to the caller.
    #[test]
    fn tenant_batch_round_trip(
        groups in tenant_groups_strategy(),
        with_base in proptest::bool::ANY,
    ) {
        // A width-matched connection base, when requested; standalone
        // otherwise (what a resync or cold connection sends).
        let base = if with_base { Some(groups[0].1.lo.clone()) } else { None };
        let mut buf = bytes::BytesMut::new();
        codec::encode_tenant_batch(&groups, base.as_ref(), &mut buf);
        let bytes = buf.freeze();
        prop_assert_eq!(
            bytes.len(),
            codec::encoded_tenant_batch_len(&groups, base.as_ref())
        );
        let mut b = bytes.clone();
        prop_assert_eq!(codec::decode_tenant_batch(&mut b, base.as_ref()).unwrap(), groups);
        prop_assert_eq!(b.remaining(), 0, "decode must consume the frame exactly");
    }

    /// Any truncation of a valid batch fails cleanly (no panic, no
    /// partial-group success masquerading as a full decode).
    #[test]
    fn tenant_batch_truncation_never_panics(
        groups in tenant_groups_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = bytes::BytesMut::new();
        codec::encode_tenant_batch(&groups, None, &mut buf);
        let bytes = buf.freeze();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let mut t = bytes.clone();
            t.truncate(cut);
            prop_assert!(codec::decode_tenant_batch(&mut t, None).is_err());
        }
    }
}
