//! The [`Interval`] type: local predicate spans and their aggregations.

use ftscp_vclock::{ProcessId, VectorClock};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to one *local* interval: the `seq`-th interval at process
/// `process` (0-based). Aggregated intervals carry the set of local
/// intervals they cover as sorted `IntervalRef`s, which lets tests and
/// reports trace any detection back to the concrete predicate spans that
/// produced it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IntervalRef {
    /// The process at which the local interval occurred.
    pub process: ProcessId,
    /// Zero-based index of the interval in that process's history.
    pub seq: u64,
}

impl fmt::Debug for IntervalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.process, self.seq)
    }
}

/// Whether an interval is a raw local predicate span or the `⊓`-aggregation
/// of a solution set found lower in the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum IntervalKind {
    /// A maximal span in which one process's local predicate held; bounds
    /// are timestamps of real events.
    Local,
    /// `⊓(X)` for a solution set `X`; bounds are cuts of the execution
    /// (Theorem 1). The payload is the hierarchy level at which the
    /// aggregation was produced (leaves are level 1, as in §IV-A).
    Aggregated {
        /// Hierarchy level of the node that generated the aggregation.
        level: u32,
    },
}

/// An interval: the duration in which a (local or subtree-level) predicate
/// is true, identified by the vector timestamps of its bounds.
///
/// For a local interval, `lo` is the timestamp of the first event of the
/// span (`min(x)` in the paper) and `hi` the timestamp of the last
/// (`max(x)`). For an aggregated interval the bounds are cuts computed by
/// [`crate::aggregate()`](crate::aggregate::aggregate).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// The process that produced the interval: the owner for local
    /// intervals, the aggregating subtree root for aggregated ones.
    pub source: ProcessId,
    /// Per-source sequence number; `succ(x)` of the paper is the interval
    /// with the same source and the next `seq`.
    pub seq: u64,
    /// `min(x)`: timestamp of the interval's start (or low cut).
    pub lo: VectorClock,
    /// `max(x)`: timestamp of the interval's end (or high cut).
    pub hi: VectorClock,
    /// Local vs aggregated.
    pub kind: IntervalKind,
    /// Sorted refs of every local interval this one covers (itself, for a
    /// local interval).
    pub coverage: Vec<IntervalRef>,
}

impl Interval {
    /// Builds a local interval for `process`'s `seq`-th predicate span.
    pub fn local(process: ProcessId, seq: u64, lo: VectorClock, hi: VectorClock) -> Self {
        debug_assert_eq!(lo.len(), hi.len(), "bound width mismatch");
        Interval {
            source: process,
            seq,
            lo,
            hi,
            kind: IntervalKind::Local,
            coverage: vec![IntervalRef { process, seq }],
        }
    }

    /// Number of processes in the system (width of the bound vectors).
    #[inline]
    pub fn width(&self) -> usize {
        self.lo.len()
    }

    /// True iff this is an aggregated interval.
    #[inline]
    pub fn is_aggregated(&self) -> bool {
        matches!(self.kind, IntervalKind::Aggregated { .. })
    }

    /// The processes whose local intervals this interval covers.
    pub fn covered_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.coverage.iter().map(|r| r.process)
    }

    /// Well-formedness: `lo ≤ hi` component-wise. Holds for local intervals
    /// by construction and for aggregations of overlapping sets by
    /// Theorem 2's first half.
    pub fn is_well_formed(&self) -> bool {
        self.lo.less_eq(&self.hi)
    }

    /// Wire size in bytes under the binary codec in [`crate::codec`]
    /// (used for message-size accounting and buffer pre-sizing).
    pub fn wire_size(&self) -> usize {
        crate::codec::encoded_interval_len(self)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            IntervalKind::Local => "ivl".to_string(),
            IntervalKind::Aggregated { level } => format!("agg@L{level}"),
        };
        write!(
            f,
            "{}[{}#{} lo={:?} hi={:?}]",
            tag, self.source, self.seq, self.lo, self.hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(c: &[u32]) -> VectorClock {
        VectorClock::from_components(c.to_vec())
    }

    #[test]
    fn local_interval_covers_itself() {
        let iv = Interval::local(ProcessId(2), 5, vc(&[0, 0, 1]), vc(&[0, 0, 4]));
        assert_eq!(
            iv.coverage,
            vec![IntervalRef {
                process: ProcessId(2),
                seq: 5
            }]
        );
        assert!(!iv.is_aggregated());
        assert!(iv.is_well_formed());
        assert_eq!(iv.width(), 3);
    }

    #[test]
    fn covered_processes_lists_owners() {
        let iv = Interval::local(ProcessId(1), 0, vc(&[0, 1]), vc(&[0, 2]));
        let procs: Vec<_> = iv.covered_processes().collect();
        assert_eq!(procs, vec![ProcessId(1)]);
    }

    #[test]
    fn ill_formed_interval_detected() {
        let iv = Interval::local(ProcessId(0), 0, vc(&[5, 0]), vc(&[1, 9]));
        assert!(!iv.is_well_formed());
    }

    #[test]
    fn wire_size_includes_bounds_and_coverage() {
        let iv = Interval::local(ProcessId(0), 0, vc(&[0, 0]), vc(&[1, 1]));
        // source 4 + seq 8 + kind tag 1 + two clocks of (4 + 2·4) bytes
        // + coverage length 4 + one coverage entry 12
        assert_eq!(iv.wire_size(), 4 + 8 + 1 + 12 + 12 + 4 + 12);
        // ... and it is exactly the codec's output length.
        assert_eq!(iv.wire_size(), crate::codec::interval_to_bytes(&iv).len());
    }

    #[test]
    fn debug_format_mentions_kind() {
        let iv = Interval::local(ProcessId(0), 3, vc(&[1]), vc(&[2]));
        assert!(format!("{iv:?}").starts_with("ivl[P0#3"));
    }
}
