//! [`QueueBank`] — the repeated-detection engine of Algorithm 1.
//!
//! Every node of the hierarchical algorithm runs one `QueueBank` over
//! `1 + l` queues (its own local queue `Q_0` plus one queue per child); the
//! centralized baseline \[12\] runs a single `QueueBank` over `n` queues at
//! the sink. The bank implements, verbatim:
//!
//! * **lines (1)–(17)**: on an enqueue that makes a queue's head fresh, run
//!   the pairwise pruning sweep — for the head `x` of every updated queue
//!   and the head `y` of every other queue, delete `y` if `min(x) ≮ max(y)`
//!   and delete `x` if `min(y) ≮ max(x)` (deletions happen after each
//!   sweep, exactly as line (16) does), iterating until no queue is updated;
//! * **lines (18)–(22)**: if every queue is non-empty afterwards, the heads
//!   mutually overlap — emit them as a [`Solution`];
//! * **lines (23)–(33)**: prune the solution's heads with Eq. (10) and
//!   continue the sweep with the pruned queues, so multiple solutions can
//!   cascade from a single arrival.
//!
//! Queues are identified by stable [`SlotId`]s so the fault-tolerance layer
//! can remove a dead child's queue (§III-F) or add a queue for an adopted
//! child without disturbing the others.

use crate::interval::Interval;
use crate::par;
use crate::prune;
use crate::solution::Solution;
use crate::summary::SweepSummary;
use ftscp_vclock::{order, OpCounter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Stable identifier of one queue within a [`QueueBank`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SlotId(pub u32);

#[derive(Clone, Debug, Default)]
struct QueueSlot {
    items: VecDeque<Interval>,
    peak_len: usize,
    enqueued: u64,
    discarded: u64,
    /// Ephemeral queues self-destruct when they drain (instead of
    /// blocking detection): used to seed a promoted root with its last
    /// pre-promotion aggregate (§III-F failover).
    ephemeral: bool,
}

/// Aggregate statistics of a bank, for the space/time reproduction of
/// Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Total intervals ever enqueued.
    pub enqueued: u64,
    /// Intervals deleted by the pairwise sweep (lines (1)–(17)).
    pub swept: u64,
    /// Intervals deleted by the Eq. (10) prune (lines (23)–(33)).
    pub pruned: u64,
    /// Solutions emitted.
    pub solutions: u64,
    /// Peak number of intervals resident across all queues simultaneously.
    pub peak_resident: usize,
    /// Peak length of any single queue.
    pub peak_queue_len: usize,
    /// Head-pair verdicts answered from the incremental cache (each hit
    /// skips two vector-clock comparisons).
    pub cache_hits: u64,
    /// Head-pair verdicts computed and cached.
    pub cache_misses: u64,
    /// Sweep visits certified overlap-clean by the `⊓`-summary gate
    /// ([`SweepMode::Aggregate`] only): the whole pairwise row was skipped.
    pub gate_hits: u64,
    /// Sweep visits the summary gate could not certify, falling back to
    /// the pairwise row to identify which head(s) to delete.
    pub gate_misses: u64,
}

/// How the pairwise sweep (lines (1)–(17)) evaluates head-overlap checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Recompute both directed comparisons on every visit — the original
    /// behavior, kept for before/after benchmarking and differential tests.
    Full,
    /// Cache the pairwise verdict per (queue pair, head generations): a
    /// head-pair whose heads are unchanged since its last evaluation is
    /// answered from the cache with zero comparison cost. Deletion and
    /// emission decisions are bit-identical to [`SweepMode::Full`] — only
    /// the operation count changes.
    #[default]
    Incremental,
    /// Maintain a running per-component `⊓`-summary of the queue heads
    /// ([`SweepSummary`], Theorem 1 / Lemma 1) and test each sweep visit
    /// against the summary in `O(n)` instead of against all `k − 1` other
    /// heads, falling back to the exact pairwise row only when the summary
    /// cannot certify the visit clean — i.e. only to identify *which* head
    /// to delete. All comparisons (gate and fallback) run through the
    /// word-chunked comparator and bill per
    /// [`CHUNK_WIDTH`](ftscp_vclock::order::CHUNK_WIDTH)-component word.
    /// Deletion, emission, and prune decisions are bit-identical to
    /// [`SweepMode::Full`] — only the traversal and the operation count
    /// change.
    Aggregate,
    /// [`Aggregate`](SweepMode::Aggregate) with the large per-visit
    /// regions — summary materialization, the pairwise fallback row, and
    /// the Eq. (10) prune pre-gate — sharded across scoped worker threads
    /// (see the `par` module). `threads: 0` resolves via
    /// [`effective_threads`](crate::par::effective_threads) (the
    /// `FTSCP_SWEEP_THREADS` env var, else `available_parallelism`); a
    /// resolved count of 1, or a region smaller than the spawn-amortizing
    /// threshold, runs the sequential `Aggregate` code unchanged.
    ///
    /// The contract is bit-identical observable state: the same deletion
    /// order, same emissions, same prune decisions, and the same
    /// [`OpCounter`] totals as `Aggregate` — parallelism only changes
    /// wall-clock. Each call site carries its determinism argument; the
    /// bench harness and property tests assert the equality at runtime.
    AggregateParallel {
        /// Worker-thread budget per parallel region; 0 = auto.
        threads: usize,
    },
}

impl SweepMode {
    /// True for the summary-gated sweeps ([`Aggregate`](Self::Aggregate)
    /// and [`AggregateParallel`](Self::AggregateParallel)), which share
    /// the `⊓`-summary, chunked comparators, and aggregate prune.
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            SweepMode::Aggregate | SweepMode::AggregateParallel { .. }
        )
    }
}

/// Cached directed-overlap verdict for the heads of one queue pair,
/// valid only while both head generations match.
#[derive(Clone, Copy, Debug)]
struct PairVerdict {
    gen_lo: u64,
    gen_hi: u64,
    /// `min(head(lo_slot)) < max(head(hi_slot))`.
    lo_lt: bool,
    /// `min(head(hi_slot)) < max(head(lo_slot))`.
    hi_lt: bool,
}

/// Serializable image of one queue (see [`QueueBank::snapshot`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlotSnapshot {
    /// Resident intervals, front first.
    pub items: Vec<Interval>,
    /// Peak length reached.
    pub peak_len: usize,
    /// Lifetime enqueue count.
    pub enqueued: u64,
    /// Lifetime discard count.
    pub discarded: u64,
    /// Self-destructing queue flag.
    pub ephemeral: bool,
}

/// Serializable image of a whole bank (see [`QueueBank::snapshot`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BankSnapshot {
    /// Per-slot state (`None` = removed slot).
    pub slots: Vec<Option<SlotSnapshot>>,
    /// Counters at snapshot time.
    pub stats: BankStats,
    /// Monotone solution counter.
    pub solution_counter: u64,
    /// Emitted-member identity set.
    pub emitted: Vec<(u32, u64, bool)>,
}

/// Identity of an interval in trace events: `(source, seq, aggregated?)`.
pub type TraceId = (u32, u64, bool);

/// One decision taken by the bank, recorded when tracing is enabled via
/// [`QueueBank::with_trace`]. The trace answers the operational question
/// "why was/wasn't the predicate detected?" — every discard says which
/// head doomed it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankEvent {
    /// An interval joined queue `slot`.
    Enqueued {
        /// Receiving queue.
        slot: SlotId,
        /// Interval identity.
        id: TraceId,
    },
    /// A head was discarded by the pairwise sweep (lines (12)/(14)):
    /// `culprit`'s `min` does not precede `id`'s `max`, so `id` can never
    /// be part of a solution again.
    Swept {
        /// Queue the head was removed from.
        slot: SlotId,
        /// The discarded head.
        id: TraceId,
        /// The head that doomed it.
        culprit: TraceId,
    },
    /// The mutually overlapping heads were emitted as a solution.
    SolutionEmitted {
        /// Solution index.
        index: u64,
        /// Member identities.
        members: Vec<TraceId>,
    },
    /// Heads mutually overlapped but every member had already been part
    /// of an emitted solution (a queue-removal release): suppressed as a
    /// duplicate occurrence.
    SolutionSuppressed {
        /// Member identities.
        members: Vec<TraceId>,
    },
    /// A head was consumed by the post-solution Eq. (10) prune.
    Pruned {
        /// Queue the head was removed from.
        slot: SlotId,
        /// The consumed head.
        id: TraceId,
    },
    /// A queue was removed (dead child or drained ephemeral seed).
    QueueRemoved {
        /// The removed queue.
        slot: SlotId,
    },
    /// A queue was added (adopted child or ephemeral seed).
    QueueAdded {
        /// The new queue.
        slot: SlotId,
    },
}

fn trace_id(iv: &Interval) -> TraceId {
    (iv.source.0, iv.seq, iv.is_aggregated())
}

/// Renders a trace id as `P3#7` (local) or `P3#7⊓` (aggregated).
fn fmt_id(id: &TraceId) -> String {
    format!("P{}#{}{}", id.0, id.1, if id.2 { "⊓" } else { "" })
}

/// Human-readable rendering of a decision trace, one line per event.
pub fn render_trace(events: &[BankEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let line = match ev {
            BankEvent::Enqueued { slot, id } => {
                format!("enqueue  {} → queue {}", fmt_id(id), slot.0)
            }
            BankEvent::Swept { slot, id, culprit } => format!(
                "sweep    {} (queue {}) — min({}) ≮ max({}): can never overlap it again",
                fmt_id(id),
                slot.0,
                fmt_id(culprit),
                fmt_id(id)
            ),
            BankEvent::SolutionEmitted { index, members } => format!(
                "SOLUTION #{index}: {{{}}}",
                members.iter().map(fmt_id).collect::<Vec<_>>().join(", ")
            ),
            BankEvent::SolutionSuppressed { members } => format!(
                "suppress duplicate subset {{{}}}",
                members.iter().map(fmt_id).collect::<Vec<_>>().join(", ")
            ),
            BankEvent::Pruned { slot, id } => format!(
                "prune    {} (queue {}) — Eq. (10): no other max precedes its max",
                fmt_id(id),
                slot.0
            ),
            BankEvent::QueueRemoved { slot } => format!("queue {} removed", slot.0),
            BankEvent::QueueAdded { slot } => format!("queue {} added", slot.0),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The queue bank: Algorithm 1's per-node state and detection loop.
#[derive(Clone, Debug)]
pub struct QueueBank {
    slots: Vec<Option<QueueSlot>>,
    active: usize,
    ops: OpCounter,
    stats: BankStats,
    solution_counter: u64,
    /// Identities `(source, seq, aggregated?)` of every interval that has
    /// been a member of an emitted solution. A candidate solution with no
    /// fresh member is necessarily a subset of an earlier solution (heads
    /// only ever pop), i.e. a duplicate occurrence released by a queue
    /// removal — it is pruned but not re-emitted.
    emitted: HashSet<(u32, u64, bool)>,
    /// Decision trace (None = disabled).
    trace: Option<Vec<BankEvent>>,
    /// Sweep evaluation strategy.
    mode: SweepMode,
    /// Per-slot head generation: bumped whenever a slot's head changes
    /// (new head enqueued into an empty queue, head popped, slot reused).
    /// Indexed like `slots`; survives slot removal so stale cache entries
    /// can never match a reused slot id.
    head_gens: Vec<u64>,
    /// Pairwise verdict cache keyed by `(min_idx, max_idx)`. Transient:
    /// never snapshotted, rebuilt on demand after a restore.
    pair_cache: HashMap<(usize, usize), PairVerdict>,
    /// Running `⊓`-summary of the live heads. Maintained only under
    /// [`SweepMode::Aggregate`]; transient like the pair cache (rebuilt on
    /// mode selection, never snapshotted).
    summary: SweepSummary,
}

/// Current `(lo, hi)` component slices of every queue head, indexed by
/// slot — the materialization input for [`SweepSummary::certify`].
fn summary_heads(slots: &[Option<QueueSlot>]) -> Vec<Option<(&[u32], &[u32])>> {
    slots
        .iter()
        .map(|s| {
            s.as_ref()
                .and_then(|q| q.items.front())
                .map(|iv| (iv.lo.components(), iv.hi.components()))
        })
        .collect()
}

impl QueueBank {
    /// A bank with `queues` initial queues (slots `0..queues`).
    pub fn new(queues: usize) -> Self {
        QueueBank {
            slots: (0..queues).map(|_| Some(QueueSlot::default())).collect(),
            active: queues,
            ops: OpCounter::new(),
            stats: BankStats::default(),
            solution_counter: 0,
            emitted: HashSet::new(),
            trace: None,
            mode: SweepMode::default(),
            head_gens: vec![0; queues],
            pair_cache: HashMap::new(),
            summary: SweepSummary::new(),
        }
    }

    /// Selects the sweep evaluation strategy; returns `self` for
    /// builder-style use. Detection outcomes are identical either way —
    /// only the comparison count differs.
    pub fn with_sweep_mode(mut self, mode: SweepMode) -> Self {
        self.mode = mode;
        // Lazily rebuilt from the live heads on the next Aggregate sweep.
        self.summary.clear();
        self
    }

    /// The active sweep evaluation strategy.
    pub fn sweep_mode(&self) -> SweepMode {
        self.mode
    }

    /// Enables decision tracing; events accumulate until drained with
    /// [`take_trace`](Self::take_trace).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Drains and returns the recorded trace (empty if tracing is off).
    pub fn take_trace(&mut self) -> Vec<BankEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn record(&mut self, ev: BankEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    /// Installs a shared operation counter (for distributed cost
    /// accounting); returns `self` for builder-style use.
    pub fn with_ops_counter(mut self, ops: OpCounter) -> Self {
        self.ops = ops;
        self
    }

    /// The operation counter billed for every vector-clock comparison.
    pub fn ops(&self) -> &OpCounter {
        &self.ops
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Number of live queues.
    pub fn queue_count(&self) -> usize {
        self.active
    }

    /// Ids of the live queues, ascending.
    pub fn slot_ids(&self) -> Vec<SlotId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| SlotId(i as u32)))
            .collect()
    }

    /// Current length of queue `slot` (0 if the slot was removed).
    pub fn queue_len(&self, slot: SlotId) -> usize {
        self.slot(slot).map_or(0, |q| q.items.len())
    }

    /// Current head of queue `slot`.
    pub fn head(&self, slot: SlotId) -> Option<&Interval> {
        self.slot(slot).and_then(|q| q.items.front())
    }

    /// Total intervals currently resident across all queues.
    pub fn resident(&self) -> usize {
        self.slots.iter().flatten().map(|q| q.items.len()).sum()
    }

    /// Adds a fresh empty queue, returning its id. Used when a node adopts
    /// a child after a tree reconnection (§III-F).
    ///
    /// An empty queue blocks detection until its first interval arrives, so
    /// adding one never spuriously emits solutions.
    pub fn add_queue(&mut self) -> SlotId {
        // Reuse the first free slot if any, else append.
        for i in 0..self.slots.len() {
            if self.slots[i].is_none() {
                self.slots[i] = Some(QueueSlot::default());
                self.active += 1;
                self.head_gens[i] += 1;
                let slot = SlotId(i as u32);
                self.record(BankEvent::QueueAdded { slot });
                return slot;
            }
        }
        self.slots.push(Some(QueueSlot::default()));
        self.head_gens.push(0);
        self.active += 1;
        let slot = SlotId((self.slots.len() - 1) as u32);
        self.record(BankEvent::QueueAdded { slot });
        slot
    }

    /// Removes queue `slot` and its contents — a dead child's queue
    /// (§III-F). Removing a queue can unblock detection among the remaining
    /// queues, so the detection loop reruns; any solutions found are
    /// returned.
    pub fn remove_queue(&mut self, slot: SlotId) -> Vec<Solution> {
        let idx = slot.0 as usize;
        if self.slots.get(idx).and_then(|s| s.as_ref()).is_none() {
            return Vec::new();
        }
        if self.mode.is_aggregate() {
            self.summary.touch();
        }
        self.slots[idx] = None;
        self.active -= 1;
        self.head_gens[idx] += 1;
        self.pair_cache.retain(|&(a, b), _| a != idx && b != idx);
        self.record(BankEvent::QueueRemoved { slot });
        if self.active == 0 {
            return Vec::new();
        }
        // The remaining heads were already mutually pruned against each
        // other, but the removed queue's emptiness may have been the only
        // thing blocking a solution. Re-run with every non-empty queue
        // marked updated so the solution check fires.
        let updated: BTreeSet<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|q| !q.items.is_empty()))
            .map(|(i, _)| i)
            .collect();
        if updated.is_empty() {
            return Vec::new();
        }
        self.run_detection(updated)
    }

    /// Algorithm 1, lines (1)–(3): enqueue an interval onto queue `slot`
    /// and, if it became the head, run the detection loop. Returns every
    /// solution that cascaded from this arrival.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not name a live queue — feeding a removed
    /// child's queue is a protocol error the caller must prevent.
    pub fn enqueue(&mut self, slot: SlotId, interval: Interval) -> Vec<Solution> {
        let idx = slot.0 as usize;
        let q = self.slots[idx]
            .as_mut()
            .unwrap_or_else(|| panic!("enqueue on removed queue {slot:?}"));
        let id = trace_id(&interval);
        q.items.push_back(interval);
        q.enqueued += 1;
        q.peak_len = q.peak_len.max(q.items.len());
        let new_len = q.items.len();
        self.stats.enqueued += 1;
        self.stats.peak_queue_len = self.stats.peak_queue_len.max(new_len);
        self.stats.peak_resident = self.stats.peak_resident.max(self.resident());
        self.record(BankEvent::Enqueued { slot, id });

        if new_len == 1 {
            self.head_gens[idx] += 1;
            if self.mode.is_aggregate() {
                self.summary.touch();
            }
            self.run_detection(BTreeSet::from([idx]))
        } else {
            Vec::new()
        }
    }

    fn slot(&self, slot: SlotId) -> Option<&QueueSlot> {
        self.slots.get(slot.0 as usize).and_then(|s| s.as_ref())
    }

    /// Pops queue `idx`'s head, returning its trace identity.
    fn pop_head(&mut self, idx: usize, swept: bool) -> Option<TraceId> {
        let mut popped = None;
        let mut vanished = false;
        if let Some(q) = self.slots[idx].as_mut() {
            if let Some(iv) = q.items.pop_front() {
                self.head_gens[idx] += 1;
                popped = Some(trace_id(&iv));
                q.discarded += 1;
                if swept {
                    self.stats.swept += 1;
                } else {
                    self.stats.pruned += 1;
                }
            }
            if q.ephemeral && q.items.is_empty() {
                self.slots[idx] = None;
                self.active -= 1;
                vanished = true;
            }
        }
        if vanished {
            self.record(BankEvent::QueueRemoved {
                slot: SlotId(idx as u32),
            });
        }
        if popped.is_some() && self.mode.is_aggregate() {
            self.summary.touch();
        }
        popped
    }

    /// Adds a self-destructing queue holding exactly `seed`: it
    /// participates in detection like any queue, but once its content is
    /// consumed (swept or pruned) the queue removes itself rather than
    /// blocking with emptiness. Returns any solutions released.
    ///
    /// Used when a node is promoted to root after a failure and must fold
    /// its own last (un-consumed) aggregate back into detection.
    pub fn add_ephemeral_queue(&mut self, seed: Interval) -> Vec<Solution> {
        let slot = self.add_queue();
        let idx = slot.0 as usize;
        self.slots[idx].as_mut().expect("just added").ephemeral = true;
        self.enqueue(slot, seed)
    }

    /// Serializable snapshot of the bank's full state — for checkpointing
    /// a monitor to stable storage so a rebooted node can resume detection
    /// where it left off (crash-*recovery*, complementing the paper's
    /// crash-stop tolerance).
    pub fn snapshot(&self) -> BankSnapshot {
        BankSnapshot {
            slots: self
                .slots
                .iter()
                .map(|s| {
                    s.as_ref().map(|q| SlotSnapshot {
                        items: q.items.iter().cloned().collect(),
                        peak_len: q.peak_len,
                        enqueued: q.enqueued,
                        discarded: q.discarded,
                        ephemeral: q.ephemeral,
                    })
                })
                .collect(),
            stats: self.stats,
            solution_counter: self.solution_counter,
            emitted: self.emitted.iter().copied().collect(),
        }
    }

    /// Restores a bank from a [`snapshot`](Self::snapshot). The operation
    /// counter starts fresh (work done before the crash is not re-billed).
    pub fn restore(snapshot: BankSnapshot) -> QueueBank {
        let slots: Vec<Option<QueueSlot>> = snapshot
            .slots
            .into_iter()
            .map(|s| {
                s.map(|q| QueueSlot {
                    items: q.items.into(),
                    peak_len: q.peak_len,
                    enqueued: q.enqueued,
                    discarded: q.discarded,
                    ephemeral: q.ephemeral,
                })
            })
            .collect();
        let active = slots.iter().filter(|s| s.is_some()).count();
        let gens = slots.len();
        QueueBank {
            slots,
            active,
            ops: OpCounter::new(),
            stats: snapshot.stats,
            solution_counter: snapshot.solution_counter,
            emitted: snapshot.emitted.into_iter().collect(),
            trace: None,
            mode: SweepMode::default(),
            // The verdict cache is transient: start cold with fresh
            // generations and let it warm back up. Likewise the sweep
            // summary: rebuilt when `with_sweep_mode` selects Aggregate.
            head_gens: vec![0; gens],
            pair_cache: HashMap::new(),
            summary: SweepSummary::new(),
        }
    }

    /// Returns `(min(x) < max(y), min(y) < max(x))` for `x = head(a)`,
    /// `y = head(b)`, or `None` if either queue lacks a head.
    ///
    /// In [`SweepMode::Incremental`] the answer is served from the pair
    /// cache when both head generations are unchanged since the verdict
    /// was computed — billing zero comparison units — and computed (and
    /// cached) otherwise. [`SweepMode::Full`] always recomputes, exactly
    /// like the pre-cache sweep.
    fn head_verdict(&mut self, a: usize, b: usize) -> Option<(bool, bool)> {
        let x = self.slots.get(a)?.as_ref()?.items.front()?;
        let y = self.slots.get(b)?.as_ref()?.items.front()?;
        if matches!(self.mode, SweepMode::Full) {
            let x_lt = order::strictly_less_counted(&x.lo, &y.hi, &self.ops);
            let y_lt = order::strictly_less_counted(&y.lo, &x.hi, &self.ops);
            return Some((x_lt, y_lt));
        }
        if self.mode.is_aggregate() {
            // Pairwise fallback rows (summary gate failed) run through the
            // word-chunked comparator; no pair cache in this mode.
            let x_lt = order::strictly_less_chunked_counted(&x.lo, &y.hi, &self.ops);
            let y_lt = order::strictly_less_chunked_counted(&y.lo, &x.hi, &self.ops);
            return Some((x_lt, y_lt));
        }
        let key = (a.min(b), a.max(b));
        let (gen_lo, gen_hi) = (self.head_gens[key.0], self.head_gens[key.1]);
        if let Some(v) = self.pair_cache.get(&key) {
            if v.gen_lo == gen_lo && v.gen_hi == gen_hi {
                self.stats.cache_hits += 1;
                return Some(if a == key.0 {
                    (v.lo_lt, v.hi_lt)
                } else {
                    (v.hi_lt, v.lo_lt)
                });
            }
        }
        let (p, q) = if a == key.0 { (x, y) } else { (y, x) };
        let lo_lt = order::strictly_less_counted(&p.lo, &q.hi, &self.ops);
        let hi_lt = order::strictly_less_counted(&q.lo, &p.hi, &self.ops);
        self.pair_cache.insert(
            key,
            PairVerdict {
                gen_lo,
                gen_hi,
                lo_lt,
                hi_lt,
            },
        );
        self.stats.cache_misses += 1;
        Some(if a == key.0 {
            (lo_lt, hi_lt)
        } else {
            (hi_lt, lo_lt)
        })
    }

    /// Resolved worker budget for parallel sweep regions: 1 unless the
    /// mode is [`SweepMode::AggregateParallel`].
    fn sweep_threads(&self) -> usize {
        match self.mode {
            SweepMode::AggregateParallel { threads } => par::effective_threads(threads),
            _ => 1,
        }
    }

    /// The main loop: pairwise sweep to fixpoint, then solution emission and
    /// Eq. (10) pruning, repeated while progress is possible.
    fn run_detection(&mut self, mut updated: BTreeSet<usize>) -> Vec<Solution> {
        let mut solutions = Vec::new();
        loop {
            // Lines (4)–(17): sweep until no queue is updated.
            while !updated.is_empty() {
                let mut new_updated: BTreeSet<usize> = BTreeSet::new();
                let mut culprits: std::collections::BTreeMap<usize, TraceId> =
                    std::collections::BTreeMap::new();
                for &a in &updated {
                    let Some(x_id) = self.slots[a]
                        .as_ref()
                        .and_then(|q| q.items.front())
                        .map(trace_id)
                    else {
                        continue;
                    };
                    // Per-visit region size (other heads × clock width):
                    // with a worker budget > 1, regions past PAR_MIN_REGION
                    // shard across scoped threads; everything else runs the
                    // sequential Aggregate code verbatim.
                    let threads = self.sweep_threads();
                    let width = self.slots[a]
                        .as_ref()
                        .and_then(|q| q.items.front())
                        .map_or(0, |iv| iv.lo.components().len());
                    let region = self.active.saturating_sub(1) * width;
                    let region_threads = if threads > 1 && region >= par::PAR_MIN_REGION {
                        threads
                    } else {
                        1
                    };
                    if self.mode.is_aggregate() {
                        // One O(n) test against the ⊓-summary replaces the
                        // O(k·n) pairwise row whenever it certifies that
                        // this visit deletes nothing (the overwhelmingly
                        // common case); the pairwise fallback below runs
                        // only to identify which head(s) to delete.
                        let QueueBank {
                            summary,
                            slots,
                            ops,
                            stats,
                            ..
                        } = self;
                        let heads = summary_heads(slots);
                        let iv = slots[a]
                            .as_ref()
                            .and_then(|q| q.items.front())
                            .expect("head id was just read");
                        if summary.certify_par(
                            a,
                            iv.lo.components(),
                            iv.hi.components(),
                            &heads,
                            ops,
                            region_threads,
                        ) {
                            stats.gate_hits += 1;
                            continue;
                        }
                        stats.gate_misses += 1;
                    }
                    if region_threads > 1 {
                        // Parallel pairwise fallback row. The sequential
                        // row visits every b without cross-b early exit and
                        // each (a, b) verdict reads only the two heads, so
                        // per-b verdicts computed on any worker are the
                        // same values; merging them in ascending b keeps
                        // the first-wins culprit rule, and the shared
                        // counter receives the same per-pair amounts in
                        // some order — identical totals, Relaxed adds.
                        let ivs: Vec<Option<&Interval>> = self
                            .slots
                            .iter()
                            .map(|s| s.as_ref().and_then(|q| q.items.front()))
                            .collect();
                        let x = ivs[a].expect("head id was just read");
                        let ops = &self.ops;
                        let rows = par::run_partitioned(
                            ivs.len(),
                            region_threads * 4,
                            region_threads,
                            |r| {
                                let mut out: Vec<(usize, bool, bool, TraceId)> = Vec::new();
                                for b in r {
                                    if b == a {
                                        continue;
                                    }
                                    let Some(y) = ivs[b] else {
                                        continue;
                                    };
                                    let x_lt =
                                        order::strictly_less_chunked_counted(&x.lo, &y.hi, ops);
                                    let y_lt =
                                        order::strictly_less_chunked_counted(&y.lo, &x.hi, ops);
                                    out.push((b, x_lt, y_lt, trace_id(y)));
                                }
                                out
                            },
                        );
                        for (b, x_lt, y_lt, y_id) in rows.into_iter().flatten() {
                            if !x_lt {
                                new_updated.insert(b);
                                culprits.entry(b).or_insert(x_id);
                            }
                            if !y_lt {
                                new_updated.insert(a);
                                culprits.entry(a).or_insert(y_id);
                            }
                        }
                        continue;
                    }
                    for b in 0..self.slots.len() {
                        if b == a {
                            continue;
                        }
                        let Some((x_lt, y_lt)) = self.head_verdict(a, b) else {
                            continue;
                        };
                        // Line (12): min(x) ≮ max(y) ⇒ y can never join a
                        // solution with x or any successor of x.
                        if !x_lt {
                            new_updated.insert(b);
                            culprits.entry(b).or_insert(x_id);
                        }
                        // Line (14): min(y) ≮ max(x) ⇒ x is doomed likewise.
                        if !y_lt {
                            new_updated.insert(a);
                            let y_id = self.slots[b]
                                .as_ref()
                                .and_then(|q| q.items.front())
                                .map(trace_id)
                                .expect("head_verdict saw a head");
                            culprits.entry(a).or_insert(y_id);
                        }
                    }
                }
                // Line (16): delete the heads marked this sweep.
                for &c in &new_updated {
                    if let Some(id) = self.pop_head(c, true) {
                        if let Some(&culprit) = culprits.get(&c) {
                            self.record(BankEvent::Swept {
                                slot: SlotId(c as u32),
                                id,
                                culprit,
                            });
                        }
                    }
                }
                updated = new_updated;
            }

            // Line (18): solution iff every live queue is non-empty.
            let all_non_empty = self.slots.iter().flatten().all(|q| !q.items.is_empty());
            if self.active == 0 || !all_non_empty {
                return solutions;
            }

            let heads: Vec<Interval> = self
                .slots
                .iter()
                .flatten()
                .map(|q| q.items.front().expect("checked non-empty").clone())
                .collect();
            let head_indices: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i)
                .collect();

            debug_assert!(
                crate::overlap::definitely_holds(&heads),
                "sweep fixpoint must leave mutually overlapping heads"
            );

            // Emit only if some member is fresh (see `emitted`).
            let identity = |iv: &Interval| (iv.source.0, iv.seq, iv.is_aggregated());
            let fresh = heads.iter().any(|iv| !self.emitted.contains(&identity(iv)));
            if fresh {
                for iv in &heads {
                    self.emitted.insert(identity(iv));
                }
                let solution = Solution {
                    intervals: heads.clone(),
                    index: self.solution_counter,
                };
                self.record(BankEvent::SolutionEmitted {
                    index: self.solution_counter,
                    members: heads.iter().map(trace_id).collect(),
                });
                self.solution_counter += 1;
                self.stats.solutions += 1;
                solutions.push(solution);
            } else {
                self.record(BankEvent::SolutionSuppressed {
                    members: heads.iter().map(trace_id).collect(),
                });
            }

            // Lines (23)–(33): Eq. (10) prune; continue with pruned queues.
            let refs: Vec<&Interval> = heads.iter().collect();
            let removable = match self.mode {
                SweepMode::Aggregate => prune::approximate_removals_aggregate(&refs, &self.ops),
                SweepMode::AggregateParallel { .. } => prune::approximate_removals_aggregate_par(
                    &refs,
                    &self.ops,
                    self.sweep_threads(),
                ),
                _ => prune::approximate_removals(&refs, &self.ops),
            };
            debug_assert!(!removable.is_empty(), "Theorem 4: at least one removal");
            let mut pruned = BTreeSet::new();
            for r in &removable {
                let idx = head_indices[*r];
                if let Some(id) = self.pop_head(idx, false) {
                    self.record(BankEvent::Pruned {
                        slot: SlotId(idx as u32),
                        id,
                    });
                }
                pruned.insert(idx);
            }
            if pruned.is_empty() {
                return solutions; // unreachable by Theorem 4; belt & braces
            }
            updated = pruned;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::{ProcessId, VectorClock};

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    #[test]
    fn single_queue_bank_emits_every_interval_as_a_solution() {
        // A leaf node has only its local queue: every local interval is a
        // solution for the (trivial) subtree and is immediately pruned.
        let mut bank = QueueBank::new(1);
        let s0 = bank.enqueue(SlotId(0), iv(0, 0, &[1], &[2]));
        let s1 = bank.enqueue(SlotId(0), iv(0, 1, &[3], &[4]));
        assert_eq!(s0.len(), 1);
        assert_eq!(s1.len(), 1);
        assert_eq!(bank.queue_len(SlotId(0)), 0, "heads pruned after emission");
        assert_eq!(bank.stats().solutions, 2);
    }

    #[test]
    fn two_queue_overlap_detected() {
        let mut bank = QueueBank::new(2);
        assert!(bank
            .enqueue(SlotId(0), iv(0, 0, &[1, 0], &[4, 3]))
            .is_empty());
        let sols = bank.enqueue(SlotId(1), iv(1, 0, &[2, 1], &[3, 4]));
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_valid());
        assert_eq!(sols[0].intervals.len(), 2);
    }

    #[test]
    fn non_overlapping_heads_are_swept() {
        let mut bank = QueueBank::new(2);
        // a entirely precedes b: when b arrives, a must be swept
        // (min(b) ≮ max(a)), leaving q0 empty and no solution.
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[2, 0]));
        let sols = bank.enqueue(SlotId(1), iv(1, 0, &[3, 1], &[3, 2]));
        assert!(sols.is_empty());
        assert_eq!(bank.queue_len(SlotId(0)), 0, "stale head swept");
        assert_eq!(bank.queue_len(SlotId(1)), 1, "fresh head kept");
        assert_eq!(bank.stats().swept, 1);
    }

    #[test]
    fn repeated_detection_finds_second_solution() {
        let mut bank = QueueBank::new(2);
        // Solution 1: a0 × b0. a0's max dominates b0's max? Construct so
        // only b0 is pruned, then b1 overlaps a0 again → solution 2.
        let a0 = iv(0, 0, &[1, 0], &[6, 5]);
        let b0 = iv(1, 0, &[2, 1], &[3, 2]);
        let b1 = iv(1, 1, &[4, 3], &[5, 4]);
        bank.enqueue(SlotId(0), a0);
        let s1 = bank.enqueue(SlotId(1), b0);
        assert_eq!(s1.len(), 1, "first solution");
        // Only b0 was removable: max(b0)=[3,2] and max(a0)=[6,5];
        // max(b0) < max(a0) so a0 is kept, b0 pruned.
        assert_eq!(bank.queue_len(SlotId(0)), 1);
        assert_eq!(bank.queue_len(SlotId(1)), 0);
        let s2 = bank.enqueue(SlotId(1), b1);
        assert_eq!(s2.len(), 1, "second solution with the same a0");
        assert_eq!(s2[0].index, 1);
    }

    #[test]
    fn cascade_multiple_solutions_from_one_arrival() {
        let mut bank = QueueBank::new(2);
        // Queue 1 accumulates two intervals while queue 0 is empty; then a
        // long interval arrives on queue 0 and pairs with both in one call.
        let b0 = iv(1, 0, &[2, 1], &[3, 2]);
        let b1 = iv(1, 1, &[4, 3], &[5, 4]);
        bank.enqueue(SlotId(1), b0);
        bank.enqueue(SlotId(1), b1);
        let a0 = iv(0, 0, &[1, 0], &[9, 8]);
        let sols = bank.enqueue(SlotId(0), a0);
        assert_eq!(sols.len(), 2, "both pairs detected in cascade");
        assert!(sols.iter().all(|s| s.is_valid()));
    }

    #[test]
    fn remove_queue_unblocks_detection() {
        let mut bank = QueueBank::new(3);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[4, 3, 0]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[3, 4, 0]));
        // Queue 2 is empty: no solution yet.
        assert_eq!(bank.stats().solutions, 0);
        // Child 2 dies; its queue is dropped; the remaining heads overlap.
        let sols = bank.remove_queue(SlotId(2));
        assert_eq!(sols.len(), 1, "partial predicate detected after failure");
        assert_eq!(bank.queue_count(), 2);
    }

    #[test]
    fn add_queue_blocks_until_first_interval() {
        let mut bank = QueueBank::new(1);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[2, 1]));
        // All solutions so far emitted and pruned. Adopt a child:
        let s = bank.add_queue();
        assert_eq!(bank.queue_count(), 2);
        // New interval on q0 alone is no longer a solution.
        let sols = bank.enqueue(SlotId(0), iv(0, 1, &[3, 0], &[4, 1]));
        assert!(sols.is_empty(), "adopted child's empty queue blocks");
        let sols = bank.enqueue(s, iv(1, 0, &[3, 1], &[4, 2]));
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn removed_slot_ids_are_reused() {
        let mut bank = QueueBank::new(2);
        bank.remove_queue(SlotId(1));
        let s = bank.add_queue();
        assert_eq!(s, SlotId(1));
        assert_eq!(bank.slot_ids(), vec![SlotId(0), SlotId(1)]);
    }

    #[test]
    #[should_panic(expected = "enqueue on removed queue")]
    fn enqueue_on_removed_queue_panics() {
        let mut bank = QueueBank::new(2);
        bank.remove_queue(SlotId(1));
        bank.enqueue(SlotId(1), iv(1, 0, &[0, 1], &[0, 2]));
    }

    #[test]
    fn trace_explains_detection_decisions() {
        let mut bank = QueueBank::new(2).with_trace();
        // a0 entirely precedes b0: swept. Then a1 overlaps b0: solution.
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[2, 0]));
        bank.enqueue(SlotId(1), iv(1, 0, &[3, 1], &[6, 5]));
        bank.enqueue(SlotId(0), iv(0, 1, &[4, 2], &[5, 6]));
        let trace = bank.take_trace();
        // Three enqueues recorded.
        let enqueues = trace
            .iter()
            .filter(|e| matches!(e, BankEvent::Enqueued { .. }))
            .count();
        assert_eq!(enqueues, 3);
        // a0 was swept, and the trace names b0 as the culprit.
        assert!(trace.iter().any(|e| matches!(
            e,
            BankEvent::Swept {
                slot: SlotId(0),
                id: (0, 0, false),
                culprit: (1, 0, false)
            }
        )));
        // One solution emitted with both members.
        assert!(trace.iter().any(|e| match e {
            BankEvent::SolutionEmitted { index: 0, members } => members.len() == 2,
            _ => false,
        }));
        // At least one member pruned afterwards.
        assert!(trace.iter().any(|e| matches!(e, BankEvent::Pruned { .. })));
        // Drained: a second take is empty.
        assert!(bank.take_trace().is_empty());
    }

    #[test]
    fn trace_records_queue_lifecycle_and_suppression() {
        let mut bank = QueueBank::new(3).with_trace();
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[9, 8, 8]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[8, 9, 8]));
        bank.enqueue(SlotId(2), iv(2, 0, &[2, 1, 1], &[3, 3, 4]));
        // Solution emitted; prune removed queue 2's head. Removing queue 2
        // releases the subset {q0,q1}: suppressed, not re-emitted.
        bank.remove_queue(SlotId(2));
        let trace = bank.take_trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e, BankEvent::QueueRemoved { slot: SlotId(2) })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, BankEvent::SolutionSuppressed { .. })));
    }

    #[test]
    fn tracing_off_by_default_and_free() {
        let mut bank = QueueBank::new(1);
        bank.enqueue(SlotId(0), iv(0, 0, &[1], &[2]));
        assert!(bank.take_trace().is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips_mid_detection() {
        let mut bank = QueueBank::new(3);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[6, 5, 5]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[5, 6, 5]));
        // Queue 2 empty: detection blocked, state is mid-flight.
        let snap = bank.snapshot();
        let mut restored = QueueBank::restore(snap);
        assert_eq!(restored.queue_count(), bank.queue_count());
        assert_eq!(restored.resident(), bank.resident());
        assert_eq!(restored.stats(), bank.stats());
        // The restored bank completes the detection identically.
        let a = bank.enqueue(SlotId(2), iv(2, 0, &[2, 1, 1], &[5, 5, 6]));
        let b = restored.enqueue(SlotId(2), iv(2, 0, &[2, 1, 1], &[5, 5, 6]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].coverage(), b[0].coverage());
        assert_eq!(a[0].index, b[0].index);
    }

    #[test]
    fn snapshot_preserves_dedup_state() {
        // A solution is emitted, then the bank is snapshotted; the restored
        // bank must not re-emit a subset of it after a queue removal.
        let mut bank = QueueBank::new(3);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[9, 8, 8]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[8, 9, 8]));
        let sols = bank.enqueue(SlotId(2), iv(2, 0, &[2, 1, 1], &[3, 3, 4]));
        assert_eq!(sols.len(), 1);
        // Prune removed queue 2's head (smallest max); 0 and 1 remain.
        let mut restored = QueueBank::restore(bank.snapshot());
        let released = restored.remove_queue(SlotId(2));
        assert!(
            released.is_empty(),
            "subset {{q0,q1}} of the emitted solution must not re-emit"
        );
    }

    #[test]
    fn snapshot_serializes_via_serde() {
        let mut bank = QueueBank::new(2);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[2, 1]));
        let snap = bank.snapshot();
        // BankSnapshot derives Serialize/Deserialize; round-trip through
        // the serde data model using its Debug shape as a proxy check and
        // a clone-restore equivalence.
        let restored = QueueBank::restore(snap.clone());
        assert_eq!(restored.resident(), bank.resident());
        assert_eq!(format!("{:?}", snap.slots.len()), "2");
    }

    #[test]
    fn ephemeral_queue_participates_once_then_vanishes() {
        let mut bank = QueueBank::new(1);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[6, 5]));
        // Q0 holds one interval? No: single-queue banks emit immediately.
        // Rebuild: two queues so the local head stays resident.
        let mut bank = QueueBank::new(2);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0], &[6, 5]));
        // Ephemeral seed overlaps the resident head → immediate solution.
        let sols = bank.add_ephemeral_queue(iv(1, 0, &[2, 1], &[3, 2]));
        // Queue 1 is still empty, so no solution yet; the ephemeral queue
        // (slot 2) holds the seed.
        assert!(sols.is_empty());
        assert_eq!(bank.queue_count(), 3);
        let sols = bank.enqueue(SlotId(1), iv(1, 0, &[2, 1], &[4, 3]));
        assert_eq!(sols.len(), 1, "solution across local + real + ephemeral");
        // The seed was consumed (pruned or swept) → ephemeral queue gone.
        assert_eq!(bank.queue_count(), 2, "ephemeral queue vanished");
        // Detection continues unblocked by the departed queue.
        bank.enqueue(SlotId(0), iv(0, 1, &[7, 6], &[9, 8]));
        let sols = bank.enqueue(SlotId(1), iv(1, 1, &[8, 7], &[10, 9]));
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn ephemeral_queue_swept_away_when_hopeless() {
        let mut bank = QueueBank::new(2);
        bank.enqueue(SlotId(0), iv(0, 0, &[5, 4], &[8, 7]));
        // Seed entirely precedes the resident head → swept on arrival of
        // a comparison trigger.
        bank.add_ephemeral_queue(iv(1, 0, &[1, 0], &[2, 1]));
        let sols = bank.enqueue(SlotId(1), iv(1, 0, &[6, 5], &[7, 8]));
        assert_eq!(sols.len(), 1, "stale seed did not block");
        assert_eq!(bank.queue_count(), 2);
    }

    /// Drives the same interval sequence through a Full and an Incremental
    /// bank, returning `(full, incremental)` with their emitted solutions.
    fn run_both(
        queues: usize,
        feed: impl Fn(&mut QueueBank) -> Vec<Solution>,
    ) -> ((QueueBank, Vec<Solution>), (QueueBank, Vec<Solution>)) {
        let mut full = QueueBank::new(queues).with_sweep_mode(SweepMode::Full);
        let mut incr = QueueBank::new(queues).with_sweep_mode(SweepMode::Incremental);
        let sols_full = feed(&mut full);
        let sols_incr = feed(&mut incr);
        ((full, sols_full), (incr, sols_incr))
    }

    #[test]
    fn incremental_sweep_matches_full_and_costs_strictly_less() {
        // A workload with multi-queue sweep rounds and a queue removal —
        // the situations where the seed recomputes verdicts it already
        // knows. 4 queues, interleaved arrivals, then a failure.
        let feed = |bank: &mut QueueBank| {
            let mut sols = Vec::new();
            let seqs: [(u32, u64, [u32; 4], [u32; 4]); 10] = [
                (0, 0, [1, 0, 0, 0], [9, 8, 8, 8]),
                (1, 0, [2, 1, 0, 0], [8, 9, 8, 8]),
                (2, 0, [2, 1, 1, 0], [8, 8, 9, 8]),
                (3, 0, [2, 1, 1, 1], [3, 3, 3, 4]),
                (3, 1, [4, 4, 4, 5], [6, 6, 6, 7]),
                (0, 1, [10, 9, 9, 9], [12, 11, 11, 11]),
                (1, 1, [11, 10, 10, 10], [11, 12, 11, 11]),
                (2, 1, [11, 10, 11, 10], [11, 11, 12, 11]),
                (3, 2, [11, 10, 11, 11], [11, 11, 11, 12]),
                (1, 2, [13, 13, 13, 13], [14, 14, 14, 14]),
            ];
            for (p, seq, lo, hi) in seqs {
                sols.extend(bank.enqueue(SlotId(p), iv(p, seq, &lo, &hi)));
            }
            sols.extend(bank.remove_queue(SlotId(3)));
            sols
        };
        let ((full, sols_full), (incr, sols_incr)) = run_both(4, feed);

        // Identical outcomes, bit for bit.
        assert_eq!(sols_full.len(), sols_incr.len());
        for (a, b) in sols_full.iter().zip(&sols_incr) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.intervals, b.intervals);
        }
        let fs = full.stats();
        let is = incr.stats();
        assert_eq!(
            (fs.swept, fs.pruned, fs.solutions),
            (is.swept, is.pruned, is.solutions)
        );

        // Strictly fewer comparison units, with real cache traffic.
        assert!(is.cache_hits > 0, "workload must exercise the cache");
        assert!(
            incr.ops().get() < full.ops().get(),
            "incremental ({}) must beat full ({})",
            incr.ops().get(),
            full.ops().get()
        );
        assert_eq!(fs.cache_hits, 0, "full mode never touches the cache");
    }

    #[test]
    fn aggregate_sweep_matches_full_bit_for_bit() {
        // Same workload as the incremental differential test (multi-queue
        // sweep rounds, cascades, a queue removal): the summary-gated
        // sweep must reproduce every solution, sweep, and prune decision.
        let feed = |bank: &mut QueueBank| {
            let mut sols = Vec::new();
            let seqs: [(u32, u64, [u32; 4], [u32; 4]); 10] = [
                (0, 0, [1, 0, 0, 0], [9, 8, 8, 8]),
                (1, 0, [2, 1, 0, 0], [8, 9, 8, 8]),
                (2, 0, [2, 1, 1, 0], [8, 8, 9, 8]),
                (3, 0, [2, 1, 1, 1], [3, 3, 3, 4]),
                (3, 1, [4, 4, 4, 5], [6, 6, 6, 7]),
                (0, 1, [10, 9, 9, 9], [12, 11, 11, 11]),
                (1, 1, [11, 10, 10, 10], [11, 12, 11, 11]),
                (2, 1, [11, 10, 11, 10], [11, 11, 12, 11]),
                (3, 2, [11, 10, 11, 11], [11, 11, 11, 12]),
                (1, 2, [13, 13, 13, 13], [14, 14, 14, 14]),
            ];
            for (p, seq, lo, hi) in seqs {
                sols.extend(bank.enqueue(SlotId(p), iv(p, seq, &lo, &hi)));
            }
            sols.extend(bank.remove_queue(SlotId(3)));
            sols
        };
        let mut full = QueueBank::new(4).with_sweep_mode(SweepMode::Full);
        let mut agg = QueueBank::new(4).with_sweep_mode(SweepMode::Aggregate);
        let sols_full = feed(&mut full);
        let sols_agg = feed(&mut agg);

        assert_eq!(sols_full.len(), sols_agg.len());
        for (a, b) in sols_full.iter().zip(&sols_agg) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.intervals, b.intervals);
        }
        let fs = full.stats();
        let gs = agg.stats();
        assert_eq!(
            (fs.swept, fs.pruned, fs.solutions),
            (gs.swept, gs.pruned, gs.solutions),
            "sweep/prune decisions diverged"
        );
        assert!(gs.gate_hits > 0, "workload must exercise the summary gate");
        assert_eq!(fs.gate_hits, 0, "full mode never consults the summary");
        assert!(
            agg.ops().get() < full.ops().get(),
            "aggregate ({}) must beat full ({})",
            agg.ops().get(),
            full.ops().get()
        );
    }

    #[test]
    fn parallel_sweep_matches_aggregate_bit_for_bit_on_narrow_bank() {
        // Narrow bank: every region sits below PAR_MIN_REGION, so the
        // parallel mode must take the sequential code path — outcomes AND
        // billed totals equal to Aggregate by construction, asserted here
        // against the same workload as the Full/Aggregate differential.
        let feed = |bank: &mut QueueBank| {
            let mut sols = Vec::new();
            let seqs: [(u32, u64, [u32; 4], [u32; 4]); 10] = [
                (0, 0, [1, 0, 0, 0], [9, 8, 8, 8]),
                (1, 0, [2, 1, 0, 0], [8, 9, 8, 8]),
                (2, 0, [2, 1, 1, 0], [8, 8, 9, 8]),
                (3, 0, [2, 1, 1, 1], [3, 3, 3, 4]),
                (3, 1, [4, 4, 4, 5], [6, 6, 6, 7]),
                (0, 1, [10, 9, 9, 9], [12, 11, 11, 11]),
                (1, 1, [11, 10, 10, 10], [11, 12, 11, 11]),
                (2, 1, [11, 10, 11, 10], [11, 11, 12, 11]),
                (3, 2, [11, 10, 11, 11], [11, 11, 11, 12]),
                (1, 2, [13, 13, 13, 13], [14, 14, 14, 14]),
            ];
            for (p, seq, lo, hi) in seqs {
                sols.extend(bank.enqueue(SlotId(p), iv(p, seq, &lo, &hi)));
            }
            sols.extend(bank.remove_queue(SlotId(3)));
            sols
        };
        let mut agg = QueueBank::new(4).with_sweep_mode(SweepMode::Aggregate);
        let sols_agg = feed(&mut agg);
        for threads in [1usize, 2, 4] {
            let mut par =
                QueueBank::new(4).with_sweep_mode(SweepMode::AggregateParallel { threads });
            let sols_par = feed(&mut par);
            assert_eq!(sols_agg.len(), sols_par.len());
            for (a, b) in sols_agg.iter().zip(&sols_par) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.intervals, b.intervals);
            }
            assert_eq!(
                agg.stats(),
                par.stats(),
                "stats diverged at {threads} threads"
            );
            assert_eq!(
                agg.ops().get(),
                par.ops().get(),
                "billed totals diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_aggregate_bit_for_bit_on_wide_bank() {
        // Wide bank: k = 300 queues × width 300 puts every sweep region
        // (gate materialization, fallback rows, and the solution prune)
        // past PAR_MIN_REGION, so the scoped-thread paths genuinely run.
        // Phase A fills all queues with mutually overlapping heads (gate
        // hits all the way, one solution, a 300-member parallel prune);
        // phase B interleaves an earlier window on odd queues so gate
        // misses force parallel fallback rows and sweeps.
        let k = 300usize;
        let feed = |bank: &mut QueueBank| {
            let mut sols = Vec::new();
            for p in 0..k {
                let mut lo = vec![0u32; k];
                let mut hi = vec![500u32; k];
                lo[p] = 1;
                hi[p] = 509;
                sols.extend(bank.enqueue(SlotId(p as u32), iv(p as u32, 0, &lo, &hi)));
            }
            for p in 0..k {
                let (base_lo, base_hi) = if p % 2 == 0 { (1000, 1500) } else { (600, 700) };
                let mut lo = vec![base_lo; k];
                let mut hi = vec![base_hi; k];
                lo[p] = base_lo + 1;
                hi[p] = base_hi + 1;
                sols.extend(bank.enqueue(SlotId(p as u32), iv(p as u32, 1, &lo, &hi)));
            }
            sols
        };
        let mut agg = QueueBank::new(k).with_sweep_mode(SweepMode::Aggregate);
        let sols_agg = feed(&mut agg);
        let gs = agg.stats();
        assert_eq!(gs.solutions, 1, "phase A emits the full-bank solution");
        assert_eq!(gs.pruned as usize, k, "concurrent maxes: all pruned");
        assert!(gs.gate_misses > 0, "phase B must force fallback rows");
        assert!(gs.swept > 0, "phase B must sweep the early window");
        for threads in [2usize, 4] {
            let mut par =
                QueueBank::new(k).with_sweep_mode(SweepMode::AggregateParallel { threads });
            let sols_par = feed(&mut par);
            assert_eq!(sols_agg.len(), sols_par.len());
            for (a, b) in sols_agg.iter().zip(&sols_par) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.intervals, b.intervals);
            }
            assert_eq!(gs, par.stats(), "stats diverged at {threads} threads");
            assert_eq!(
                agg.ops().get(),
                par.ops().get(),
                "billed totals diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn aggregate_mode_survives_queue_lifecycle_churn() {
        // Add/remove/ephemeral queue traffic while the summary is live.
        let mut bank = QueueBank::new(2).with_sweep_mode(SweepMode::Aggregate);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[9, 8, 8]));
        let s2 = bank.add_queue();
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[8, 9, 8]));
        let sols = bank.enqueue(s2, iv(2, 0, &[2, 1, 1], &[8, 8, 9]));
        assert_eq!(sols.len(), 1, "three-way overlap detected");
        let sols = bank.remove_queue(s2);
        assert!(sols.is_empty(), "subset re-release suppressed");
        // Ephemeral seed participates and vanishes.
        bank.add_ephemeral_queue(iv(7, 0, &[3, 2, 0], &[7, 7, 7]));
        bank.enqueue(SlotId(0), iv(0, 1, &[4, 3, 0], &[7, 8, 7]));
        let sols = bank.enqueue(SlotId(1), iv(1, 1, &[4, 4, 0], &[8, 7, 7]));
        assert_eq!(sols.len(), 1, "solution across local + real + ephemeral");
        assert_eq!(bank.queue_count(), 2, "ephemeral queue vanished");
    }

    #[test]
    fn queue_removal_rerun_is_answered_from_cache() {
        // After a failure, remove_queue re-marks every non-empty queue as
        // updated; the surviving heads were already compared against each
        // other, so the re-run should be pure cache hits.
        let mut bank = QueueBank::new(3);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[4, 3, 0]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[3, 4, 0]));
        let hits_before = bank.stats().cache_hits;
        let misses_before = bank.stats().cache_misses;
        let sols = bank.remove_queue(SlotId(2));
        assert_eq!(sols.len(), 1, "removal unblocks the solution");
        assert!(bank.stats().cache_hits > hits_before);
        assert_eq!(
            bank.stats().cache_misses,
            misses_before,
            "surviving pair verdict must come from the cache, not recomparison"
        );
    }

    #[test]
    fn slot_reuse_invalidates_cached_verdicts() {
        // Queue 2 stays empty throughout so no solutions fire and the
        // cached pair (0,1) verdict is the only state in play.
        let mut bank = QueueBank::new(3);
        bank.enqueue(SlotId(0), iv(0, 0, &[1, 0, 0], &[9, 8, 0]));
        bank.enqueue(SlotId(1), iv(1, 0, &[2, 1, 0], &[8, 9, 0]));
        let misses_after_warmup = bank.stats().cache_misses;
        assert!(misses_after_warmup > 0, "pair (0,1) verdict cached");
        // Remove slot 1 and reuse it for a different child.
        bank.remove_queue(SlotId(1));
        let s = bank.add_queue();
        assert_eq!(s, SlotId(1));
        // The reused slot's new head must be freshly compared, not served
        // the stale (0, old-1) verdict.
        bank.enqueue(s, iv(7, 0, &[3, 2, 0], &[7, 7, 0]));
        assert!(
            bank.stats().cache_misses > misses_after_warmup,
            "reused slot's new head must recompute the pair verdict"
        );
    }

    #[test]
    fn stats_track_peaks() {
        let mut bank = QueueBank::new(2);
        for s in 0..4 {
            bank.enqueue(
                SlotId(1),
                iv(1, s, &[0, 2 * s as u32 + 1], &[0, 2 * s as u32 + 2]),
            );
        }
        assert_eq!(bank.stats().peak_queue_len, 4);
        assert_eq!(bank.stats().peak_resident, 4);
        assert_eq!(bank.resident(), 4);
    }
}
