//! Solution sets — one detection of `Definitely(Φ)` over a queue bank.

use crate::aggregate::aggregate;
use crate::interval::{Interval, IntervalRef};
use crate::overlap::definitely_holds;
use ftscp_vclock::ProcessId;
use serde::{Deserialize, Serialize};

/// One satisfaction of `Definitely(Φ)` found by a detector: the mutually
/// overlapping queue heads at the moment of detection (lines (18)–(22) of
/// Algorithm 1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// The member intervals (snapshot of the queue heads).
    pub intervals: Vec<Interval>,
    /// Monotone per-detector solution counter (0-based).
    pub index: u64,
}

impl Solution {
    /// The sorted union of local-interval refs covered by the members —
    /// i.e. which concrete predicate spans this detection is made of.
    pub fn coverage(&self) -> Vec<IntervalRef> {
        let mut cov: Vec<_> = self
            .intervals
            .iter()
            .flat_map(|x| x.coverage.iter().copied())
            .collect();
        cov.sort_unstable();
        cov.dedup();
        cov
    }

    /// Processes covered by this solution.
    pub fn covered_processes(&self) -> Vec<ProcessId> {
        let mut procs: Vec<_> = self.coverage().iter().map(|r| r.process).collect();
        procs.dedup();
        procs
    }

    /// Validates Eq. (2) on the members. Detectors only emit valid
    /// solutions; this is the hook the test-suite oracles use.
    pub fn is_valid(&self) -> bool {
        definitely_holds(&self.intervals)
    }

    /// `⊓` of the members — what a non-root node reports to its parent.
    pub fn aggregated(&self, source: ProcessId, level: u32) -> Interval {
        aggregate(&self.intervals, source, self.index, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::VectorClock;

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    fn overlapping_pair() -> (Interval, Interval) {
        (iv(0, 3, &[1, 0], &[4, 3]), iv(1, 5, &[2, 1], &[3, 4]))
    }

    #[test]
    fn coverage_is_sorted_union() {
        let (a, b) = overlapping_pair();
        let s = Solution {
            intervals: vec![b, a],
            index: 0,
        };
        assert_eq!(
            s.coverage(),
            vec![
                IntervalRef {
                    process: ProcessId(0),
                    seq: 3
                },
                IntervalRef {
                    process: ProcessId(1),
                    seq: 5
                }
            ]
        );
        assert_eq!(s.covered_processes(), vec![ProcessId(0), ProcessId(1)]);
    }

    #[test]
    fn validity_matches_overlap() {
        let (a, b) = overlapping_pair();
        let good = Solution {
            intervals: vec![a.clone(), b],
            index: 0,
        };
        assert!(good.is_valid());
        let later = iv(1, 6, &[9, 9], &[9, 10]);
        let bad = Solution {
            intervals: vec![a, later],
            index: 1,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn aggregated_interval_carries_solution_index_as_seq() {
        let (a, b) = overlapping_pair();
        let s = Solution {
            intervals: vec![a, b],
            index: 9,
        };
        let agg = s.aggregated(ProcessId(7), 2);
        assert_eq!(agg.seq, 9);
        assert_eq!(agg.source, ProcessId(7));
        assert!(agg.is_aggregated());
    }
}
