//! Binary wire codec for intervals and timestamps.
//!
//! The simulator's byte accounting — and any real transport a library
//! user brings — needs an actual serialized form, not an estimate. Two
//! formats share one decoder, discriminated by the *top byte of the
//! leading little-endian `u32`* (the version byte):
//!
//! * **Dense** (version byte `0x00`, the legacy format): little-endian,
//!   length-prefixed, self-contained. Every capture written before the
//!   delta codec existed starts with a length or process id below
//!   [`MAX_PROCESSES`] `< 2^24`, so its top byte is always zero.
//! * **Delta** (version bytes [`CLOCK_DELTA_TAG`]/[`INTERVAL_DELTA_TAG`]):
//!   varint + zigzag component deltas. Clock components are encoded
//!   against a *base* clock — either the all-zeros clock (standalone
//!   frames, decodable in isolation) or a caller-supplied base such as the
//!   previous interval's `lo` on the same connection (stateful frames, see
//!   `core::protocol::ConnCodec`). An interval's `hi` is always encoded
//!   against its own `lo`, which is nearly free because an interval's
//!   bounds differ in only a few components.
//!
//! ```text
//! Dense:
//!   VectorClock := u32 len, len × u32 components
//!   IntervalRef := u32 process, u64 seq
//!   Interval    := u32 source, u64 seq, u8 kind, [u32 level if aggregated],
//!                  VectorClock lo, VectorClock hi,
//!                  u32 coverage_len, coverage_len × IntervalRef
//!
//! Delta:
//!   DClock      := u32 (0xD1<<24 | len), u8 base_flag,
//!                  len × varint(zigzag(c[i] − base[i]))
//!   DInterval   := u32 (0xD2<<24 | source), varint seq,
//!                  u8 kind, [varint level if aggregated],
//!                  DClock lo (against caller base),
//!                  len × varint(zigzag(hi[i] − lo[i])),
//!                  varint coverage_len, coverage_len × (varint process, varint seq)
//! ```
//!
//! `base_flag` is `0` for a standalone frame (base = zero clock) and `1`
//! for a stateful frame (the decoder must be handed the same base the
//! encoder used, or decoding fails instead of silently corrupting).
//!
//! All length prefixes are validated against [`MAX_PROCESSES`] /
//! [`MAX_COVERAGE`] *before* any allocation, so a corrupt or hostile
//! header cannot trigger a multi-GB `Vec::with_capacity`.

use crate::interval::{Interval, IntervalKind, IntervalRef};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftscp_vclock::{ProcessId, VectorClock};
use std::fmt;

/// Upper bound on the number of processes a decoded clock may cover.
///
/// Anything larger is rejected as hostile input before allocation. The
/// bound also guarantees every dense length/process header fits in 24
/// bits, which is what frees the top byte for format versioning.
pub const MAX_PROCESSES: usize = 1 << 20;

/// Upper bound on the number of coverage entries a decoded interval may
/// carry. Same rationale as [`MAX_PROCESSES`].
pub const MAX_COVERAGE: usize = 1 << 20;

/// Version byte of a delta-encoded clock frame.
pub const CLOCK_DELTA_TAG: u8 = 0xD1;

/// Version byte of a delta-encoded interval frame.
pub const INTERVAL_DELTA_TAG: u8 = 0xD2;

/// Version byte of a predicate-tagged interval *batch* frame
/// (multi-tenant uplink coalescing — see [`encode_tenant_batch`]).
pub const TENANT_BATCH_TAG: u8 = 0xD3;

/// Decoding error: the buffer did not contain a well-formed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError("varint truncated"));
        }
        let byte = buf.get_u8();
        let bits = u64::from(byte & 0x7f);
        if shift == 63 && bits > 1 {
            return Err(DecodeError("varint overflows u64"));
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError("varint too long"))
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

// ---------------------------------------------------------------------------
// Dense format (legacy, version byte 0x00)
// ---------------------------------------------------------------------------

/// Encodes a vector clock into `buf` in the dense format.
pub fn encode_clock(clock: &VectorClock, buf: &mut BytesMut) {
    debug_assert!(
        clock.len() <= MAX_PROCESSES,
        "clock wider than MAX_PROCESSES"
    );
    buf.put_u32_le(clock.len() as u32);
    for &c in clock.components() {
        buf.put_u32_le(c);
    }
}

/// Decodes a dense vector clock from `buf`.
pub fn decode_clock(buf: &mut Bytes) -> Result<VectorClock, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("clock length header truncated"));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_PROCESSES {
        return Err(DecodeError("clock length exceeds MAX_PROCESSES"));
    }
    if buf.remaining() < 4 * len {
        return Err(DecodeError("clock components truncated"));
    }
    let mut components = Vec::with_capacity(len);
    for _ in 0..len {
        components.push(buf.get_u32_le());
    }
    Ok(VectorClock::from_components(components))
}

/// Encodes an interval into `buf` in the dense format.
pub fn encode_interval(iv: &Interval, buf: &mut BytesMut) {
    buf.put_u32_le(iv.source.0);
    buf.put_u64_le(iv.seq);
    match iv.kind {
        IntervalKind::Local => buf.put_u8(0),
        IntervalKind::Aggregated { level } => {
            buf.put_u8(1);
            buf.put_u32_le(level);
        }
    }
    encode_clock(&iv.lo, buf);
    encode_clock(&iv.hi, buf);
    buf.put_u32_le(iv.coverage.len() as u32);
    for r in &iv.coverage {
        buf.put_u32_le(r.process.0);
        buf.put_u64_le(r.seq);
    }
}

/// Decodes a dense interval from `buf`.
pub fn decode_interval(buf: &mut Bytes) -> Result<Interval, DecodeError> {
    if buf.remaining() < 13 {
        return Err(DecodeError("interval header truncated"));
    }
    let source = ProcessId(buf.get_u32_le());
    let seq = buf.get_u64_le();
    let kind = match buf.get_u8() {
        0 => IntervalKind::Local,
        1 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("aggregation level truncated"));
            }
            IntervalKind::Aggregated {
                level: buf.get_u32_le(),
            }
        }
        _ => return Err(DecodeError("unknown interval kind tag")),
    };
    let lo = decode_clock(buf)?;
    let hi = decode_clock(buf)?;
    if buf.remaining() < 4 {
        return Err(DecodeError("coverage length truncated"));
    }
    let cov_len = buf.get_u32_le() as usize;
    if cov_len > MAX_COVERAGE {
        return Err(DecodeError("coverage length exceeds MAX_COVERAGE"));
    }
    if buf.remaining() < 12 * cov_len {
        return Err(DecodeError("coverage entries truncated"));
    }
    let mut coverage = Vec::with_capacity(cov_len);
    for _ in 0..cov_len {
        let process = ProcessId(buf.get_u32_le());
        let seq = buf.get_u64_le();
        coverage.push(IntervalRef { process, seq });
    }
    Ok(Interval {
        source,
        seq,
        lo,
        hi,
        kind,
        coverage,
    })
}

/// Exact encoded size of an interval in the dense codec.
pub fn encoded_interval_len(iv: &Interval) -> usize {
    let kind = match iv.kind {
        IntervalKind::Local => 1,
        IntervalKind::Aggregated { .. } => 5,
    };
    4 + 8 + kind + (4 + 4 * iv.lo.len()) + (4 + 4 * iv.hi.len()) + 4 + 12 * iv.coverage.len()
}

// ---------------------------------------------------------------------------
// Delta format (version bytes 0xD1 / 0xD2)
// ---------------------------------------------------------------------------

fn delta_components<'a>(
    clock: &'a VectorClock,
    base: Option<&'a VectorClock>,
) -> impl Iterator<Item = u64> + 'a {
    (0..clock.len()).map(move |i| {
        let b = base.map_or(0, |b| b.get(i));
        zigzag(i64::from(clock.get(i)) - i64::from(b))
    })
}

/// Encodes a clock as a delta frame. With `base = None` the frame is
/// standalone (deltas against the zero clock); with `base = Some(b)` the
/// decoder must supply the same `b`.
pub fn encode_clock_delta(clock: &VectorClock, base: Option<&VectorClock>, buf: &mut BytesMut) {
    debug_assert!(
        clock.len() <= MAX_PROCESSES,
        "clock wider than MAX_PROCESSES"
    );
    if let Some(b) = base {
        debug_assert_eq!(b.len(), clock.len(), "delta base width mismatch");
    }
    buf.put_u32_le((u32::from(CLOCK_DELTA_TAG) << 24) | clock.len() as u32);
    buf.put_u8(u8::from(base.is_some()));
    for d in delta_components(clock, base) {
        put_varint(buf, d);
    }
}

/// Decodes a delta clock frame. `base` must match what the encoder used:
/// a stateful frame (`base_flag = 1`) without a base is an error, and a
/// standalone frame ignores any base passed.
pub fn decode_clock_delta(
    buf: &mut Bytes,
    base: Option<&VectorClock>,
) -> Result<VectorClock, DecodeError> {
    if buf.remaining() < 5 {
        return Err(DecodeError("delta clock header truncated"));
    }
    let header = buf.get_u32_le();
    if (header >> 24) as u8 != CLOCK_DELTA_TAG {
        return Err(DecodeError("not a delta clock frame"));
    }
    let len = (header & 0x00ff_ffff) as usize;
    if len > MAX_PROCESSES {
        return Err(DecodeError("clock length exceeds MAX_PROCESSES"));
    }
    let base = match buf.get_u8() {
        0 => None,
        1 => Some(base.ok_or(DecodeError("stateful delta frame but no base supplied"))?),
        _ => return Err(DecodeError("unknown delta base flag")),
    };
    if let Some(b) = base {
        if b.len() != len {
            return Err(DecodeError("delta base width mismatch"));
        }
    }
    let mut components = Vec::with_capacity(len);
    for i in 0..len {
        let d = unzigzag(get_varint(buf)?);
        let b = base.map_or(0, |b| b.get(i));
        let v = i64::from(b) + d;
        let v = u32::try_from(v).map_err(|_| DecodeError("delta component out of range"))?;
        components.push(v);
    }
    Ok(VectorClock::from_components(components))
}

/// Encoded size of a clock delta frame.
pub fn encoded_clock_delta_len(clock: &VectorClock, base: Option<&VectorClock>) -> usize {
    5 + delta_components(clock, base).map(varint_len).sum::<usize>()
}

/// Encodes an interval as a delta frame. `base` (if any) is the base for
/// `lo`; `hi` is always encoded against `lo`.
///
/// # Panics
///
/// Panics if `source` does not fit in 24 bits (callers stay below
/// [`MAX_PROCESSES`]) or if `lo` and `hi` have different widths.
pub fn encode_interval_delta(iv: &Interval, base: Option<&VectorClock>, buf: &mut BytesMut) {
    assert!(iv.source.0 < 1 << 24, "source id exceeds 24 bits");
    assert_eq!(iv.lo.len(), iv.hi.len(), "interval bound width mismatch");
    buf.put_u32_le((u32::from(INTERVAL_DELTA_TAG) << 24) | iv.source.0);
    put_varint(buf, iv.seq);
    match iv.kind {
        IntervalKind::Local => buf.put_u8(0),
        IntervalKind::Aggregated { level } => {
            buf.put_u8(1);
            put_varint(buf, u64::from(level));
        }
    }
    encode_clock_delta(&iv.lo, base, buf);
    for d in delta_components(&iv.hi, Some(&iv.lo)) {
        put_varint(buf, d);
    }
    put_varint(buf, iv.coverage.len() as u64);
    for r in &iv.coverage {
        put_varint(buf, u64::from(r.process.0));
        put_varint(buf, r.seq);
    }
}

/// Decodes a delta interval frame (see [`encode_interval_delta`] for the
/// base contract).
pub fn decode_interval_delta(
    buf: &mut Bytes,
    base: Option<&VectorClock>,
) -> Result<Interval, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("interval header truncated"));
    }
    let header = buf.get_u32_le();
    if (header >> 24) as u8 != INTERVAL_DELTA_TAG {
        return Err(DecodeError("not a delta interval frame"));
    }
    let source = ProcessId(header & 0x00ff_ffff);
    let seq = get_varint(buf)?;
    if !buf.has_remaining() {
        return Err(DecodeError("interval kind truncated"));
    }
    let kind = match buf.get_u8() {
        0 => IntervalKind::Local,
        1 => {
            let level = get_varint(buf)?;
            let level =
                u32::try_from(level).map_err(|_| DecodeError("aggregation level out of range"))?;
            IntervalKind::Aggregated { level }
        }
        _ => return Err(DecodeError("unknown interval kind tag")),
    };
    let lo = decode_clock_delta(buf, base)?;
    let mut hi_components = Vec::with_capacity(lo.len());
    for i in 0..lo.len() {
        let d = unzigzag(get_varint(buf)?);
        let v = i64::from(lo.get(i)) + d;
        let v = u32::try_from(v).map_err(|_| DecodeError("delta component out of range"))?;
        hi_components.push(v);
    }
    let hi = VectorClock::from_components(hi_components);
    let cov_len = get_varint(buf)? as usize;
    if cov_len > MAX_COVERAGE {
        return Err(DecodeError("coverage length exceeds MAX_COVERAGE"));
    }
    // Each entry is at least two varint bytes — cheap sanity bound before
    // the allocation.
    if buf.remaining() < 2 * cov_len {
        return Err(DecodeError("coverage entries truncated"));
    }
    let mut coverage = Vec::with_capacity(cov_len);
    for _ in 0..cov_len {
        let process = get_varint(buf)?;
        let process =
            u32::try_from(process).map_err(|_| DecodeError("coverage process out of range"))?;
        let seq = get_varint(buf)?;
        coverage.push(IntervalRef {
            process: ProcessId(process),
            seq,
        });
    }
    Ok(Interval {
        source,
        seq,
        lo,
        hi,
        kind,
        coverage,
    })
}

/// Exact encoded size of an interval in the delta codec for a given base.
pub fn encoded_interval_delta_len(iv: &Interval, base: Option<&VectorClock>) -> usize {
    let kind = match iv.kind {
        IntervalKind::Local => 1,
        IntervalKind::Aggregated { level } => 1 + varint_len(u64::from(level)),
    };
    4 + varint_len(iv.seq)
        + kind
        + encoded_clock_delta_len(&iv.lo, base)
        + delta_components(&iv.hi, Some(&iv.lo))
            .map(varint_len)
            .sum::<usize>()
        + varint_len(iv.coverage.len() as u64)
        + iv.coverage
            .iter()
            .map(|r| varint_len(u64::from(r.process.0)) + varint_len(r.seq))
            .sum::<usize>()
}

// ---------------------------------------------------------------------------
// Tenant batch format (version byte 0xD3)
// ---------------------------------------------------------------------------

/// One group of a tenant batch: an interval plus the predicate ids it is
/// addressed to. When an event is relevant to many tenants the interval
/// is encoded *once* and the fan-out costs one varint per tenant.
pub type TenantGroup = (Vec<u32>, Interval);

/// Encodes a predicate-tagged interval batch:
///
/// ```text
/// DBatch := u32 (0xD3<<24 | group_count), group_count × Group
/// Group  := varint k (≥ 1), k × varint predicate_id, DInterval
/// ```
///
/// One frame carries the pending intervals of *many* tenants on one
/// connection (per-connection batching, not per-predicate framing). Each
/// group's interval is stored once no matter how many tenants consume it.
/// The delta chain runs through the batch: group 0's `lo` is encoded
/// against `base` (the connection base; `None` makes the frame
/// standalone) and every later group's `lo` against the *previous
/// group's* `lo` — so a cold decoder can always decode a standalone
/// batch front to back, the chain being rooted inside the frame. After
/// sending, the connection base should advance to the *last* group's `lo`
/// (see `core::protocol::ConnCodec`).
///
/// # Panics
///
/// Panics if there are ≥ 2^24 groups (the count shares the leading `u32`
/// with the version byte), if a group has no tenants, or if any interval
/// violates [`encode_interval_delta`]'s constraints.
pub fn encode_tenant_batch(groups: &[TenantGroup], base: Option<&VectorClock>, buf: &mut BytesMut) {
    assert!(groups.len() < 1 << 24, "batch group count exceeds 24 bits");
    buf.put_u32_le((u32::from(TENANT_BATCH_TAG) << 24) | groups.len() as u32);
    let mut chain_base = base;
    for (preds, iv) in groups {
        assert!(!preds.is_empty(), "a batch group must address a tenant");
        put_varint(buf, preds.len() as u64);
        for &pred in preds {
            put_varint(buf, u64::from(pred));
        }
        encode_interval_delta(iv, chain_base, buf);
        chain_base = Some(&iv.lo);
    }
}

/// Decodes a predicate-tagged interval batch (see [`encode_tenant_batch`]
/// for the layout and base contract — `base` feeds the first group only;
/// the rest chain internally).
pub fn decode_tenant_batch(
    buf: &mut Bytes,
    base: Option<&VectorClock>,
) -> Result<Vec<TenantGroup>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("batch header truncated"));
    }
    let header = buf.get_u32_le();
    if (header >> 24) as u8 != TENANT_BATCH_TAG {
        return Err(DecodeError("not a tenant batch frame"));
    }
    let count = (header & 0x00ff_ffff) as usize;
    // Each group is at least two varint bytes plus a minimal delta
    // interval — a cheap sanity bound before the allocation.
    if buf.remaining() < 2 * count {
        return Err(DecodeError("batch groups truncated"));
    }
    let mut groups: Vec<TenantGroup> = Vec::with_capacity(count);
    for _ in 0..count {
        let k = get_varint(buf)? as usize;
        if k == 0 {
            return Err(DecodeError("empty tenant group"));
        }
        if k > MAX_COVERAGE {
            return Err(DecodeError("tenant group exceeds MAX_COVERAGE"));
        }
        if buf.remaining() < k {
            return Err(DecodeError("batch groups truncated"));
        }
        let mut preds = Vec::with_capacity(k);
        for _ in 0..k {
            let pred = get_varint(buf)?;
            let pred = u32::try_from(pred).map_err(|_| DecodeError("predicate id out of range"))?;
            preds.push(pred);
        }
        let chain_base = groups.last().map(|(_, prev)| &prev.lo).or(base);
        let iv = decode_interval_delta(buf, chain_base)?;
        groups.push((preds, iv));
    }
    Ok(groups)
}

/// Exact encoded size of a tenant batch for a given first-group base.
pub fn encoded_tenant_batch_len(groups: &[TenantGroup], base: Option<&VectorClock>) -> usize {
    let mut total = 4;
    let mut chain_base = base;
    for (preds, iv) in groups {
        total += varint_len(preds.len() as u64)
            + preds
                .iter()
                .map(|&p| varint_len(u64::from(p)))
                .sum::<usize>()
            + encoded_interval_delta_len(iv, chain_base);
        chain_base = Some(&iv.lo);
    }
    total
}

// ---------------------------------------------------------------------------
// Version-dispatching decoders
// ---------------------------------------------------------------------------

fn peek_version_byte(buf: &Bytes) -> Result<u8, DecodeError> {
    let s = buf.as_slice();
    if s.len() < 4 {
        return Err(DecodeError("frame header truncated"));
    }
    Ok(s[3]) // most-significant byte of the leading little-endian u32
}

/// Decodes a clock in either format, dispatching on the version byte.
pub fn decode_clock_auto(
    buf: &mut Bytes,
    base: Option<&VectorClock>,
) -> Result<VectorClock, DecodeError> {
    match peek_version_byte(buf)? {
        0 => decode_clock(buf),
        CLOCK_DELTA_TAG => decode_clock_delta(buf, base),
        _ => Err(DecodeError("unknown clock format version")),
    }
}

/// Decodes an interval in either format, dispatching on the version byte.
/// Dense frames ignore `base`; stateful delta frames require it.
pub fn decode_interval_auto(
    buf: &mut Bytes,
    base: Option<&VectorClock>,
) -> Result<Interval, DecodeError> {
    match peek_version_byte(buf)? {
        0 => decode_interval(buf),
        INTERVAL_DELTA_TAG => decode_interval_delta(buf, base),
        _ => Err(DecodeError("unknown interval format version")),
    }
}

// ---------------------------------------------------------------------------
// Frame classification (no decode)
// ---------------------------------------------------------------------------

/// What kind of encoded interval frame a byte sequence is, identified
/// without decoding it (see [`frame_kind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Legacy dense frame (version byte `0x00`) — always self-contained.
    Dense,
    /// Delta frame with `base_flag = 0`: decodable by a cold decoder.
    DeltaStandalone,
    /// Delta frame with `base_flag = 1`: requires the connection base.
    DeltaStateful,
}

impl FrameKind {
    /// True when a decoder with no connection state can decode the frame.
    pub fn is_cold_decodable(self) -> bool {
        !matches!(self, FrameKind::DeltaStateful)
    }
}

/// Skips one varint in `s`, returning the remainder (used only to reach
/// the base flag when classifying — values are not interpreted).
fn skip_varint(s: &[u8]) -> Result<&[u8], DecodeError> {
    for (i, b) in s.iter().enumerate().take(10) {
        if b & 0x80 == 0 {
            return Ok(&s[i + 1..]);
        }
    }
    Err(DecodeError("varint truncated"))
}

/// Reads one varint from `s`, returning its value and the remainder
/// (classification-time parsing of group counts).
fn take_varint(s: &[u8]) -> Result<(u64, &[u8]), DecodeError> {
    let mut v: u64 = 0;
    for (i, &b) in s.iter().enumerate().take(10) {
        let bits = u64::from(b & 0x7f);
        if i == 9 && bits > 1 {
            return Err(DecodeError("varint overflows u64"));
        }
        v |= bits << (7 * i);
        if b & 0x80 == 0 {
            return Ok((v, &s[i + 1..]));
        }
    }
    Err(DecodeError("varint truncated"))
}

/// Walks the fixed prefix of a `DInterval` at the start of `s` to its
/// embedded `DClock` base flag: u32 header, varint seq, u8 kind
/// [, varint level], u32 clock header, u8 base_flag.
fn classify_delta_interval(s: &[u8]) -> Result<FrameKind, DecodeError> {
    if s.len() < 4 {
        return Err(DecodeError("frame header truncated"));
    }
    if s[3] != INTERVAL_DELTA_TAG {
        return Err(DecodeError("not a delta interval frame"));
    }
    let s = skip_varint(&s[4..])?;
    let (&kind, s) = s
        .split_first()
        .ok_or(DecodeError("frame header truncated"))?;
    let s = match kind {
        0 => s,
        1 => skip_varint(s)?,
        _ => return Err(DecodeError("unknown interval kind tag")),
    };
    if s.len() < 5 {
        return Err(DecodeError("frame header truncated"));
    }
    if s[3] != CLOCK_DELTA_TAG {
        return Err(DecodeError("not a delta clock frame"));
    }
    match s[4] {
        0 => Ok(FrameKind::DeltaStandalone),
        1 => Ok(FrameKind::DeltaStateful),
        _ => Err(DecodeError("unknown delta base flag")),
    }
}

/// Classifies an encoded *interval* frame by inspection — version byte
/// plus (for delta frames) the embedded `base_flag` — without decoding
/// it. Transports use this to tell resync points (cold-decodable frames)
/// from stateful stream frames when accounting wire traffic.
///
/// A tenant batch ([`TENANT_BATCH_TAG`]) is classified by its *first*
/// entry: later entries always chain against in-frame bases, so the first
/// entry's base flag alone decides cold decodability. An empty batch is
/// trivially standalone.
pub fn frame_kind(frame: &[u8]) -> Result<FrameKind, DecodeError> {
    if frame.len() < 4 {
        return Err(DecodeError("frame header truncated"));
    }
    match frame[3] {
        0 => Ok(FrameKind::Dense),
        INTERVAL_DELTA_TAG => classify_delta_interval(frame),
        TENANT_BATCH_TAG => {
            let count = u32::from_le_bytes([frame[0], frame[1], frame[2], 0]);
            if count == 0 {
                return Ok(FrameKind::DeltaStandalone);
            }
            // Skip the first group's tenant list (varint k, k × varint
            // predicate id), then classify its DInterval.
            let (k, mut s) = take_varint(&frame[4..])?;
            if k == 0 || k as usize > MAX_COVERAGE {
                return Err(DecodeError("empty tenant group"));
            }
            for _ in 0..k {
                s = skip_varint(s)?;
            }
            classify_delta_interval(s)
        }
        _ => Err(DecodeError("unknown interval format version")),
    }
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

/// Convenience: encode an interval into a fresh buffer (dense format).
pub fn interval_to_bytes(iv: &Interval) -> Bytes {
    let mut buf = BytesMut::with_capacity(iv.wire_size());
    encode_interval(iv, &mut buf);
    buf.freeze()
}

/// Convenience: decode an interval from a standalone buffer (either
/// format; stateful delta frames cannot appear standalone).
pub fn interval_from_bytes(bytes: &Bytes) -> Result<Interval, DecodeError> {
    let mut buf = bytes.clone();
    decode_interval_auto(&mut buf, None)
}

/// Convenience: encode an interval into a fresh buffer as a standalone
/// delta frame (zero base — decodable with no connection state).
pub fn interval_to_bytes_delta(iv: &Interval) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_interval_delta_len(iv, None));
    encode_interval_delta(iv, None, &mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_local() -> Interval {
        Interval::local(
            ProcessId(3),
            7,
            VectorClock::from_components(vec![1, 2, 3, 4]),
            VectorClock::from_components(vec![5, 6, 7, 8]),
        )
    }

    fn sample_aggregated() -> Interval {
        let a = sample_local();
        let b = Interval::local(
            ProcessId(1),
            2,
            VectorClock::from_components(vec![2, 2, 2, 2]),
            VectorClock::from_components(vec![6, 6, 6, 6]),
        );
        crate::aggregate(&[a, b], ProcessId(0), 9, 3)
    }

    #[test]
    fn clock_round_trip() {
        let c = VectorClock::from_components(vec![0, u32::MAX, 17]);
        let mut buf = BytesMut::new();
        encode_clock(&c, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_clock(&mut bytes).unwrap(), c);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn local_interval_round_trip() {
        let iv = sample_local();
        let bytes = interval_to_bytes(&iv);
        assert_eq!(bytes.len(), encoded_interval_len(&iv));
        assert_eq!(interval_from_bytes(&bytes).unwrap(), iv);
    }

    #[test]
    fn aggregated_interval_round_trip() {
        let iv = sample_aggregated();
        let bytes = interval_to_bytes(&iv);
        assert_eq!(bytes.len(), encoded_interval_len(&iv));
        let decoded = interval_from_bytes(&bytes).unwrap();
        assert_eq!(decoded, iv);
        assert!(decoded.is_aggregated());
        assert_eq!(decoded.coverage.len(), 2);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let iv = sample_aggregated();
        let bytes = interval_to_bytes(&iv);
        for cut in [0, 3, 12, 13, 20, bytes.len() - 1] {
            let mut truncated = bytes.clone();
            truncated.truncate(cut);
            assert!(
                interval_from_bytes(&truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let iv = sample_local();
        let bytes = interval_to_bytes(&iv);
        let mut raw = bytes.to_vec();
        raw[12] = 9; // kind tag offset: 4 (source) + 8 (seq)
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_interval(&mut buf),
            Err(DecodeError("unknown interval kind tag"))
        );
    }

    #[test]
    fn multiple_intervals_stream() {
        let a = sample_local();
        let b = sample_aggregated();
        let mut buf = BytesMut::new();
        encode_interval(&a, &mut buf);
        encode_interval(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_interval(&mut bytes).unwrap(), a);
        assert_eq!(decode_interval(&mut bytes).unwrap(), b);
        assert!(!bytes.has_remaining());
    }

    // --- hostile length prefixes -------------------------------------------

    #[test]
    fn hostile_clock_length_rejected_before_allocation() {
        // Top byte 0x00 so it looks dense, but the claimed length is far
        // above MAX_PROCESSES. Must fail fast, not allocate gigabytes.
        let mut raw = Vec::new();
        raw.extend_from_slice(&((MAX_PROCESSES as u32 + 1).to_le_bytes()));
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_clock(&mut buf),
            Err(DecodeError("clock length exceeds MAX_PROCESSES"))
        );
    }

    #[test]
    fn hostile_coverage_length_rejected() {
        let iv = sample_local();
        let mut raw = interval_to_bytes(&iv).to_vec();
        // coverage length precedes the single self-coverage entry (12 bytes)
        let at = raw.len() - 12 - 4;
        raw[at..at + 4].copy_from_slice(&0x00ff_ffff_u32.to_le_bytes());
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_interval(&mut buf),
            Err(DecodeError("coverage length exceeds MAX_COVERAGE"))
        );
    }

    #[test]
    fn hostile_delta_clock_length_rejected() {
        let mut raw = Vec::new();
        let header = (u32::from(CLOCK_DELTA_TAG) << 24) | 0x00ff_ffff;
        raw.extend_from_slice(&header.to_le_bytes());
        raw.push(0); // base flag
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_clock_delta(&mut buf, None),
            Err(DecodeError("clock length exceeds MAX_PROCESSES"))
        );
    }

    // --- varint primitives -------------------------------------------------

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(u32::MAX),
            -i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // small magnitudes stay small
        assert!(varint_len(zigzag(-1)) == 1);
        assert!(varint_len(zigzag(1)) == 1);
    }

    #[test]
    fn varint_truncation_and_overflow_rejected() {
        let mut truncated = Bytes::from(vec![0x80, 0x80]);
        assert_eq!(
            get_varint(&mut truncated),
            Err(DecodeError("varint truncated"))
        );
        let mut too_big = Bytes::from(vec![
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ]);
        assert_eq!(
            get_varint(&mut too_big),
            Err(DecodeError("varint overflows u64"))
        );
    }

    // --- delta clock -------------------------------------------------------

    #[test]
    fn delta_clock_standalone_round_trip() {
        let c = VectorClock::from_components(vec![0, u32::MAX, 17, 3]);
        let mut buf = BytesMut::new();
        encode_clock_delta(&c, None, &mut buf);
        assert_eq!(buf.len(), encoded_clock_delta_len(&c, None));
        let mut bytes = buf.freeze();
        assert_eq!(decode_clock_delta(&mut bytes, None).unwrap(), c);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn delta_clock_stateful_round_trip() {
        let base = VectorClock::from_components(vec![100, 200, 300]);
        let c = VectorClock::from_components(vec![101, 199, 300]);
        let mut buf = BytesMut::new();
        encode_clock_delta(&c, Some(&base), &mut buf);
        let stateful_len = buf.len();
        assert_eq!(stateful_len, encoded_clock_delta_len(&c, Some(&base)));
        let mut bytes = buf.freeze();
        assert_eq!(decode_clock_delta(&mut bytes, Some(&base)).unwrap(), c);

        // near-identical clocks encode to ~1 byte per component
        assert_eq!(stateful_len, 5 + 3);
        // the same clock standalone is bigger (multi-byte varints)
        assert!(encoded_clock_delta_len(&c, None) > stateful_len);
    }

    #[test]
    fn stateful_frame_without_base_errors() {
        let base = VectorClock::from_components(vec![5, 5]);
        let c = VectorClock::from_components(vec![6, 5]);
        let mut buf = BytesMut::new();
        encode_clock_delta(&c, Some(&base), &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_clock_delta(&mut bytes, None),
            Err(DecodeError("stateful delta frame but no base supplied"))
        );
    }

    #[test]
    fn wrong_base_width_errors() {
        let base = VectorClock::from_components(vec![5, 5]);
        let c = VectorClock::from_components(vec![6, 5]);
        let mut buf = BytesMut::new();
        encode_clock_delta(&c, Some(&base), &mut buf);
        let mut bytes = buf.freeze();
        let narrow = VectorClock::from_components(vec![5]);
        assert_eq!(
            decode_clock_delta(&mut bytes, Some(&narrow)),
            Err(DecodeError("delta base width mismatch"))
        );
    }

    #[test]
    fn negative_component_after_base_rejected() {
        // encoder base says 10, decoder base says 0 with flag 0 is
        // impossible (flag mismatch caught), but a hostile frame can carry
        // a delta driving the component negative.
        let mut raw = Vec::new();
        let header = (u32::from(CLOCK_DELTA_TAG) << 24) | 1;
        raw.extend_from_slice(&header.to_le_bytes());
        raw.push(0); // standalone, base = 0
        raw.push(0x01); // zigzag(-1)
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_clock_delta(&mut buf, None),
            Err(DecodeError("delta component out of range"))
        );
    }

    // --- delta interval ----------------------------------------------------

    #[test]
    fn delta_interval_standalone_round_trip() {
        for iv in [sample_local(), sample_aggregated()] {
            let bytes = interval_to_bytes_delta(&iv);
            assert_eq!(bytes.len(), encoded_interval_delta_len(&iv, None));
            let mut buf = bytes.clone();
            assert_eq!(decode_interval_delta(&mut buf, None).unwrap(), iv);
            assert!(!buf.has_remaining());
        }
    }

    #[test]
    fn delta_interval_stateful_round_trip() {
        let iv = sample_local();
        let base = VectorClock::from_components(vec![1, 2, 3, 3]);
        let mut buf = BytesMut::new();
        encode_interval_delta(&iv, Some(&base), &mut buf);
        assert_eq!(buf.len(), encoded_interval_delta_len(&iv, Some(&base)));
        let mut bytes = buf.freeze();
        assert_eq!(decode_interval_delta(&mut bytes, Some(&base)).unwrap(), iv);
    }

    #[test]
    fn auto_decoder_handles_both_formats() {
        let iv = sample_aggregated();
        let dense = interval_to_bytes(&iv);
        let delta = interval_to_bytes_delta(&iv);
        assert_eq!(interval_from_bytes(&dense).unwrap(), iv);
        assert_eq!(interval_from_bytes(&delta).unwrap(), iv);

        let mut unknown = Bytes::from(vec![0, 0, 0, 0x42, 0, 0, 0, 0]);
        assert_eq!(
            decode_interval_auto(&mut unknown, None),
            Err(DecodeError("unknown interval format version"))
        );
    }

    #[test]
    fn auto_decoder_clock_both_formats() {
        let c = VectorClock::from_components(vec![9, 0, 4]);
        let mut dense = BytesMut::new();
        encode_clock(&c, &mut dense);
        let mut delta = BytesMut::new();
        encode_clock_delta(&c, None, &mut delta);
        assert_eq!(decode_clock_auto(&mut dense.freeze(), None).unwrap(), c);
        assert_eq!(decode_clock_auto(&mut delta.freeze(), None).unwrap(), c);
    }

    #[test]
    fn delta_beats_dense_at_scale() {
        // A realistic wide interval: n = 1024, bounds close to each other,
        // sent against a recent per-connection base.
        let n = 1024;
        let mut lo = vec![0u32; n];
        for (i, c) in lo.iter_mut().enumerate() {
            *c = (i as u32 % 7) * 100;
        }
        let mut hi = lo.clone();
        for c in hi.iter_mut().take(16) {
            *c += 3; // the interval advanced a handful of components
        }
        let mut base = lo.clone();
        for c in base.iter_mut().take(8) {
            *c = c.saturating_sub(2); // connection base slightly behind
        }
        let iv = Interval::local(
            ProcessId(5),
            40,
            VectorClock::from_components(lo),
            VectorClock::from_components(hi),
        );
        let base = VectorClock::from_components(base);
        let dense = encoded_interval_len(&iv);
        let standalone = encoded_interval_delta_len(&iv, None);
        let stateful = encoded_interval_delta_len(&iv, Some(&base));
        assert!(
            standalone < dense,
            "standalone delta ({standalone}) should beat dense ({dense})"
        );
        assert!(
            stateful < standalone,
            "stateful delta ({stateful}) should beat standalone ({standalone})"
        );
    }

    #[test]
    fn frame_kind_classifies_without_decoding() {
        for iv in [sample_local(), sample_aggregated()] {
            let dense = interval_to_bytes(&iv);
            assert_eq!(frame_kind(dense.as_slice()), Ok(FrameKind::Dense));
            let standalone = interval_to_bytes_delta(&iv);
            assert_eq!(
                frame_kind(standalone.as_slice()),
                Ok(FrameKind::DeltaStandalone)
            );
            let base = iv.lo.clone();
            let mut buf = BytesMut::new();
            encode_interval_delta(&iv, Some(&base), &mut buf);
            assert_eq!(
                frame_kind(buf.freeze().as_slice()),
                Ok(FrameKind::DeltaStateful)
            );
            assert!(!FrameKind::DeltaStateful.is_cold_decodable());
            assert!(FrameKind::DeltaStandalone.is_cold_decodable());
        }
        assert!(frame_kind(&[1, 2]).is_err(), "short input errors");
        assert!(
            frame_kind(&[0, 0, 0, 0x42, 0, 0, 0, 0]).is_err(),
            "unknown version errors"
        );
    }

    // --- tenant batch ------------------------------------------------------

    fn sample_batch() -> Vec<TenantGroup> {
        // The same event routed to three tenants plus one distinct
        // pending interval — the mixed shape a per-connection uplink
        // coalesces.
        let a = sample_local();
        let b = Interval::local(
            ProcessId(1),
            2,
            VectorClock::from_components(vec![2, 2, 2, 2]),
            VectorClock::from_components(vec![6, 6, 6, 6]),
        );
        vec![(vec![0, 17, 4093], a), (vec![2], b)]
    }

    #[test]
    fn tenant_batch_standalone_round_trip() {
        let entries = sample_batch();
        let mut buf = BytesMut::new();
        encode_tenant_batch(&entries, None, &mut buf);
        assert_eq!(buf.len(), encoded_tenant_batch_len(&entries, None));
        let mut bytes = buf.freeze();
        assert_eq!(decode_tenant_batch(&mut bytes, None).unwrap(), entries);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn tenant_batch_stateful_round_trip() {
        let entries = sample_batch();
        let base = VectorClock::from_components(vec![1, 2, 3, 3]);
        let mut buf = BytesMut::new();
        encode_tenant_batch(&entries, Some(&base), &mut buf);
        assert_eq!(buf.len(), encoded_tenant_batch_len(&entries, Some(&base)));
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_tenant_batch(&mut bytes, Some(&base)).unwrap(),
            entries
        );
    }

    #[test]
    fn tenant_batch_fanout_entries_are_cheap() {
        // Routing one event to k tenants: the interval is encoded once
        // and each extra tenant costs one varint — per-predicate framing
        // would re-ship the interval k times.
        let a = sample_local();
        let solo = vec![(vec![0u32], a.clone())];
        let fanout = vec![((0..64u32).collect::<Vec<u32>>(), a.clone())];
        let solo_len = encoded_tenant_batch_len(&solo, None);
        let fanout_len = encoded_tenant_batch_len(&fanout, None);
        let per_predicate = 64 * solo_len;
        assert!(
            fanout_len < per_predicate / 8,
            "batched fan-out ({fanout_len}) must beat per-predicate framing ({per_predicate})"
        );
        assert_eq!(
            fanout_len - solo_len,
            63,
            "each extra tenant costs exactly one varint here"
        );
    }

    #[test]
    fn tenant_batch_empty_round_trip() {
        let mut buf = BytesMut::new();
        encode_tenant_batch(&[], None, &mut buf);
        assert_eq!(buf.len(), 4);
        let mut bytes = buf.freeze();
        assert_eq!(frame_kind(bytes.as_slice()), Ok(FrameKind::DeltaStandalone));
        assert_eq!(decode_tenant_batch(&mut bytes, None).unwrap(), vec![]);
    }

    #[test]
    fn tenant_batch_frame_kind_tracks_first_entry() {
        let entries = sample_batch();
        let mut standalone = BytesMut::new();
        encode_tenant_batch(&entries, None, &mut standalone);
        assert_eq!(
            frame_kind(standalone.freeze().as_slice()),
            Ok(FrameKind::DeltaStandalone)
        );
        let base = VectorClock::from_components(vec![0, 0, 0, 1]);
        let mut stateful = BytesMut::new();
        encode_tenant_batch(&entries, Some(&base), &mut stateful);
        assert_eq!(
            frame_kind(stateful.freeze().as_slice()),
            Ok(FrameKind::DeltaStateful)
        );
        assert!(FrameKind::DeltaStandalone.is_cold_decodable());
    }

    #[test]
    fn tenant_batch_stateful_without_base_errors() {
        let entries = sample_batch();
        let base = VectorClock::from_components(vec![1, 1, 1, 1]);
        let mut buf = BytesMut::new();
        encode_tenant_batch(&entries, Some(&base), &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(
            decode_tenant_batch(&mut bytes, None),
            Err(DecodeError("stateful delta frame but no base supplied"))
        );
    }

    #[test]
    fn tenant_batch_truncations_error_cleanly() {
        let entries = sample_batch();
        let mut buf = BytesMut::new();
        encode_tenant_batch(&entries, None, &mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut truncated = bytes.clone();
            truncated.truncate(cut);
            assert!(
                decode_tenant_batch(&mut truncated, None).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn hostile_batch_count_rejected_before_allocation() {
        let header = (u32::from(TENANT_BATCH_TAG) << 24) | 0x00ff_ffff;
        let mut buf = Bytes::from(header.to_le_bytes().to_vec());
        assert_eq!(
            decode_tenant_batch(&mut buf, None),
            Err(DecodeError("batch groups truncated"))
        );
    }

    #[test]
    fn hostile_empty_group_rejected() {
        // Header claims one group, whose tenant count is zero.
        let header = (u32::from(TENANT_BATCH_TAG) << 24) | 1;
        let mut raw = header.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0x00, 0x00]); // k = 0, then padding
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_tenant_batch(&mut buf, None),
            Err(DecodeError("empty tenant group"))
        );
    }

    #[test]
    fn delta_interval_truncations_error_cleanly() {
        let iv = sample_aggregated();
        let bytes = interval_to_bytes_delta(&iv);
        for cut in 0..bytes.len() {
            let mut truncated = bytes.clone();
            truncated.truncate(cut);
            let mut buf = truncated;
            assert!(
                decode_interval_delta(&mut buf, None).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
