//! Binary wire codec for intervals and timestamps.
//!
//! The simulator's byte accounting — and any real transport a library
//! user brings — needs an actual serialized form, not an estimate. The
//! format is little-endian, length-prefixed, and self-contained:
//!
//! ```text
//! VectorClock := u32 len, len × u32 components
//! IntervalRef := u32 process, u64 seq
//! Interval    := u32 source, u64 seq, u8 kind, [u32 level if aggregated],
//!                VectorClock lo, VectorClock hi,
//!                u32 coverage_len, coverage_len × IntervalRef
//! ```

use crate::interval::{Interval, IntervalKind, IntervalRef};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftscp_vclock::{ProcessId, VectorClock};
use std::fmt;

/// Decoding error: the buffer did not contain a well-formed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a vector clock into `buf`.
pub fn encode_clock(clock: &VectorClock, buf: &mut BytesMut) {
    buf.put_u32_le(clock.len() as u32);
    for i in 0..clock.len() {
        buf.put_u32_le(clock.get(i));
    }
}

/// Decodes a vector clock from `buf`.
pub fn decode_clock(buf: &mut Bytes) -> Result<VectorClock, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("clock length header truncated"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < 4 * len {
        return Err(DecodeError("clock components truncated"));
    }
    let mut components = Vec::with_capacity(len);
    for _ in 0..len {
        components.push(buf.get_u32_le());
    }
    Ok(VectorClock::from_components(components))
}

/// Encodes an interval into `buf`.
pub fn encode_interval(iv: &Interval, buf: &mut BytesMut) {
    buf.put_u32_le(iv.source.0);
    buf.put_u64_le(iv.seq);
    match iv.kind {
        IntervalKind::Local => buf.put_u8(0),
        IntervalKind::Aggregated { level } => {
            buf.put_u8(1);
            buf.put_u32_le(level);
        }
    }
    encode_clock(&iv.lo, buf);
    encode_clock(&iv.hi, buf);
    buf.put_u32_le(iv.coverage.len() as u32);
    for r in &iv.coverage {
        buf.put_u32_le(r.process.0);
        buf.put_u64_le(r.seq);
    }
}

/// Decodes an interval from `buf`.
pub fn decode_interval(buf: &mut Bytes) -> Result<Interval, DecodeError> {
    if buf.remaining() < 13 {
        return Err(DecodeError("interval header truncated"));
    }
    let source = ProcessId(buf.get_u32_le());
    let seq = buf.get_u64_le();
    let kind = match buf.get_u8() {
        0 => IntervalKind::Local,
        1 => {
            if buf.remaining() < 4 {
                return Err(DecodeError("aggregation level truncated"));
            }
            IntervalKind::Aggregated {
                level: buf.get_u32_le(),
            }
        }
        _ => return Err(DecodeError("unknown interval kind tag")),
    };
    let lo = decode_clock(buf)?;
    let hi = decode_clock(buf)?;
    if buf.remaining() < 4 {
        return Err(DecodeError("coverage length truncated"));
    }
    let cov_len = buf.get_u32_le() as usize;
    if buf.remaining() < 12 * cov_len {
        return Err(DecodeError("coverage entries truncated"));
    }
    let mut coverage = Vec::with_capacity(cov_len);
    for _ in 0..cov_len {
        let process = ProcessId(buf.get_u32_le());
        let seq = buf.get_u64_le();
        coverage.push(IntervalRef { process, seq });
    }
    Ok(Interval {
        source,
        seq,
        lo,
        hi,
        kind,
        coverage,
    })
}

/// Convenience: encode an interval into a fresh buffer.
pub fn interval_to_bytes(iv: &Interval) -> Bytes {
    let mut buf = BytesMut::with_capacity(iv.wire_size());
    encode_interval(iv, &mut buf);
    buf.freeze()
}

/// Convenience: decode an interval from a standalone buffer.
pub fn interval_from_bytes(bytes: &Bytes) -> Result<Interval, DecodeError> {
    let mut buf = bytes.clone();
    decode_interval(&mut buf)
}

/// Exact encoded size of an interval in this codec.
pub fn encoded_interval_len(iv: &Interval) -> usize {
    let kind = match iv.kind {
        IntervalKind::Local => 1,
        IntervalKind::Aggregated { .. } => 5,
    };
    4 + 8 + kind + (4 + 4 * iv.lo.len()) + (4 + 4 * iv.hi.len()) + 4 + 12 * iv.coverage.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_local() -> Interval {
        Interval::local(
            ProcessId(3),
            7,
            VectorClock::from_components(vec![1, 2, 3, 4]),
            VectorClock::from_components(vec![5, 6, 7, 8]),
        )
    }

    fn sample_aggregated() -> Interval {
        let a = sample_local();
        let b = Interval::local(
            ProcessId(1),
            2,
            VectorClock::from_components(vec![2, 2, 2, 2]),
            VectorClock::from_components(vec![6, 6, 6, 6]),
        );
        crate::aggregate(&[a, b], ProcessId(0), 9, 3)
    }

    #[test]
    fn clock_round_trip() {
        let c = VectorClock::from_components(vec![0, u32::MAX, 17]);
        let mut buf = BytesMut::new();
        encode_clock(&c, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_clock(&mut bytes).unwrap(), c);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn local_interval_round_trip() {
        let iv = sample_local();
        let bytes = interval_to_bytes(&iv);
        assert_eq!(bytes.len(), encoded_interval_len(&iv));
        assert_eq!(interval_from_bytes(&bytes).unwrap(), iv);
    }

    #[test]
    fn aggregated_interval_round_trip() {
        let iv = sample_aggregated();
        let bytes = interval_to_bytes(&iv);
        assert_eq!(bytes.len(), encoded_interval_len(&iv));
        let decoded = interval_from_bytes(&bytes).unwrap();
        assert_eq!(decoded, iv);
        assert!(decoded.is_aggregated());
        assert_eq!(decoded.coverage.len(), 2);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let iv = sample_aggregated();
        let bytes = interval_to_bytes(&iv);
        for cut in [0, 3, 12, 13, 20, bytes.len() - 1] {
            let mut truncated = bytes.clone();
            truncated.truncate(cut);
            assert!(
                interval_from_bytes(&truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let iv = sample_local();
        let bytes = interval_to_bytes(&iv);
        let mut raw = bytes.to_vec();
        raw[12] = 9; // kind tag offset: 4 (source) + 8 (seq)
        let mut buf = Bytes::from(raw);
        assert_eq!(
            decode_interval(&mut buf),
            Err(DecodeError("unknown interval kind tag"))
        );
    }

    #[test]
    fn multiple_intervals_stream() {
        let a = sample_local();
        let b = sample_aggregated();
        let mut buf = BytesMut::new();
        encode_interval(&a, &mut buf);
        encode_interval(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_interval(&mut bytes).unwrap(), a);
        assert_eq!(decode_interval(&mut bytes).unwrap(), b);
        assert!(!bytes.has_remaining());
    }
}
