//! Machine-checkable statements of the paper's theorems.
//!
//! These helpers evaluate both sides of each theorem's "iff" on concrete
//! data. The property-test suites sample thousands of random interval sets
//! and assert that the equivalences hold — turning the paper's proofs into
//! executable regression tests for this implementation.

use crate::aggregate::aggregate;
use crate::interval::Interval;
use crate::overlap::{definitely_holds, overlap};
use ftscp_vclock::ProcessId;

/// Theorem 1: for `Z = X ∪ Y`,
/// `overlap(Z) ⇔ overlap(X) ∧ overlap(Y) ∧ overlap(⊓X, ⊓Y)`.
///
/// Returns `(lhs, rhs)` so callers can assert `lhs == rhs`.
pub fn theorem1_sides(x: &[Interval], y: &[Interval]) -> (bool, bool) {
    assert!(
        !x.is_empty() && !y.is_empty(),
        "theorem 1 needs non-empty sets"
    );
    let mut z = x.to_vec();
    z.extend_from_slice(y);
    let lhs = definitely_holds(&z);
    let rhs = definitely_holds(x)
        && definitely_holds(y)
        && overlap(
            &aggregate(x, ProcessId(0), 0, 1),
            &aggregate(y, ProcessId(0), 0, 1),
        );
    (lhs, rhs)
}

/// Lemma 1: for `Z = ∪ X_i`,
/// `overlap(Z) ⇔ ∧ᵢ overlap(X_i) ∧ overlap(⊓X_1, …, ⊓X_d)`.
pub fn lemma1_sides(sets: &[Vec<Interval>]) -> (bool, bool) {
    assert!(
        sets.iter().all(|s| !s.is_empty()),
        "lemma 1 needs non-empty sets"
    );
    let z: Vec<Interval> = sets.iter().flatten().cloned().collect();
    let lhs = definitely_holds(&z);
    let aggs: Vec<Interval> = sets
        .iter()
        .map(|s| aggregate(s, ProcessId(0), 0, 1))
        .collect();
    let rhs = sets.iter().all(|s| definitely_holds(s)) && definitely_holds(&aggs);
    (lhs, rhs)
}

/// Eq. (7): `⊓(⊓X, ⊓Y) = ⊓(X ∪ Y)` (on bounds).
pub fn eq7_holds(x: &[Interval], y: &[Interval]) -> bool {
    let ax = aggregate(x, ProcessId(0), 0, 1);
    let ay = aggregate(y, ProcessId(0), 0, 1);
    let nested = aggregate(&[ax, ay], ProcessId(0), 0, 2);
    let mut z = x.to_vec();
    z.extend_from_slice(y);
    let flat = aggregate(&z, ProcessId(0), 0, 2);
    nested.lo == flat.lo && nested.hi == flat.hi
}

/// Theorem 2, first half: an aggregation of an overlapping set is
/// well-formed (`min(⊓X) ≤ max(⊓X)` component-wise).
pub fn theorem2_well_formed(x: &[Interval]) -> bool {
    if !definitely_holds(x) {
        return true; // precondition not met: vacuous
    }
    aggregate(x, ProcessId(0), 0, 1).is_well_formed()
}

/// Theorem 2, second half: successive aggregations at the same node are
/// totally ordered — `max(⊓X) < min(⊓X')` whenever some member of `X'`
/// succeeds the corresponding member of `X`.
pub fn theorem2_succession(earlier: &Interval, later: &Interval) -> bool {
    earlier.hi.strictly_less(&later.lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::VectorClock;

    fn iv(p: u32, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            0,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    fn fig3_x() -> Vec<Interval> {
        vec![
            iv(0, &[2, 1, 0, 0], &[4, 2, 3, 2]),
            iv(2, &[1, 1, 2, 0], &[3, 2, 4, 2]),
        ]
    }

    fn fig3_y() -> Vec<Interval> {
        vec![
            iv(1, &[1, 2, 0, 0], &[3, 4, 3, 2]),
            iv(3, &[1, 1, 1, 2], &[3, 2, 3, 4]),
        ]
    }

    #[test]
    fn theorem1_on_figure3() {
        let (lhs, rhs) = theorem1_sides(&fig3_x(), &fig3_y());
        assert!(lhs && rhs);
    }

    #[test]
    fn theorem1_negative_case() {
        // Y entirely after X: both sides false.
        let x = vec![iv(0, &[1, 0], &[2, 0])];
        let y = vec![iv(1, &[3, 1], &[3, 2])];
        let (lhs, rhs) = theorem1_sides(&x, &y);
        assert!(!lhs && !rhs);
    }

    #[test]
    fn lemma1_with_three_sets() {
        let sets = vec![
            fig3_x(),
            fig3_y(),
            vec![iv(0, &[1, 1, 1, 1], &[3, 2, 3, 2])],
        ];
        let (lhs, rhs) = lemma1_sides(&sets);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eq7_on_figure3() {
        assert!(eq7_holds(&fig3_x(), &fig3_y()));
    }

    #[test]
    fn theorem2_well_formedness_on_figure3() {
        assert!(theorem2_well_formed(&fig3_x()));
        assert!(theorem2_well_formed(&fig3_y()));
    }
}
