//! The `overlap` condition — `Definitely(Φ)` and `Possibly(Φ)` over
//! interval sets (Eqs. (1) and (2) of the paper).

use crate::interval::Interval;
use crate::summary::SweepSummary;
use ftscp_vclock::{order, OpCounter};

/// Pairwise overlap: `min(x) < max(y) ∧ min(y) < max(x)`.
///
/// `overlap` closed over a set of intervals, one per process, is exactly the
/// Garg–Waldecker condition for `Definitely(Φ)` (Eq. (2)).
pub fn overlap(x: &Interval, y: &Interval) -> bool {
    x.lo.strictly_less(&y.hi) && y.lo.strictly_less(&x.hi)
}

/// Instrumented [`overlap`], billing component inspections to `ops`.
pub fn overlap_counted(x: &Interval, y: &Interval, ops: &OpCounter) -> bool {
    order::strictly_less_counted(&x.lo, &y.hi, ops)
        && order::strictly_less_counted(&y.lo, &x.hi, ops)
}

/// `Definitely(Φ)` over a set `X`: `∀ x_i, x_j ∈ X (i ≠ j): min(x_i) <
/// max(x_j)` (Eq. (2)). The empty set and singletons hold vacuously.
pub fn definitely_holds(set: &[Interval]) -> bool {
    for (i, x) in set.iter().enumerate() {
        for y in set.iter().skip(i + 1) {
            if !overlap(x, y) {
                return false;
            }
        }
    }
    true
}

/// [`definitely_holds`] through the `⊓`-summary gate: each member is
/// first tested against the aggregate of the others in `O(n)`
/// ([`SweepSummary::certify`], Theorem 1); only members the summary
/// cannot certify — a violation, or the rare non-strict tie against the
/// aggregate — fall back to their exact pairwise row. Returns exactly
/// what [`definitely_holds`] returns, in `O(k·n)` instead of `O(k²·n)`
/// when the set mutually overlaps (the expensive case, since
/// non-overlapping pairs short-circuit either way). Billing on `ops`
/// follows the gate/chunked-comparator convention.
pub fn definitely_holds_fast(set: &[Interval], ops: &OpCounter) -> bool {
    if set.len() < 2 {
        return true;
    }
    let heads: Vec<Option<(&[u32], &[u32])>> = set
        .iter()
        .map(|iv| Some((iv.lo.components(), iv.hi.components())))
        .collect();
    let mut summary = SweepSummary::new();
    for (i, x) in set.iter().enumerate() {
        if summary.certify(i, x.lo.components(), x.hi.components(), &heads, ops) {
            continue;
        }
        // Exact row: the gate is conservative on ties, so only a pairwise
        // violation is a verdict.
        for (j, y) in set.iter().enumerate() {
            if i != j
                && !(order::strictly_less_chunked_counted(&x.lo, &y.hi, ops)
                    && order::strictly_less_chunked_counted(&y.lo, &x.hi, ops))
            {
                return false;
            }
        }
    }
    true
}

/// `Possibly(Φ)` over a set `X`: `∀ x_i, x_j ∈ X (i ≠ j): max(x_i) ≮
/// min(x_j)` (Eq. (1)) — no interval entirely precedes another.
pub fn possibly_holds(set: &[Interval]) -> bool {
    for (i, x) in set.iter().enumerate() {
        for (j, y) in set.iter().enumerate() {
            if i != j && x.hi.strictly_less(&y.lo) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::{ProcessId, VectorClock};

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    /// Two intervals that mutually "see into" each other overlap.
    #[test]
    fn overlapping_pair() {
        // P0 interval [1..4]; P1 interval starts after seeing P0's start and
        // ends before P0's end event is known — concurrent enough to overlap.
        let x = iv(0, 0, &[1, 0], &[4, 3]);
        let y = iv(1, 0, &[2, 1], &[3, 4]);
        assert!(overlap(&x, &y));
        assert!(overlap(&y, &x), "overlap is symmetric");
    }

    /// An interval that entirely precedes another does not overlap it.
    #[test]
    fn sequential_pair_does_not_overlap() {
        let x = iv(0, 0, &[1, 0], &[2, 0]);
        let y = iv(1, 0, &[3, 1], &[3, 2]); // starts causally after x ends
        assert!(!overlap(&x, &y));
        // ... but Possibly still holds for (x, y)? No: x entirely precedes y.
        assert!(!possibly_holds(&[x, y]));
    }

    /// Definitely requires every pair to overlap.
    #[test]
    fn definitely_needs_all_pairs() {
        let x = iv(0, 0, &[1, 0, 0], &[5, 4, 4]);
        let y = iv(1, 0, &[1, 1, 0], &[4, 5, 4]);
        let z_bad = iv(2, 0, &[6, 6, 1], &[6, 6, 2]); // after x and y
        assert!(definitely_holds(&[x.clone(), y.clone()]));
        assert!(!definitely_holds(&[x, y, z_bad]));
    }

    /// Definitely implies Possibly (strong modality implies weak).
    #[test]
    fn definitely_implies_possibly() {
        let x = iv(0, 0, &[1, 0], &[4, 3]);
        let y = iv(1, 0, &[2, 1], &[3, 4]);
        let set = [x, y];
        assert!(definitely_holds(&set));
        assert!(possibly_holds(&set));
    }

    /// Concurrent but non-communicating intervals: Possibly holds,
    /// Definitely does not (neither min precedes the other's max).
    #[test]
    fn concurrent_without_communication_is_possibly_only() {
        let x = iv(0, 0, &[1, 0], &[2, 0]);
        let y = iv(1, 0, &[0, 1], &[0, 2]);
        let set = [x, y];
        assert!(possibly_holds(&set));
        assert!(!definitely_holds(&set));
    }

    #[test]
    fn trivial_sets_hold() {
        assert!(definitely_holds(&[]));
        assert!(possibly_holds(&[]));
        let x = iv(0, 0, &[1, 0], &[2, 0]);
        assert!(definitely_holds(std::slice::from_ref(&x)));
        assert!(possibly_holds(std::slice::from_ref(&x)));
    }

    /// `definitely_holds_fast` is a drop-in for `definitely_holds` on
    /// randomized sets spanning certify-clean, tie, and violating cases.
    #[test]
    fn fast_definitely_matches_exact_on_random_sets() {
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let k = 1 + (rng() % 6) as usize;
            let n = 1 + (rng() % 14) as usize;
            let set: Vec<Interval> = (0..k)
                .map(|p| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 5) as u32).collect();
                    iv(p as u32, 0, &lo, &hi)
                })
                .collect();
            let ops = OpCounter::new();
            assert_eq!(
                definitely_holds_fast(&set, &ops),
                definitely_holds(&set),
                "fast path diverged on {set:?}"
            );
        }
    }

    /// On a mutually overlapping set the gate certifies every member, so
    /// the fast path bills `O(k·n)` words instead of `O(k²·n)` components.
    #[test]
    fn fast_definitely_bills_less_on_overlapping_sets() {
        let k = 8;
        let n = 64;
        // Member p: lo = e_p (its own tick), hi = all 9s — every pair
        // strictly overlaps in both directions.
        let set: Vec<Interval> = (0..k)
            .map(|p| {
                let mut lo = vec![0u32; n];
                lo[p as usize] = 1;
                iv(p, 0, &lo, &vec![9u32; n])
            })
            .collect();
        let fast_ops = OpCounter::new();
        assert!(definitely_holds_fast(&set, &fast_ops));
        let exact_ops = OpCounter::new();
        for (i, x) in set.iter().enumerate() {
            for y in set.iter().skip(i + 1) {
                assert!(overlap_counted(x, y, &exact_ops));
            }
        }
        assert!(
            fast_ops.get() < exact_ops.get(),
            "gate ({}) must beat pairwise ({})",
            fast_ops.get(),
            exact_ops.get()
        );
    }

    #[test]
    fn counted_overlap_matches() {
        let ops = OpCounter::new();
        let x = iv(0, 0, &[1, 0], &[4, 3]);
        let y = iv(1, 0, &[2, 1], &[3, 4]);
        assert_eq!(overlap_counted(&x, &y, &ops), overlap(&x, &y));
        assert!(ops.get() > 0, "comparisons were billed");
    }
}
