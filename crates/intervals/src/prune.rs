//! Repeated-detection prune rules (Eqs. (9) and (10), Theorems 3–4).
//!
//! After a solution set `X = {x_0 .. x_l}` is detected, at least one head
//! must be removed from its queue or the detector would report the same
//! solution forever. The *exact* rule (Eq. (9)) removes `x_i` iff no other
//! member's successor can still overlap it:
//!
//! ```text
//! remove x_i  iff  ∀ x_j ∈ X (j ≠ i): min(succ(x_j)) ≮ max(x_i)
//! ```
//!
//! but `min(succ(x_j))` is unknown until the successor arrives. The paper
//! therefore prunes with the on-line approximation (Eq. (10)):
//!
//! ```text
//! remove x_i  iff  ∀ x_j ∈ X (j ≠ i): max(x_j) ≮ max(x_i)
//! ```
//!
//! which is **safe** (Theorem 3: `max(x_j) < min(succ(x_j))`, so Eq. (10)
//! implies Eq. (9)) and **live** (Theorem 4: the heads' `max` cuts cannot
//! form a `<`-cycle, so at least one head always qualifies).

use crate::interval::Interval;
use ftscp_vclock::{order, OpCounter, VectorClock};
use serde::{Deserialize, Serialize};

/// Which prune rule a detector uses after each solution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PruneRule {
    /// Eq. (10): `∀ j≠i: max(x_j) ≮ max(x_i)`. The paper's on-line rule.
    #[default]
    Approximate,
    /// Eq. (9) evaluated with hindsight: requires successor knowledge, so it
    /// is only usable by the offline/ablation detectors in
    /// [`crate::offline`].
    ExactWithHindsight,
}

/// Indices (into `solution`) of the heads Eq. (10) removes.
///
/// Guaranteed non-empty for any non-empty solution set (Theorem 4); every
/// returned index is safe to remove (Theorem 3).
pub fn approximate_removals(solution: &[&Interval], ops: &OpCounter) -> Vec<usize> {
    let mut removable = Vec::new();
    for (i, x) in solution.iter().enumerate() {
        let mut qualifies = true;
        for (j, y) in solution.iter().enumerate() {
            if i == j {
                continue;
            }
            // max(x_j) < max(x_i) disqualifies x_i.
            if order::strictly_less_counted(&y.hi, &x.hi, ops) {
                qualifies = false;
                break;
            }
        }
        if qualifies {
            removable.push(i);
        }
    }
    removable
}

/// Solution sizes below this skip the `⊓`-summary gate inside
/// [`approximate_removals_aggregate`]: with `k` members the gate costs
/// `⌈n/8⌉` words per member while the chunked pairwise row typically
/// resolves a disqualification within a word or two (max-cuts of a
/// solution are mostly concurrent, and concurrency exits early), so the
/// gate only earns its keep on wide banks — above all the centralized
/// sink, where `k = n`.
pub const PRUNE_GATE_MIN_MEMBERS: usize = 9;

/// [`approximate_removals`] evaluated against a `⊓`-summary with a
/// pairwise fallback — **identical removal decisions**, different cost.
///
/// Per component the two smallest `max(x_j)` values (and their owners) are
/// aggregated once — merge work, unbilled exactly like interval
/// aggregation. A member `x_i` is then *certified removable* by one
/// chunked scan if some component of `max(x_i)` lies strictly below every
/// other member's max (`∃c: max(x_i)[c] < min_{j≠i} max(x_j)[c]` ⇒ no
/// `max(x_j)` can be component-wise `≤ max(x_i)`, so Eq. (10) keeps `i`
/// qualified against every `j`). Members the gate cannot certify fall back
/// to the exact pairwise row, run through the word-chunked comparator.
/// Small solutions (`k <` [`PRUNE_GATE_MIN_MEMBERS`]) go straight to the
/// fallback, where the pairwise row is strictly cheaper.
pub fn approximate_removals_aggregate(solution: &[&Interval], ops: &OpCounter) -> Vec<usize> {
    use ftscp_vclock::order::CHUNK_WIDTH;

    let k = solution.len();
    if k == 0 {
        return Vec::new();
    }
    let width = solution[0].hi.len();
    let use_gate = k >= PRUNE_GATE_MIN_MEMBERS;
    let (mut min1, mut min1_owner, mut min2) = (Vec::new(), Vec::new(), Vec::new());
    if use_gate {
        min1 = vec![u32::MAX; width];
        min1_owner = vec![usize::MAX; width];
        min2 = vec![u32::MAX; width];
        for (j, y) in solution.iter().enumerate() {
            let hi = y.hi.components();
            for c in 0..width {
                let v = hi[c];
                if v < min1[c] {
                    min2[c] = min1[c];
                    min1[c] = v;
                    min1_owner[c] = j;
                } else if v < min2[c] {
                    min2[c] = v;
                }
            }
        }
    }
    let mut removable = Vec::new();
    'members: for (i, x) in solution.iter().enumerate() {
        if use_gate {
            let hi = x.hi.components();
            let mut words = 0u64;
            let mut certified = false;
            let mut c = 0;
            while c < width && !certified {
                words += 1;
                let end = (c + CHUNK_WIDTH).min(width);
                while c < end {
                    let excl = if min1_owner[c] == i { min2[c] } else { min1[c] };
                    certified |= hi[c] < excl;
                    c += 1;
                }
            }
            ops.add(words);
            if certified {
                removable.push(i);
                continue 'members;
            }
        }
        let mut qualifies = true;
        for (j, y) in solution.iter().enumerate() {
            if i == j {
                continue;
            }
            if order::strictly_less_chunked_counted(&y.hi, &x.hi, ops) {
                qualifies = false;
                break;
            }
        }
        if qualifies {
            removable.push(i);
        }
    }
    removable
}

/// Eq. (9) with hindsight: given each member's successor's low bound (where
/// known), remove `x_i` iff `∀ j≠i: min(succ(x_j)) ≮ max(x_i)`. A member
/// whose successor is not yet known (`None`) conservatively counts as "its
/// successor might overlap anything" only if treat_unknown_as_blocking is
/// the caller's policy; here an unknown successor **blocks** removal of all
/// other members, matching the information available on-line.
pub fn exact_removals(
    solution: &[&Interval],
    successor_lows: &[Option<&VectorClock>],
    ops: &OpCounter,
) -> Vec<usize> {
    assert_eq!(solution.len(), successor_lows.len());
    let mut removable = Vec::new();
    for (i, x) in solution.iter().enumerate() {
        let mut qualifies = true;
        for (j, _) in solution.iter().enumerate() {
            if i == j {
                continue;
            }
            match successor_lows[j] {
                Some(succ_lo) => {
                    // min(succ(x_j)) < max(x_i) means x_i could still pair
                    // with x_j's successor — keep it.
                    if order::strictly_less_counted(succ_lo, &x.hi, ops) {
                        qualifies = false;
                        break;
                    }
                }
                None => {
                    // Successor unknown: it could still overlap x_i.
                    qualifies = false;
                    break;
                }
            }
        }
        if qualifies {
            removable.push(i);
        }
    }
    removable
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::ProcessId;

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    #[test]
    fn at_least_one_removal_from_any_solution() {
        // Heads with mutually concurrent max cuts: all qualify.
        let a = iv(0, 0, &[1, 0], &[5, 2]);
        let b = iv(1, 0, &[0, 1], &[2, 5]);
        let ops = OpCounter::new();
        let rm = approximate_removals(&[&a, &b], &ops);
        assert_eq!(rm, vec![0, 1], "concurrent maxes: both removable");
    }

    #[test]
    fn dominated_max_is_kept() {
        // max(a) < max(b): a's queue may hold a successor that pairs with b,
        // so b must be kept; a is removable.
        let a = iv(0, 0, &[1, 0], &[2, 1]);
        let b = iv(1, 0, &[1, 1], &[3, 4]);
        let ops = OpCounter::new();
        let rm = approximate_removals(&[&a, &b], &ops);
        assert_eq!(rm, vec![0], "only the <-minimal max is removed");
    }

    #[test]
    fn singleton_solution_always_removable() {
        let a = iv(0, 0, &[1], &[2]);
        let ops = OpCounter::new();
        assert_eq!(approximate_removals(&[&a], &ops), vec![0]);
    }

    #[test]
    fn exact_rule_with_known_successors_can_remove_more() {
        // max(a) < max(b), so Eq. (10) keeps b. But if a's successor starts
        // causally after b ends, Eq. (9) also removes b.
        let a = iv(0, 0, &[1, 0], &[2, 1]);
        let b = iv(1, 0, &[1, 1], &[3, 4]);
        let succ_a_lo = VectorClock::from_components(vec![5, 6]);
        let ops = OpCounter::new();
        let rm = exact_removals(&[&a, &b], &[Some(&succ_a_lo), None], &ops);
        // b removable: succ(a) does not start before b's end... check:
        // min(succ(a)) = [5,6] ≮ max(b) = [3,4]  → b qualifies.
        // a not removable: succ(b) unknown.
        assert_eq!(rm, vec![1]);
    }

    #[test]
    fn exact_rule_unknown_successors_block_everything() {
        let a = iv(0, 0, &[1, 0], &[5, 2]);
        let b = iv(1, 0, &[0, 1], &[2, 5]);
        let ops = OpCounter::new();
        let rm = exact_removals(&[&a, &b], &[None, None], &ops);
        assert!(rm.is_empty());
    }

    /// The summary-gated prune must make *identical* removal decisions to
    /// the pairwise rule — below, at, and above the gate threshold —
    /// across pseudo-random solution sets.
    #[test]
    fn aggregate_removals_equal_pairwise_removals() {
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let k = 1 + (rng() % 14) as usize; // spans the gate threshold
            let n = 1 + (rng() % 20) as usize;
            let members: Vec<Interval> = (0..k)
                .map(|p| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 5) as u32).collect();
                    iv(p as u32, 0, &lo, &hi)
                })
                .collect();
            let refs: Vec<&Interval> = members.iter().collect();
            let ops = OpCounter::new();
            assert_eq!(
                approximate_removals_aggregate(&refs, &ops),
                approximate_removals(&refs, &ops),
                "divergence in round {round} (k = {k}, n = {n})"
            );
        }
    }

    #[test]
    fn aggregate_removals_gate_engages_on_wide_solutions() {
        // k = n members with mutually concurrent maxes: every member owns
        // the strictly-smallest max at every component except its own, so
        // the gate certifies all of them without pairwise work.
        let k = PRUNE_GATE_MIN_MEMBERS + 3;
        let members: Vec<Interval> = (0..k)
            .map(|p| {
                let mut lo = vec![0u32; k];
                let mut hi = vec![1u32; k];
                lo[p] = 1;
                hi[p] = 9;
                iv(p as u32, 0, &lo, &hi)
            })
            .collect();
        let refs: Vec<&Interval> = members.iter().collect();
        let ops = OpCounter::new();
        let rm = approximate_removals_aggregate(&refs, &ops);
        assert_eq!(
            rm,
            (0..k).collect::<Vec<_>>(),
            "all concurrent: all removable"
        );
        // Each member is certified by one ⌈k/8⌉-word scan; the pairwise
        // rule would have billed k−1 comparisons per member instead.
        let pair_ops = OpCounter::new();
        approximate_removals(&refs, &pair_ops);
        assert!(
            ops.get() < pair_ops.get(),
            "gated prune ({}) must beat pairwise ({}) at k = {k}",
            ops.get(),
            pair_ops.get()
        );
    }

    /// Theorem 3 (safety), spot check: every Eq. (10) removal also satisfies
    /// Eq. (9) whenever successors are known and consistent with Theorem 2
    /// (max(x) < min(succ(x))).
    #[test]
    fn approximate_subset_of_exact() {
        let a = iv(0, 0, &[2, 1], &[4, 2]);
        let b = iv(1, 0, &[1, 2], &[2, 4]);
        let succ_a_lo = VectorClock::from_components(vec![5, 3]);
        let succ_b_lo = VectorClock::from_components(vec![3, 5]);
        let ops = OpCounter::new();
        let approx = approximate_removals(&[&a, &b], &ops);
        let exact = exact_removals(&[&a, &b], &[Some(&succ_a_lo), Some(&succ_b_lo)], &ops);
        for idx in &approx {
            assert!(exact.contains(idx), "Eq.10 removal {idx} must satisfy Eq.9");
        }
    }
}
