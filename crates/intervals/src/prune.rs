//! Repeated-detection prune rules (Eqs. (9) and (10), Theorems 3–4).
//!
//! After a solution set `X = {x_0 .. x_l}` is detected, at least one head
//! must be removed from its queue or the detector would report the same
//! solution forever. The *exact* rule (Eq. (9)) removes `x_i` iff no other
//! member's successor can still overlap it:
//!
//! ```text
//! remove x_i  iff  ∀ x_j ∈ X (j ≠ i): min(succ(x_j)) ≮ max(x_i)
//! ```
//!
//! but `min(succ(x_j))` is unknown until the successor arrives. The paper
//! therefore prunes with the on-line approximation (Eq. (10)):
//!
//! ```text
//! remove x_i  iff  ∀ x_j ∈ X (j ≠ i): max(x_j) ≮ max(x_i)
//! ```
//!
//! which is **safe** (Theorem 3: `max(x_j) < min(succ(x_j))`, so Eq. (10)
//! implies Eq. (9)) and **live** (Theorem 4: the heads' `max` cuts cannot
//! form a `<`-cycle, so at least one head always qualifies).

use crate::interval::Interval;
use ftscp_vclock::{order, OpCounter, VectorClock};
use serde::{Deserialize, Serialize};

/// Which prune rule a detector uses after each solution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PruneRule {
    /// Eq. (10): `∀ j≠i: max(x_j) ≮ max(x_i)`. The paper's on-line rule.
    #[default]
    Approximate,
    /// Eq. (9) evaluated with hindsight: requires successor knowledge, so it
    /// is only usable by the offline/ablation detectors in
    /// [`crate::offline`].
    ExactWithHindsight,
}

/// Indices (into `solution`) of the heads Eq. (10) removes.
///
/// Guaranteed non-empty for any non-empty solution set (Theorem 4); every
/// returned index is safe to remove (Theorem 3).
pub fn approximate_removals(solution: &[&Interval], ops: &OpCounter) -> Vec<usize> {
    let mut removable = Vec::new();
    for (i, x) in solution.iter().enumerate() {
        let mut qualifies = true;
        for (j, y) in solution.iter().enumerate() {
            if i == j {
                continue;
            }
            // max(x_j) < max(x_i) disqualifies x_i.
            if order::strictly_less_counted(&y.hi, &x.hi, ops) {
                qualifies = false;
                break;
            }
        }
        if qualifies {
            removable.push(i);
        }
    }
    removable
}

/// Solution sizes below this skip the `⊓`-summary gate inside
/// [`approximate_removals_aggregate`]: with `k` members the gate costs
/// `⌈n/8⌉` words per member while the chunked pairwise row typically
/// resolves a disqualification within a word or two (max-cuts of a
/// solution are mostly concurrent, and concurrency exits early), so the
/// gate only earns its keep on wide banks — above all the centralized
/// sink, where `k = n`.
pub const PRUNE_GATE_MIN_MEMBERS: usize = 9;

/// [`approximate_removals`] evaluated against a `⊓`-summary with a
/// pairwise fallback — **identical removal decisions**, different cost.
///
/// Per component the two smallest `max(x_j)` values (and their owners) are
/// aggregated once — merge work, unbilled exactly like interval
/// aggregation. A member `x_i` is then *certified removable* by one
/// chunked scan if some component of `max(x_i)` lies strictly below every
/// other member's max (`∃c: max(x_i)[c] < min_{j≠i} max(x_j)[c]` ⇒ no
/// `max(x_j)` can be component-wise `≤ max(x_i)`, so Eq. (10) keeps `i`
/// qualified against every `j`). Members the gate cannot certify fall back
/// to the exact pairwise row, run through the word-chunked comparator.
/// Small solutions (`k <` [`PRUNE_GATE_MIN_MEMBERS`]) go straight to the
/// fallback, where the pairwise row is strictly cheaper.
pub fn approximate_removals_aggregate(solution: &[&Interval], ops: &OpCounter) -> Vec<usize> {
    approximate_removals_aggregate_par(solution, ops, 1)
}

/// The per-component two-smallest-max aggregation backing the prune gate,
/// over one column range: `min1[c]` is the smallest `max(x_j)[c]` with its
/// owner in `min1_owner[c]`, `min2[c]` the second smallest (duplicates of
/// the minimum land in `min2`, owned by a later member — exactly the
/// sequential tie rule, since each column folds members in `j` order).
/// Outputs are indexed relative to `cols.start`.
fn two_smallest_maxes(
    solution: &[&Interval],
    cols: std::ops::Range<usize>,
) -> (Vec<u32>, Vec<usize>, Vec<u32>) {
    let w = cols.len();
    let mut min1 = vec![u32::MAX; w];
    let mut min1_owner = vec![usize::MAX; w];
    let mut min2 = vec![u32::MAX; w];
    for (j, y) in solution.iter().enumerate() {
        let hi = &y.hi.components()[cols.clone()];
        for c in 0..w {
            let v = hi[c];
            if v < min1[c] {
                min2[c] = min1[c];
                min1[c] = v;
                min1_owner[c] = j;
            } else if v < min2[c] {
                min2[c] = v;
            }
        }
    }
    (min1, min1_owner, min2)
}

/// One member's Eq. (10) evaluation: the billed certified scan against the
/// two-smallest aggregation (when gating), then the chunked pairwise
/// fallback. Fully self-contained — it reads only the solution slice and
/// the shared aggregation, bills a deterministic amount for member `i`
/// regardless of which thread runs it, and never observes another member's
/// outcome — which is what licenses sharding members across workers.
fn member_qualifies_aggregate(
    i: usize,
    solution: &[&Interval],
    gate: Option<(&[u32], &[usize], &[u32])>,
    ops: &OpCounter,
) -> bool {
    use ftscp_vclock::order::CHUNK_WIDTH;

    let x = solution[i];
    if let Some((min1, min1_owner, min2)) = gate {
        let width = min1.len();
        let hi = x.hi.components();
        let mut words = 0u64;
        let mut certified = false;
        let mut c = 0;
        while c < width && !certified {
            words += 1;
            let end = (c + CHUNK_WIDTH).min(width);
            while c < end {
                let excl = if min1_owner[c] == i { min2[c] } else { min1[c] };
                certified |= hi[c] < excl;
                c += 1;
            }
        }
        ops.add(words);
        if certified {
            return true;
        }
    }
    for (j, y) in solution.iter().enumerate() {
        if i == j {
            continue;
        }
        if order::strictly_less_chunked_counted(&y.hi, &x.hi, ops) {
            return false;
        }
    }
    true
}

/// [`approximate_removals_aggregate`] with the members sharded across up
/// to `threads` scoped workers — **identical removal decisions and billed
/// totals**; `threads: 1` (or a solution below the spawn-amortizing region
/// bound) *is* the sequential aggregate prune.
///
/// The unbilled aggregation pass is column-sharded (each column's fold
/// stays on one worker in member order, keeping the sequential tie rule);
/// the billed per-member loop is member-sharded via the atomic-cursor
/// partition runner, with qualifying indices assembled in member order, so
/// the returned vector — and hence which heads the bank pops — cannot
/// depend on scheduling. Workers bill the shared counter directly: each
/// member adds the same amount the sequential loop would, in some
/// interleaving, and counter totals are order-independent sums.
pub fn approximate_removals_aggregate_par(
    solution: &[&Interval],
    ops: &OpCounter,
    threads: usize,
) -> Vec<usize> {
    let k = solution.len();
    if k == 0 {
        return Vec::new();
    }
    let width = solution[0].hi.len();
    let threads = if k * width >= crate::par::PAR_MIN_REGION {
        threads.max(1)
    } else {
        1
    };
    let use_gate = k >= PRUNE_GATE_MIN_MEMBERS;
    let (mut min1, mut min1_owner, mut min2) = (Vec::new(), Vec::new(), Vec::new());
    if use_gate {
        if threads == 1 {
            (min1, min1_owner, min2) = two_smallest_maxes(solution, 0..width);
        } else {
            let parts = crate::par::run_partitioned(width, threads, threads, |cols| {
                two_smallest_maxes(solution, cols)
            });
            for (p1, po, p2) in parts {
                min1.extend(p1);
                min1_owner.extend(po);
                min2.extend(p2);
            }
        }
    }
    let gate = use_gate.then_some((min1.as_slice(), min1_owner.as_slice(), min2.as_slice()));
    if threads == 1 {
        return (0..k)
            .filter(|&i| member_qualifies_aggregate(i, solution, gate, ops))
            .collect();
    }
    let marks = crate::par::run_partitioned(k, threads * 4, threads, |members| {
        members
            .filter(|&i| member_qualifies_aggregate(i, solution, gate, ops))
            .collect::<Vec<usize>>()
    });
    marks.concat()
}

/// Eq. (9) with hindsight: given each member's successor's low bound (where
/// known), remove `x_i` iff `∀ j≠i: min(succ(x_j)) ≮ max(x_i)`. A member
/// whose successor is not yet known (`None`) conservatively counts as "its
/// successor might overlap anything" only if treat_unknown_as_blocking is
/// the caller's policy; here an unknown successor **blocks** removal of all
/// other members, matching the information available on-line.
pub fn exact_removals(
    solution: &[&Interval],
    successor_lows: &[Option<&VectorClock>],
    ops: &OpCounter,
) -> Vec<usize> {
    assert_eq!(solution.len(), successor_lows.len());
    let mut removable = Vec::new();
    for (i, x) in solution.iter().enumerate() {
        let mut qualifies = true;
        for (j, _) in solution.iter().enumerate() {
            if i == j {
                continue;
            }
            match successor_lows[j] {
                Some(succ_lo) => {
                    // min(succ(x_j)) < max(x_i) means x_i could still pair
                    // with x_j's successor — keep it.
                    if order::strictly_less_counted(succ_lo, &x.hi, ops) {
                        qualifies = false;
                        break;
                    }
                }
                None => {
                    // Successor unknown: it could still overlap x_i.
                    qualifies = false;
                    break;
                }
            }
        }
        if qualifies {
            removable.push(i);
        }
    }
    removable
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::ProcessId;

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    #[test]
    fn at_least_one_removal_from_any_solution() {
        // Heads with mutually concurrent max cuts: all qualify.
        let a = iv(0, 0, &[1, 0], &[5, 2]);
        let b = iv(1, 0, &[0, 1], &[2, 5]);
        let ops = OpCounter::new();
        let rm = approximate_removals(&[&a, &b], &ops);
        assert_eq!(rm, vec![0, 1], "concurrent maxes: both removable");
    }

    #[test]
    fn dominated_max_is_kept() {
        // max(a) < max(b): a's queue may hold a successor that pairs with b,
        // so b must be kept; a is removable.
        let a = iv(0, 0, &[1, 0], &[2, 1]);
        let b = iv(1, 0, &[1, 1], &[3, 4]);
        let ops = OpCounter::new();
        let rm = approximate_removals(&[&a, &b], &ops);
        assert_eq!(rm, vec![0], "only the <-minimal max is removed");
    }

    #[test]
    fn singleton_solution_always_removable() {
        let a = iv(0, 0, &[1], &[2]);
        let ops = OpCounter::new();
        assert_eq!(approximate_removals(&[&a], &ops), vec![0]);
    }

    #[test]
    fn exact_rule_with_known_successors_can_remove_more() {
        // max(a) < max(b), so Eq. (10) keeps b. But if a's successor starts
        // causally after b ends, Eq. (9) also removes b.
        let a = iv(0, 0, &[1, 0], &[2, 1]);
        let b = iv(1, 0, &[1, 1], &[3, 4]);
        let succ_a_lo = VectorClock::from_components(vec![5, 6]);
        let ops = OpCounter::new();
        let rm = exact_removals(&[&a, &b], &[Some(&succ_a_lo), None], &ops);
        // b removable: succ(a) does not start before b's end... check:
        // min(succ(a)) = [5,6] ≮ max(b) = [3,4]  → b qualifies.
        // a not removable: succ(b) unknown.
        assert_eq!(rm, vec![1]);
    }

    #[test]
    fn exact_rule_unknown_successors_block_everything() {
        let a = iv(0, 0, &[1, 0], &[5, 2]);
        let b = iv(1, 0, &[0, 1], &[2, 5]);
        let ops = OpCounter::new();
        let rm = exact_removals(&[&a, &b], &[None, None], &ops);
        assert!(rm.is_empty());
    }

    /// The summary-gated prune must make *identical* removal decisions to
    /// the pairwise rule — below, at, and above the gate threshold —
    /// across pseudo-random solution sets.
    #[test]
    fn aggregate_removals_equal_pairwise_removals() {
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let k = 1 + (rng() % 14) as usize; // spans the gate threshold
            let n = 1 + (rng() % 20) as usize;
            let members: Vec<Interval> = (0..k)
                .map(|p| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 5) as u32).collect();
                    iv(p as u32, 0, &lo, &hi)
                })
                .collect();
            let refs: Vec<&Interval> = members.iter().collect();
            let ops = OpCounter::new();
            assert_eq!(
                approximate_removals_aggregate(&refs, &ops),
                approximate_removals(&refs, &ops),
                "divergence in round {round} (k = {k}, n = {n})"
            );
        }
    }

    #[test]
    fn parallel_removals_equal_sequential_above_and_below_threshold() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Below the region bound (forced sequential) on random sets …
        for round in 0..100 {
            let k = 1 + (rng() % 14) as usize;
            let n = 1 + (rng() % 20) as usize;
            let members: Vec<Interval> = (0..k)
                .map(|p| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 5) as u32).collect();
                    iv(p as u32, 0, &lo, &hi)
                })
                .collect();
            let refs: Vec<&Interval> = members.iter().collect();
            let (ops_seq, ops_par) = (OpCounter::new(), OpCounter::new());
            assert_eq!(
                approximate_removals_aggregate(&refs, &ops_seq),
                approximate_removals_aggregate_par(&refs, &ops_par, 4),
                "removals diverged in round {round}"
            );
            assert_eq!(
                ops_seq.get(),
                ops_par.get(),
                "billing diverged in round {round}"
            );
        }
        // … and above it (k·width = 160_000), where the members and the
        // aggregation columns genuinely shard across workers.
        let k = 400usize;
        let members: Vec<Interval> = (0..k)
            .map(|p| {
                let lo: Vec<u32> = (0..k)
                    .map(|c| (rng() % 5) as u32 + u32::from(c == p))
                    .collect();
                let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 9) as u32).collect();
                iv(p as u32, 0, &lo, &hi)
            })
            .collect();
        let refs: Vec<&Interval> = members.iter().collect();
        let ops_seq = OpCounter::new();
        let seq = approximate_removals_aggregate(&refs, &ops_seq);
        for threads in [2usize, 3, 8] {
            let ops_t = OpCounter::new();
            assert_eq!(
                seq,
                approximate_removals_aggregate_par(&refs, &ops_t, threads),
                "removals diverged at {threads} threads"
            );
            assert_eq!(
                ops_seq.get(),
                ops_t.get(),
                "billing diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn aggregate_removals_gate_engages_on_wide_solutions() {
        // k = n members with mutually concurrent maxes: every member owns
        // the strictly-smallest max at every component except its own, so
        // the gate certifies all of them without pairwise work.
        let k = PRUNE_GATE_MIN_MEMBERS + 3;
        let members: Vec<Interval> = (0..k)
            .map(|p| {
                let mut lo = vec![0u32; k];
                let mut hi = vec![1u32; k];
                lo[p] = 1;
                hi[p] = 9;
                iv(p as u32, 0, &lo, &hi)
            })
            .collect();
        let refs: Vec<&Interval> = members.iter().collect();
        let ops = OpCounter::new();
        let rm = approximate_removals_aggregate(&refs, &ops);
        assert_eq!(
            rm,
            (0..k).collect::<Vec<_>>(),
            "all concurrent: all removable"
        );
        // Each member is certified by one ⌈k/8⌉-word scan; the pairwise
        // rule would have billed k−1 comparisons per member instead.
        let pair_ops = OpCounter::new();
        approximate_removals(&refs, &pair_ops);
        assert!(
            ops.get() < pair_ops.get(),
            "gated prune ({}) must beat pairwise ({}) at k = {k}",
            ops.get(),
            pair_ops.get()
        );
    }

    /// Theorem 3 (safety), spot check: every Eq. (10) removal also satisfies
    /// Eq. (9) whenever successors are known and consistent with Theorem 2
    /// (max(x) < min(succ(x))).
    #[test]
    fn approximate_subset_of_exact() {
        let a = iv(0, 0, &[2, 1], &[4, 2]);
        let b = iv(1, 0, &[1, 2], &[2, 4]);
        let succ_a_lo = VectorClock::from_components(vec![5, 3]);
        let succ_b_lo = VectorClock::from_components(vec![3, 5]);
        let ops = OpCounter::new();
        let approx = approximate_removals(&[&a, &b], &ops);
        let exact = exact_removals(&[&a, &b], &[Some(&succ_a_lo), Some(&succ_b_lo)], &ops);
        for idx in &approx {
            assert!(exact.contains(idx), "Eq.10 removal {idx} must satisfy Eq.9");
        }
    }
}
