//! # ftscp-intervals — intervals, overlap, aggregation, repeated detection
//!
//! This crate implements the theoretical machinery of the paper:
//!
//! * [`Interval`] — a span of a process's execution in which its local
//!   predicate holds, identified by the vector timestamps of its first and
//!   last events (`min(x)` / `max(x)`, here [`Interval::lo`] /
//!   [`Interval::hi`]). Aggregated intervals (whose bounds are *cuts*, not
//!   events) use the same type.
//! * [`overlap()`](overlap::overlap) — the pairwise condition
//!   `min(x) < max(y) ∧ min(y) < max(x)` whose closure over a set `X` is
//!   exactly `Definitely(Φ)` restricted to the processes covered by `X`
//!   (Eq. (2) of the paper, after Garg–Waldecker).
//! * [`aggregate()`](aggregate::aggregate) — the aggregation function `⊓` of Eqs. (5)/(6):
//!   component-wise max of lows, component-wise min of highs. Theorem 1 /
//!   Lemma 1 (machine-checkable via [`theorems`]) justify substituting
//!   `⊓(X)` for the whole set `X` one level up the hierarchy.
//! * [`QueueBank`] — the queue-based repeated-detection engine shared by
//!   every node of the hierarchical algorithm *and* by the centralized
//!   baseline: Algorithm 1's lines (1)–(17) (pairwise pruning to a mutually
//!   overlapping set of queue heads), lines (18)–(22) (solution emission),
//!   and lines (23)–(33) (the Eq. (10) prune that makes detection
//!   *repeated*).
//! * [`prune`] — the prune rules as pure functions: the implementable
//!   approximation Eq. (10) and the exact-with-hindsight rule Eq. (9), used
//!   by the ablation benchmarks.
//!
//! Everything is instrumented with [`ftscp_vclock::OpCounter`] so the
//! benchmark harness can reproduce the paper's `O(n)`-per-comparison time
//! accounting (§IV-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bank;
pub mod codec;
pub mod interval;
pub mod offline;
pub mod overlap;
pub mod par;
pub mod prune;
pub mod solution;
pub mod summary;
pub mod theorems;

pub use aggregate::{aggregate, aggregate_checked, AggregateError};
pub use bank::{
    render_trace, BankEvent, BankSnapshot, BankStats, QueueBank, SlotId, SlotSnapshot, SweepMode,
    TraceId,
};
pub use interval::{Interval, IntervalKind, IntervalRef};
pub use overlap::{definitely_holds, definitely_holds_fast, overlap, possibly_holds};
pub use prune::PruneRule;
pub use solution::Solution;
pub use summary::SweepSummary;
