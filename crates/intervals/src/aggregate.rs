//! The aggregation function `⊓` (Eqs. (5)/(6), Theorem 1).

use crate::interval::{Interval, IntervalKind};
use crate::overlap::definitely_holds;
use ftscp_vclock::{ProcessId, VectorClock};
use std::fmt;

/// Error from [`aggregate_checked`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggregateError {
    /// `⊓` of the empty set is undefined.
    EmptySet,
    /// The set does not satisfy `overlap(X)`, so `⊓(X)` would not be a
    /// faithful representative (Theorem 1's precondition).
    NotOverlapping,
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::EmptySet => write!(f, "cannot aggregate an empty interval set"),
            AggregateError::NotOverlapping => {
                write!(f, "interval set does not satisfy overlap(X)")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// `⊓(X)`: component-wise **max** of the low bounds (Eq. (5)) and
/// component-wise **min** of the high bounds (Eq. (6)).
///
/// The resulting bounds are *cuts* of the execution, not event timestamps.
/// `source`/`seq` identify the aggregating node and its solution counter;
/// `level` records the hierarchy level for diagnostics. Coverage is the
/// sorted union of the members' coverages.
///
/// # Panics
///
/// Panics if `set` is empty. Use [`aggregate_checked`] to also enforce the
/// `overlap(X)` precondition of Theorem 1.
pub fn aggregate(set: &[Interval], source: ProcessId, seq: u64, level: u32) -> Interval {
    assert!(!set.is_empty(), "cannot aggregate an empty interval set");
    let lo = VectorClock::join_all(set.iter().map(|x| &x.lo));
    let hi = VectorClock::meet_all(set.iter().map(|x| &x.hi));
    let mut coverage: Vec<_> = set
        .iter()
        .flat_map(|x| x.coverage.iter().copied())
        .collect();
    coverage.sort_unstable();
    coverage.dedup();
    Interval {
        source,
        seq,
        lo,
        hi,
        kind: IntervalKind::Aggregated { level },
        coverage,
    }
}

/// [`aggregate`] with the Theorem 1 precondition enforced: the set must be
/// non-empty and satisfy `overlap(X)`.
pub fn aggregate_checked(
    set: &[Interval],
    source: ProcessId,
    seq: u64,
    level: u32,
) -> Result<Interval, AggregateError> {
    if set.is_empty() {
        return Err(AggregateError::EmptySet);
    }
    if !definitely_holds(set) {
        return Err(AggregateError::NotOverlapping);
    }
    Ok(aggregate(set, source, seq, level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::overlap;

    fn vc(c: &[u32]) -> VectorClock {
        VectorClock::from_components(c.to_vec())
    }

    fn iv(p: u32, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(ProcessId(p), 0, vc(lo), vc(hi))
    }

    /// The worked example of the paper's Figure 3: four processes, sets
    /// X = {x1 (P1), x2 (P3)} and Y = {y1 (P2), y2 (P4)} with overlap(X)
    /// and overlap(Y), where Definitely(Φ) holds for the union.
    ///
    /// The published figure is an image; the timestamps below are a faithful
    /// reconstruction with the same structure (1-indexed processes in the
    /// paper map to components 0..3 here).
    fn figure3_sets() -> (Vec<Interval>, Vec<Interval>) {
        // X: x1 at P1, x2 at P3.
        let x1 = iv(0, &[2, 1, 0, 0], &[4, 2, 3, 2]);
        let x2 = iv(2, &[1, 1, 2, 0], &[3, 2, 4, 2]);
        // Y: y1 at P2, y2 at P4.
        let y1 = iv(1, &[1, 2, 0, 0], &[3, 4, 3, 2]);
        let y2 = iv(3, &[1, 1, 1, 2], &[3, 2, 3, 4]);
        (vec![x1, x2], vec![y1, y2])
    }

    #[test]
    fn figure3_sets_overlap_individually() {
        let (x, y) = figure3_sets();
        assert!(definitely_holds(&x), "overlap(X) per the paper");
        assert!(definitely_holds(&y), "overlap(Y) per the paper");
    }

    #[test]
    fn aggregation_bounds_are_componentwise_extrema() {
        let (x, _) = figure3_sets();
        let agg = aggregate(&x, ProcessId(0), 0, 2);
        // u = component-wise max of min(x1), min(x2)
        assert_eq!(agg.lo.components(), &[2, 1, 2, 0]);
        // v = component-wise min of max(x1), max(x2)
        assert_eq!(agg.hi.components(), &[3, 2, 3, 2]);
        assert!(agg.is_aggregated());
        assert!(agg.is_well_formed());
    }

    /// Theorem 1 on the Figure 3 data: overlap(⊓X, ⊓Y) together with
    /// overlap(X), overlap(Y) implies overlap(X ∪ Y).
    #[test]
    fn figure3_union_detected_via_aggregates() {
        let (x, y) = figure3_sets();
        let ax = aggregate(&x, ProcessId(0), 0, 2);
        let ay = aggregate(&y, ProcessId(1), 0, 2);
        assert!(overlap(&ax, &ay), "aggregates overlap");
        let mut union = x.clone();
        union.extend(y.clone());
        assert!(
            definitely_holds(&union),
            "so the union satisfies Definitely"
        );
    }

    /// Eq. (7): ⊓(⊓X, ⊓Y) = ⊓(X ∪ Y) (bounds-wise).
    #[test]
    fn aggregation_is_associative_over_union() {
        let (x, y) = figure3_sets();
        let ax = aggregate(&x, ProcessId(0), 0, 2);
        let ay = aggregate(&y, ProcessId(1), 0, 2);
        let nested = aggregate(&[ax, ay], ProcessId(0), 1, 3);
        let mut union = x;
        union.extend(y);
        let flat = aggregate(&union, ProcessId(0), 1, 3);
        assert_eq!(nested.lo, flat.lo);
        assert_eq!(nested.hi, flat.hi);
        assert_eq!(nested.coverage, flat.coverage);
    }

    #[test]
    fn coverage_union_is_sorted_and_deduped() {
        let (x, y) = figure3_sets();
        let mut union = x;
        union.extend(y);
        let agg = aggregate(&union, ProcessId(0), 0, 2);
        let procs: Vec<_> = agg.covered_processes().collect();
        assert_eq!(
            procs,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn checked_aggregation_rejects_bad_sets() {
        assert_eq!(
            aggregate_checked(&[], ProcessId(0), 0, 1),
            Err(AggregateError::EmptySet)
        );
        let a = iv(0, &[1, 0], &[2, 0]);
        let b = iv(1, &[3, 1], &[3, 2]); // entirely after a
        assert_eq!(
            aggregate_checked(&[a, b], ProcessId(0), 0, 1),
            Err(AggregateError::NotOverlapping)
        );
    }

    #[test]
    fn singleton_aggregation_is_identity_on_bounds() {
        let a = iv(0, &[1, 0], &[2, 0]);
        let agg = aggregate_checked(std::slice::from_ref(&a), ProcessId(0), 7, 1).unwrap();
        assert_eq!(agg.lo, a.lo);
        assert_eq!(agg.hi, a.hi);
        assert_eq!(agg.seq, 7);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(AggregateError::EmptySet.to_string().contains("empty"));
        assert!(AggregateError::NotOverlapping
            .to_string()
            .contains("overlap"));
    }
}
