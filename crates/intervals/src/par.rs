//! Scoped-thread partition runner for the parallel sweep.
//!
//! [`SweepMode::AggregateParallel`](crate::SweepMode::AggregateParallel)
//! shards three per-visit regions of the queue-bank sweep — summary
//! materialization, the pairwise fallback row, and the Eq. (10) prune
//! pre-gate — across worker threads. The crate forbids `unsafe`, so there
//! is no persistent pool borrowing per-visit state; instead each parallel
//! region opens a [`std::thread::scope`], the calling thread participates
//! as a worker, and an atomic cursor hands out index chunks exactly as in
//! `analysis::shard::run_sharded`. Results come back **in chunk order**,
//! so every merge the bank performs is a left-to-right fold over a
//! deterministic partition — the scheduling of workers can never reorder
//! an observable effect.
//!
//! Spawning a scope costs tens of microseconds, so callers only enter the
//! parallel path when a region's work exceeds a threshold; below it (and
//! whenever the resolved thread count is 1) the sequential `Aggregate`
//! code runs unchanged.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Minimum region size (`u32` components touched) before a parallel sweep
/// opens a thread scope. Scoped spawns cost tens of microseconds; below
/// this bound the sequential loop wins outright, so smaller regions —
/// every visit in a narrow bank — take the sequential path and the two
/// modes literally run the same code.
pub const PAR_MIN_REGION: usize = 1 << 16;

/// Environment variable consulted when a sweep requests `threads: 0`
/// (auto). Parsed once per process; a positive integer forces that worker
/// count, anything else falls through to `available_parallelism`.
pub const SWEEP_THREADS_ENV: &str = "FTSCP_SWEEP_THREADS";

fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(raw) = std::env::var(SWEEP_THREADS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Resolve a requested worker count: `0` means auto ([`SWEEP_THREADS_ENV`]
/// if set, else `available_parallelism`), anything else is taken as-is.
/// Always at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        auto_threads()
    } else {
        requested
    }
}

/// Split `0..len` into `chunks` near-equal contiguous ranges and map each
/// through `f` on up to `threads` workers (the caller included), returning
/// the per-chunk results **in chunk order**.
///
/// The partition is a pure function of `(len, chunks)` — worker scheduling
/// decides only *who* computes a chunk, never *which* chunk exists or
/// where its result lands. Callers merge the returned vector left to
/// right, which makes the merged outcome identical to a sequential scan
/// of `0..len` whenever the per-chunk computation is itself a function of
/// the chunk range (the bank's regions all are; see each call site's
/// determinism note).
///
/// `chunks` is clamped to `len` (no empty ranges) and `threads` to
/// `chunks` (no idle spawns). With one worker or one chunk the caller
/// just runs the chunks in order without opening a scope.
pub fn run_partitioned<T, F>(len: usize, chunks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let threads = threads.clamp(1, chunks);
    let bounds = |c: usize| -> Range<usize> {
        let per = len / chunks;
        let extra = len % chunks;
        // First `extra` chunks get `per + 1` items, the rest `per`.
        let lo = c * per + c.min(extra);
        let hi = lo + per + usize::from(c < extra);
        lo..hi
    };
    if threads == 1 {
        return (0..chunks).map(|c| f(bounds(c))).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let work = |cursor: &AtomicUsize, slots: &[Mutex<Option<T>>]| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            break;
        }
        let out = f(bounds(c));
        *slots[c].lock().expect("result slot poisoned") = Some(out);
    };
    thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(|| work(&cursor, &slots));
        }
        work(&cursor, &slots);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all chunks visited before scope exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_passes_explicit_counts_through() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1, "auto resolves to at least one");
    }

    #[test]
    fn partition_covers_range_in_order() {
        for len in [1usize, 2, 7, 16, 100] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = run_partitioned(len, chunks, 1, |r| r);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous in chunk order");
                    assert!(r.end > r.start, "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, len, "covers the whole range");
            }
        }
    }

    #[test]
    fn threaded_run_matches_sequential_fold() {
        let len = 1000usize;
        let seq: u64 = (0..len as u64).map(|i| i * i).sum();
        for threads in [1usize, 2, 4, 9] {
            let parts = run_partitioned(len, threads * 4, threads, |r| {
                r.map(|i| (i as u64) * (i as u64)).sum::<u64>()
            });
            assert_eq!(parts.iter().sum::<u64>(), seq);
        }
    }

    #[test]
    fn chunk_results_land_in_chunk_order_regardless_of_threads() {
        let ranges = run_partitioned(64, 16, 8, |r| r);
        let again = run_partitioned(64, 16, 1, |r| r);
        assert_eq!(ranges, again, "partition is scheduling-independent");
    }

    #[test]
    fn zero_len_yields_no_chunks() {
        let out = run_partitioned(0, 4, 4, |r| r);
        assert!(out.is_empty());
    }
}
