//! Offline (whole-trace) repeated detection, for oracles and ablations.
//!
//! [`OfflineDetector`] is fed *complete* per-queue interval sequences up
//! front and then runs the same sweep/solve/prune loop as [`crate::bank`].
//! Because the full future of every queue is known, it can evaluate the
//! exact prune rule Eq. (9) (successor lows are just the next element of the
//! queue), which an on-line detector cannot. This powers:
//!
//! * the **prune-rule ablation** (`PruneRule::Approximate` vs
//!   `PruneRule::ExactWithHindsight`): both rules are safe, so both find the
//!   same solutions, but the exact rule may discard more heads per solution
//!   — the ablation benchmark compares residency and comparison counts;
//! * a reference implementation the property tests compare the on-line
//!   [`crate::QueueBank`] against: same input ⇒ same solution sequence.

use crate::interval::Interval;
use crate::prune::{self, PruneRule};
use crate::solution::Solution;
use ftscp_vclock::{order, OpCounter, VectorClock};
use std::collections::BTreeSet;

/// Offline repeated detector over `k` fully-known interval sequences.
#[derive(Clone, Debug)]
pub struct OfflineDetector {
    /// Per queue: remaining intervals, front = head.
    queues: Vec<Vec<Interval>>,
    /// Per queue: cursor of the current head within the original sequence.
    cursors: Vec<usize>,
    rule: PruneRule,
    ops: OpCounter,
}

/// Result of an offline run.
#[derive(Clone, Debug, Default)]
pub struct OfflineOutcome {
    /// Solutions in detection order.
    pub solutions: Vec<Solution>,
    /// Heads discarded by the pairwise sweep.
    pub swept: u64,
    /// Heads discarded by the post-solution prune.
    pub pruned: u64,
    /// Vector-clock components inspected.
    pub comparisons: u64,
}

impl OfflineDetector {
    /// Builds a detector over the given complete sequences.
    pub fn new(sequences: Vec<Vec<Interval>>, rule: PruneRule) -> Self {
        let cursors = vec![0; sequences.len()];
        OfflineDetector {
            queues: sequences,
            cursors,
            rule,
            ops: OpCounter::new(),
        }
    }

    fn head(&self, q: usize) -> Option<&Interval> {
        self.queues[q].get(self.cursors[q])
    }

    /// Low bound of the successor of queue `q`'s head, if known.
    fn succ_lo(&self, q: usize) -> Option<&VectorClock> {
        self.queues[q].get(self.cursors[q] + 1).map(|iv| &iv.lo)
    }

    fn pop(&mut self, q: usize) {
        self.cursors[q] += 1;
    }

    /// Runs detection to exhaustion and reports every solution, exactly as
    /// an on-line detector would emit them.
    pub fn run(mut self) -> OfflineOutcome {
        let mut out = OfflineOutcome::default();
        let k = self.queues.len();
        if k == 0 {
            return out;
        }
        let mut solution_index = 0u64;
        let mut updated: BTreeSet<usize> = (0..k).collect();
        loop {
            // Pairwise sweep to fixpoint.
            while !updated.is_empty() {
                let mut new_updated = BTreeSet::new();
                for &a in &updated {
                    let Some(x) = self.head(a) else { continue };
                    for b in 0..k {
                        if b == a {
                            continue;
                        }
                        let Some(y) = self.head(b) else { continue };
                        if !order::strictly_less_counted(&x.lo, &y.hi, &self.ops) {
                            new_updated.insert(b);
                        }
                        if !order::strictly_less_counted(&y.lo, &x.hi, &self.ops) {
                            new_updated.insert(a);
                        }
                    }
                }
                for &c in &new_updated {
                    self.pop(c);
                    out.swept += 1;
                }
                updated = new_updated;
            }

            if !(0..k).all(|q| self.head(q).is_some()) {
                break;
            }
            let heads: Vec<Interval> = (0..k).map(|q| self.head(q).unwrap().clone()).collect();
            out.solutions.push(Solution {
                intervals: heads.clone(),
                index: solution_index,
            });
            solution_index += 1;

            let refs: Vec<&Interval> = heads.iter().collect();
            let removable = match self.rule {
                PruneRule::Approximate => prune::approximate_removals(&refs, &self.ops),
                PruneRule::ExactWithHindsight => {
                    let succ_lows: Vec<Option<&VectorClock>> =
                        (0..k).map(|q| self.succ_lo(q)).collect();
                    let mut exact = prune::exact_removals(&refs, &succ_lows, &self.ops);
                    if exact.is_empty() {
                        // Liveness fallback: the approximate rule always
                        // removes at least one head (Theorem 4).
                        exact = prune::approximate_removals(&refs, &self.ops);
                    } else {
                        // Exact ⊇ approximate when successors are known, but
                        // unknown successors can block; union in the
                        // guaranteed-safe approximate removals.
                        for idx in prune::approximate_removals(&refs, &self.ops) {
                            if !exact.contains(&idx) {
                                exact.push(idx);
                            }
                        }
                        exact.sort_unstable();
                    }
                    exact
                }
            };
            let mut pruned = BTreeSet::new();
            for r in removable {
                self.pop(r);
                out.pruned += 1;
                pruned.insert(r);
            }
            if pruned.is_empty() {
                break;
            }
            updated = pruned;
        }
        out.comparisons = self.ops.get();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::ProcessId;

    fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
        Interval::local(
            ProcessId(p),
            seq,
            VectorClock::from_components(lo.to_vec()),
            VectorClock::from_components(hi.to_vec()),
        )
    }

    /// Two queues, two solutions; both rules find both solutions.
    fn two_solution_input() -> Vec<Vec<Interval>> {
        vec![
            vec![iv(0, 0, &[1, 0], &[8, 7])],
            vec![iv(1, 0, &[2, 1], &[3, 2]), iv(1, 1, &[4, 3], &[5, 4])],
        ]
    }

    #[test]
    fn both_rules_find_the_same_solutions() {
        let a = OfflineDetector::new(two_solution_input(), PruneRule::Approximate).run();
        let e = OfflineDetector::new(two_solution_input(), PruneRule::ExactWithHindsight).run();
        assert_eq!(a.solutions.len(), 2);
        assert_eq!(e.solutions.len(), 2);
        for (sa, se) in a.solutions.iter().zip(&e.solutions) {
            assert_eq!(sa.coverage(), se.coverage());
        }
    }

    #[test]
    fn exact_rule_discards_at_least_as_many_per_solution() {
        let a = OfflineDetector::new(two_solution_input(), PruneRule::Approximate).run();
        let e = OfflineDetector::new(two_solution_input(), PruneRule::ExactWithHindsight).run();
        assert!(e.pruned >= a.pruned);
    }

    #[test]
    fn empty_input_is_quiet() {
        let out = OfflineDetector::new(vec![], PruneRule::Approximate).run();
        assert!(out.solutions.is_empty());
        let out = OfflineDetector::new(vec![vec![], vec![]], PruneRule::Approximate).run();
        assert!(out.solutions.is_empty());
    }

    #[test]
    fn sweep_discards_hopeless_heads() {
        // Queue 0's first interval precedes everything in queue 1.
        let input = vec![
            vec![iv(0, 0, &[1, 0], &[2, 0]), iv(0, 1, &[4, 2], &[6, 5])],
            vec![iv(1, 0, &[3, 1], &[5, 4])],
        ];
        let out = OfflineDetector::new(input, PruneRule::Approximate).run();
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.swept, 1, "the stale head was swept, not pruned");
        let cov = out.solutions[0].coverage();
        assert_eq!(cov[0].seq, 1, "second interval of queue 0 in the solution");
    }
}
