//! Running `⊓`-summaries of the live queue heads ([`SweepSummary`]).
//!
//! The pairwise sweep of Algorithm 1 tests, for a fresh head `x` of queue
//! `a`, both directions of the overlap condition against every other head
//! `y`: `min(x) < max(y)` and `min(y) < max(x)` — `O(k)` vector
//! comparisons per visit, `O(k²)` per round. Theorem 1 / Lemma 1 license
//! collapsing the "every other head" side into the aggregation function
//! `⊓` (Eq. (5)/(6)): the component-wise **join of the other lows** and
//! **meet of the other highs**. Writing `U = ⊔_{b≠a} min(head_b)` and
//! `V = ⊓_{b≠a} max(head_b)`:
//!
//! * `min(x) < V` (strict) implies `min(x) < max(y)` for **every** other
//!   `y` — component-wise `≤` transfers through the meet, and a strict
//!   witness component `c` against `V` is a strict witness against every
//!   `y` simultaneously (`min(x)[c] < V[c] ≤ max(y)[c]`);
//! * `U < max(x)` (strict) implies `min(y) < max(x)` for every other `y`,
//!   by the mirror argument through the join.
//!
//! Both tests together certify that `x` mutually overlaps all other heads
//! in `O(n)` instead of `O(k·n)` — and by symmetry that **no head is
//! deleted** by `x`'s sweep visit. When either test fails the sweep falls
//! back to the exact pairwise row, solely to identify *which* head(s) to
//! delete, so deletion decisions stay bit-identical to the pairwise sweep.
//!
//! ## Exclusion, epochs, and lazy materialization
//!
//! The summaries must exclude the visiting queue itself (`b ≠ a`), so
//! there is one `(U_a, V_a)` pair per slot. Materializing all of them
//! eagerly on every head change is wasted work twice over: a solution pops
//! all `k` heads at once (the summary would be rebuilt `k` times per
//! round), and a typical sweep round only visits the one or two queues
//! whose heads actually changed (the other `k − 2` rows would never be
//! read).
//!
//! The summary therefore invalidates in `O(1)` and materializes per slot
//! on demand. Head changes call [`touch`](SweepSummary::touch), which just
//! marks an epoch bump; the first [`certify`](SweepSummary::certify)
//! afterwards advances the epoch, and each slot's excluded pair is
//! recomputed — a branch-free component-wise meet/join over the `k − 1`
//! other heads' contiguous bound rows, the exact shape the autovectorizer
//! turns into packed SIMD min/max — only when that slot is gated within
//! the current epoch. A round that gates one fresh head against `k − 1`
//! unchanged peers pays for exactly one `O(k·n)` row, not `k` of them.
//!
//! The materialization is *maintenance*, billed like the `⊓`-aggregation
//! it is (i.e. not counted as overlap-comparison work); the gate's own
//! scans bill two units per [`CHUNK_WIDTH`]-component word, matching
//! [`compare_chunked_counted`](ftscp_vclock::order::compare_chunked_counted).

use ftscp_vclock::{order::CHUNK_WIDTH, OpCounter};

/// Current `(lo, hi)` component slices of every live queue head, indexed
/// by slot — the materialization input for [`SweepSummary::certify`].
pub type HeadBounds<'a> = [Option<(&'a [u32], &'a [u32])>];

/// The billed gate scan, shared by the sequential and parallel sweeps:
/// tests `lo < v` and `u < hi` (component-wise `≤` with a strict witness
/// each) over equal-width slices, billing `ops` two units per
/// [`CHUNK_WIDTH`]-component word inspected with early exit at word
/// granularity on the first violated `≤` direction.
///
/// Like the chunked comparator, the inner loop packs two adjacent `u32`
/// components per `u64` word: an equal packed pair leaves every flag
/// unchanged (`≤` holds without a strict witness), so one 64-bit equality
/// test retires both components; only differing pairs pay the per-half
/// order tests. Billing counts words traversed, not work done inside
/// them, so the packing cannot change any counter total.
fn certify_scan(lo: &[u32], hi: &[u32], v: &[u32], u: &[u32], ops: &OpCounter) -> bool {
    let width = lo.len();
    debug_assert!(hi.len() == width && v.len() == width && u.len() == width);
    // Direction 1: min(x) < V_excl  (component-wise ≤ + strict witness).
    // Direction 2: U_excl < max(x).
    let mut le1 = true;
    let mut lt1 = false;
    let mut le2 = true;
    let mut lt2 = false;
    let mut words = 0u64;
    let mut done = false;
    let pack = |a: u32, b: u32| u64::from(a) | (u64::from(b) << 32);
    for (((wl, wh), wv), wu) in lo
        .chunks_exact(CHUNK_WIDTH)
        .zip(hi.chunks_exact(CHUNK_WIDTH))
        .zip(v.chunks_exact(CHUNK_WIDTH))
        .zip(u.chunks_exact(CHUNK_WIDTH))
    {
        words += 1;
        for k in 0..CHUNK_WIDTH / 2 {
            let (l0, l1) = (wl[2 * k], wl[2 * k + 1]);
            let (v0, v1) = (wv[2 * k], wv[2 * k + 1]);
            if pack(l0, l1) != pack(v0, v1) {
                le1 &= l0 <= v0 && l1 <= v1;
                lt1 |= l0 < v0 || l1 < v1;
            }
            let (u0, u1) = (wu[2 * k], wu[2 * k + 1]);
            let (h0, h1) = (wh[2 * k], wh[2 * k + 1]);
            if pack(u0, u1) != pack(h0, h1) {
                le2 &= u0 <= h0 && u1 <= h1;
                lt2 |= u0 < h0 || u1 < h1;
            }
        }
        if !le1 || !le2 {
            done = true;
            break;
        }
    }
    // Any trailing partial word bills one unit like the full ones.
    let rem = width % CHUNK_WIDTH;
    if !done && rem != 0 {
        words += 1;
        let base = width - rem;
        for c in base..width {
            le1 &= lo[c] <= v[c];
            lt1 |= lo[c] < v[c];
            le2 &= u[c] <= hi[c];
            lt2 |= u[c] < hi[c];
        }
    }
    ops.add(2 * words);
    le1 && lt1 && le2 && lt2
}

/// Fills one column range of an excluded `⊓`-row: for each column `c` in
/// `cols`, the meet over the other heads' highs into `out_v` and the join
/// over their lows into `out_u` (`out_*[j]` holds column `cols.start + j`).
///
/// Column `c`'s result folds the same heads in the same slot order as the
/// sequential materialization — and `min`/`max` on `u32` are commutative
/// and associative besides — so a row assembled from any column partition
/// is bit-identical to the sequentially filled row.
fn fill_columns(
    slot: usize,
    heads: &HeadBounds<'_>,
    cols: std::ops::Range<usize>,
    out_v: &mut [u32],
    out_u: &mut [u32],
) {
    out_v.fill(u32::MAX);
    out_u.fill(0);
    for (b, head) in heads.iter().enumerate() {
        if b == slot {
            continue;
        }
        if let Some((lo, hi)) = head {
            let (lo, hi) = (&lo[cols.clone()], &hi[cols.clone()]);
            for j in 0..cols.len() {
                out_v[j] = out_v[j].min(hi[j]);
                out_u[j] = out_u[j].max(lo[j]);
            }
        }
    }
}

/// Per-slot excluded `⊓`-summary of a set of queue heads, invalidated in
/// `O(1)` and materialized lazily per gated slot.
///
/// Maintained by [`QueueBank`](crate::QueueBank) under
/// [`SweepMode::Aggregate`](crate::SweepMode::Aggregate); see the module
/// docs for the math.
#[derive(Clone, Debug)]
pub struct SweepSummary {
    /// Clock width (components per head bound).
    width: usize,
    /// Set by [`touch`](Self::touch); the next certify opens a new epoch.
    dirty: bool,
    /// Current head-configuration epoch. A slot's excluded row is valid
    /// iff `slot_epoch[slot] == epoch`.
    epoch: u64,
    /// Slots contributing a head as of the current epoch.
    present: Vec<bool>,
    /// Number of contributing slots as of the current epoch.
    count: usize,
    /// Epoch at which each slot's excluded row was last materialized.
    slot_epoch: Vec<u64>,
    /// Row-major `slots × width`: `V_s = ⊓_{b≠s} max(head_b)`.
    v_excl: Vec<u32>,
    /// Row-major `slots × width`: `U_s = ⊔_{b≠s} min(head_b)`.
    u_excl: Vec<u32>,
}

impl SweepSummary {
    /// An empty summary; starts dirty so the first certify synchronizes.
    pub fn new() -> Self {
        SweepSummary {
            width: 0,
            dirty: true,
            epoch: 0,
            present: Vec::new(),
            count: 0,
            slot_epoch: Vec::new(),
            v_excl: Vec::new(),
            u_excl: Vec::new(),
        }
    }

    /// Number of heads seen by the current epoch.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True iff the current epoch saw no heads.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Forgets everything (used when the sweep mode changes or state is
    /// restored); the next certify resynchronizes with the live heads.
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Marks the summary stale. Called after any head change — enqueue
    /// into an empty queue, head pop, queue removal — it costs one store;
    /// all recomputation is deferred to the next certify.
    pub fn touch(&mut self) {
        self.dirty = true;
    }

    /// Opens a new epoch against the live heads: refreshes the presence
    /// census and invalidates every materialized row (by epoch counter,
    /// not by writing them).
    fn sync(&mut self, heads: &HeadBounds<'_>) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.epoch += 1;
        self.present.clear();
        self.present.extend(heads.iter().map(Option::is_some));
        self.count = self.present.iter().filter(|&&p| p).count();
        self.width = heads
            .iter()
            .flatten()
            .map(|(lo, _)| lo.len())
            .next()
            .unwrap_or(0);
        let ns = heads.len();
        if self.slot_epoch.len() < ns {
            self.slot_epoch.resize(ns, 0);
        }
        if self.v_excl.len() < ns * self.width {
            self.v_excl.resize(ns * self.width, u32::MAX);
            self.u_excl.resize(ns * self.width, 0);
        }
    }

    /// Materializes slot `slot`'s excluded pair `(U, V)` for the current
    /// epoch if stale: component-wise meet of the other heads' highs and
    /// join of their lows, with the columns of the excluded
    /// row statically split across up to `threads` scoped workers (the
    /// caller included). Every column's fold is computed by exactly one
    /// worker via [`fill_columns`], writing a disjoint sub-slice of the
    /// row — no merge step exists, so the assembled row is bit-identical
    /// to the sequential fill by construction. Column work is uniform
    /// (`k − 1` min/max folds each), so the static equal split is already
    /// load-balanced; an atomic cursor would add synchronization for
    /// nothing here (the irregular regions use one — see `par`).
    fn materialize_par(&mut self, slot: usize, heads: &HeadBounds<'_>, threads: usize) {
        if self.slot_epoch[slot] == self.epoch {
            return;
        }
        self.slot_epoch[slot] = self.epoch;
        let width = self.width;
        let row_v = &mut self.v_excl[slot * width..(slot + 1) * width];
        let row_u = &mut self.u_excl[slot * width..(slot + 1) * width];
        let threads = threads.clamp(1, width.max(1));
        if threads == 1 {
            fill_columns(slot, heads, 0..width, row_v, row_u);
            return;
        }
        std::thread::scope(|scope| {
            let (mut rest_v, mut rest_u) = (row_v, row_u);
            let mut start = 0usize;
            let per = width / threads;
            let extra = width % threads;
            for t in 0..threads {
                let len = per + usize::from(t < extra);
                let (cv, rv) = rest_v.split_at_mut(len);
                let (cu, ru) = rest_u.split_at_mut(len);
                (rest_v, rest_u) = (rv, ru);
                let cols = start..start + len;
                start += len;
                if t + 1 == threads {
                    // The caller fills the last column block itself.
                    fill_columns(slot, heads, cols, cv, cu);
                } else {
                    scope.spawn(move || fill_columns(slot, heads, cols, cv, cu));
                }
            }
        });
    }

    /// The whole-set overlap gate: returns `true` iff the summary
    /// *certifies* that the head (`lo`, `hi`) of queue `slot` strictly
    /// overlaps every other live head in both directions — i.e. the
    /// pairwise sweep would delete nothing on this visit. `false` means
    /// "cannot certify": the caller must fall back to the pairwise row
    /// (which may or may not find a deletion; the rare ambiguous case is a
    /// non-strict tie against the aggregate).
    ///
    /// `heads[b]` must give the *current* `(lo, hi)` component slices of
    /// every live queue head, indexed by slot — consulted only when a
    /// preceding [`touch`](Self::touch) invalidated the epoch or `slot`
    /// has not been gated in the current epoch.
    ///
    /// Bills `ops` two units per [`CHUNK_WIDTH`]-component word inspected
    /// (one per direction of the overlap condition), matching the chunked
    /// comparator's accounting; early exit at word granularity on the
    /// first violated direction. Materialization is unbilled maintenance
    /// (see the module docs).
    pub fn certify(
        &mut self,
        slot: usize,
        lo: &[u32],
        hi: &[u32],
        heads: &HeadBounds<'_>,
        ops: &OpCounter,
    ) -> bool {
        self.certify_par(slot, lo, hi, heads, ops, 1)
    }

    /// [`certify`](Self::certify) with materialization of a stale excluded
    /// row split across up to `threads` scoped workers (see
    /// [`materialize_par`](Self::materialize_par)). The billed gate scan
    /// itself always runs on the calling thread — it is a word-granular
    /// early-exit loop whose billing depends on where it stops, so it must
    /// stay sequential to keep counter totals bit-identical. `threads: 1`
    /// is exactly the sequential gate.
    pub fn certify_par(
        &mut self,
        slot: usize,
        lo: &[u32],
        hi: &[u32],
        heads: &HeadBounds<'_>,
        ops: &OpCounter,
        threads: usize,
    ) -> bool {
        self.sync(heads);
        let others = self.count - usize::from(self.present.get(slot).copied().unwrap_or(false));
        if others == 0 {
            return true;
        }
        self.materialize_par(slot, heads, threads);
        let width = self.width;
        let v = &self.v_excl[slot * width..(slot + 1) * width];
        let u = &self.u_excl[slot * width..(slot + 1) * width];
        certify_scan(&lo[..width], &hi[..width], v, u, ops)
    }
}

impl Default for SweepSummary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heads_of<'a>(set: &'a [(usize, Vec<u32>, Vec<u32>)]) -> Vec<Option<(&'a [u32], &'a [u32])>> {
        let max_slot = set.iter().map(|(s, _, _)| *s).max().unwrap_or(0);
        let mut v: Vec<Option<(&[u32], &[u32])>> = vec![None; max_slot + 1];
        for (s, lo, hi) in set {
            v[*s] = Some((lo.as_slice(), hi.as_slice()));
        }
        v
    }

    fn certify_slot(
        sum: &mut SweepSummary,
        set: &[(usize, Vec<u32>, Vec<u32>)],
        slot: usize,
        ops: &OpCounter,
    ) -> bool {
        let heads = heads_of(set);
        let me = set.iter().find(|(s, _, _)| *s == slot).unwrap();
        sum.certify(slot, &me.1, &me.2, &heads, ops)
    }

    /// Reference implementation: does (lo, hi) at `slot` strictly overlap
    /// every other head in both directions?
    fn pairwise_all_overlap(set: &[(usize, Vec<u32>, Vec<u32>)], slot: usize) -> bool {
        let strictly_less = |a: &[u32], b: &[u32]| {
            a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
        };
        let me = set.iter().find(|(s, _, _)| *s == slot).unwrap();
        set.iter()
            .filter(|(s, _, _)| *s != slot)
            .all(|(_, lo, hi)| strictly_less(&me.1, hi) && strictly_less(lo, &me.2))
    }

    #[test]
    fn gate_certifies_mutually_overlapping_heads() {
        let set = vec![
            (0usize, vec![1, 0, 0], vec![9, 8, 8]),
            (1, vec![2, 1, 0], vec![8, 9, 8]),
            (2, vec![2, 1, 1], vec![8, 8, 9]),
        ];
        let mut sum = SweepSummary::new();
        let ops = OpCounter::new();
        for (s, _, _) in &set {
            assert!(certify_slot(&mut sum, &set, *s, &ops));
            assert!(pairwise_all_overlap(&set, *s));
        }
        assert!(ops.get() > 0, "gate bills its scans");
    }

    #[test]
    fn gate_rejects_a_non_overlapping_head() {
        // Head 1 entirely precedes head 0: both rows must fail the gate.
        let set = vec![
            (0usize, vec![5, 4], vec![8, 7]),
            (1, vec![1, 0], vec![2, 1]),
        ];
        let mut sum = SweepSummary::new();
        let ops = OpCounter::new();
        assert!(!certify_slot(&mut sum, &set, 0, &ops));
        assert!(!certify_slot(&mut sum, &set, 1, &ops));
    }

    #[test]
    fn gate_is_sound_never_certifying_a_pairwise_violation() {
        // Pseudo-random head sets: whenever the gate certifies, the exact
        // pairwise check must agree (the converse may not hold — the gate
        // is allowed to be conservative on ties).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let k = 2 + (rng() % 4) as usize;
            let n = 1 + (rng() % 12) as usize;
            let set: Vec<(usize, Vec<u32>, Vec<u32>)> = (0..k)
                .map(|s| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 6) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 6) as u32).collect();
                    (s, lo, hi)
                })
                .collect();
            let mut sum = SweepSummary::new();
            let ops = OpCounter::new();
            for (s, _, _) in &set {
                if certify_slot(&mut sum, &set, *s, &ops) {
                    assert!(
                        pairwise_all_overlap(&set, *s),
                        "gate certified a violating head: slot {s} in {set:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn touch_then_certify_matches_fresh_build() {
        let set = vec![
            (0usize, vec![1, 0, 0], vec![9, 8, 8]),
            (1, vec![2, 1, 0], vec![8, 9, 8]),
            (2, vec![0, 0, 2], vec![3, 3, 9]),
        ];
        let mut sum = SweepSummary::new();
        let ops = OpCounter::new();
        for (s, _, _) in &set {
            let _ = certify_slot(&mut sum, &set, *s, &ops);
        }
        // Drop slot 1, touch, and compare every gate verdict against a
        // summary built fresh from the remaining two heads.
        let remaining: Vec<_> = set.iter().filter(|(s, _, _)| *s != 1).cloned().collect();
        sum.touch();
        let mut fresh = SweepSummary::new();
        for (s, _, _) in &remaining {
            assert_eq!(
                certify_slot(&mut sum, &remaining, *s, &ops),
                certify_slot(&mut fresh, &remaining, *s, &ops),
                "epoch invalidation diverged from fresh build at slot {s}"
            );
        }
        assert_eq!(sum.len(), 2);
    }

    #[test]
    fn stale_epoch_is_never_reused_across_touch() {
        // Materialize slot 0's row, then shift the other head and touch:
        // the verdict must reflect the new configuration.
        let before = vec![
            (0usize, vec![1, 1], vec![9, 9]),
            (1, vec![2, 2], vec![8, 8]),
        ];
        let after = vec![
            (0usize, vec![1, 1], vec![9, 9]),
            // Slot 1 advanced past slot 0's high: no longer overlapping.
            (1, vec![10, 10], vec![12, 12]),
        ];
        let mut sum = SweepSummary::new();
        let ops = OpCounter::new();
        assert!(certify_slot(&mut sum, &before, 0, &ops));
        sum.touch();
        assert!(!certify_slot(&mut sum, &after, 0, &ops));
    }

    #[test]
    fn parallel_materialization_matches_sequential_bit_for_bit() {
        // Random head sets, width intentionally not a multiple of the
        // thread count or chunk width: every gate verdict and every billed
        // total must match the sequential gate exactly.
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let k = 2 + (rng() % 5) as usize;
            let n = 1 + (rng() % 37) as usize;
            let set: Vec<(usize, Vec<u32>, Vec<u32>)> = (0..k)
                .map(|s| {
                    let lo: Vec<u32> = (0..n).map(|_| (rng() % 7) as u32).collect();
                    let hi: Vec<u32> = lo.iter().map(|v| v + (rng() % 7) as u32).collect();
                    (s, lo, hi)
                })
                .collect();
            let heads = heads_of(&set);
            for threads in [2usize, 3, 8] {
                let mut seq = SweepSummary::new();
                let mut par = SweepSummary::new();
                let (ops_seq, ops_par) = (OpCounter::new(), OpCounter::new());
                for (s, lo, hi) in &set {
                    let a = seq.certify(*s, lo, hi, &heads, &ops_seq);
                    let b = par.certify_par(*s, lo, hi, &heads, &ops_par, threads);
                    assert_eq!(a, b, "verdict diverged: trial {trial}, slot {s}");
                }
                assert_eq!(
                    ops_seq.get(),
                    ops_par.get(),
                    "billing diverged: trial {trial}"
                );
                assert_eq!(seq.v_excl, par.v_excl, "V rows diverged: trial {trial}");
                assert_eq!(seq.u_excl, par.u_excl, "U rows diverged: trial {trial}");
            }
        }
    }

    #[test]
    fn single_head_always_certifies() {
        let set = vec![(0usize, vec![1, 2], vec![3, 4])];
        let mut sum = SweepSummary::new();
        let ops = OpCounter::new();
        assert!(certify_slot(&mut sum, &set, 0, &ops));
        assert_eq!(ops.get(), 0, "nothing to compare against");
    }
}
