//! Paired experiment runner: both algorithms, same workload, same network.

use ftscp_baselines::centralized::CentralizedDeployment;
use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::monitor::MonitorConfig;
use ftscp_simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_workload::RandomExecution;
use serde::{Deserialize, Serialize};

/// Parameters of one paired experiment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Tree degree.
    pub d: usize,
    /// Tree height (levels); the tree is the *full* `d`-ary tree with
    /// `n = (d^h - 1)/(d - 1)` nodes.
    pub h: u32,
    /// Rounds of the workload ≈ intervals per process.
    pub p: usize,
    /// Probability a process skips a round (lowers effective `α`).
    pub skip_prob: f64,
    /// Probability a process raises its predicate without communicating.
    pub solo_prob: f64,
    /// Seed for both workload and network.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Network size for this configuration.
    pub fn n(&self) -> usize {
        ftscp_tree_size(self.d, self.h)
    }
}

fn ftscp_tree_size(d: usize, h: u32) -> usize {
    if d == 1 {
        h as usize
    } else {
        (d.pow(h) - 1) / (d - 1)
    }
}

/// Measured outcome of one paired run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Network size.
    pub n: usize,
    /// Hierarchical: interval messages (1 hop each — already hop-weighted).
    pub hier_messages: u64,
    /// Centralized: hop-weighted interval messages (Eq. (14)'s unit).
    pub central_hop_messages: u64,
    /// Centralized: end-to-end sends (before hop weighting).
    pub central_sends: u64,
    /// Root/sink detections of each algorithm (must agree).
    pub hier_detections: usize,
    /// Sink detections of the centralized algorithm.
    pub central_detections: usize,
    /// Hierarchical: total vector-clock component inspections, all nodes.
    pub hier_comparisons: u64,
    /// Hierarchical: the largest per-node comparison count (the paper's
    /// "distributed across all nodes" claim quantified).
    pub hier_max_node_comparisons: u64,
    /// Centralized: comparisons at the sink.
    pub central_comparisons: u64,
    /// Hierarchical: largest per-node peak queue residency.
    pub hier_max_node_resident: usize,
    /// Hierarchical: sum of per-node peak residencies.
    pub hier_total_resident: usize,
    /// Centralized: sink peak residency.
    pub central_resident: usize,
    /// Hierarchical: peak per-link traffic (congestion hotspot).
    pub hier_max_edge_load: u64,
    /// Centralized: peak per-link traffic (around the sink).
    pub central_max_edge_load: u64,
    /// Empirical α: aggregates produced ÷ (children × intervals received
    /// per child), averaged over interior non-root nodes (the paper's
    /// §IV-A definition rearranged).
    pub empirical_alpha: f64,
}

/// A configuration together with its measurement.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PairedRun {
    /// Inputs.
    pub config: ExperimentConfig,
    /// Outputs.
    pub measurement: Measurement,
}

/// Runs both deployments on the same workload/topology and collects the
/// paired measurement.
pub fn run_paired(cfg: ExperimentConfig) -> PairedRun {
    let n = cfg.n();
    let exec = RandomExecution::builder(n)
        .intervals_per_process(cfg.p)
        .skip_prob(cfg.skip_prob)
        .solo_prob(cfg.solo_prob)
        .seed(cfg.seed)
        .build();
    let topo = Topology::dary_tree(n, cfg.d, 0);
    let tree = SpanningTree::balanced_dary(n, cfg.d);

    let sim = SimConfig {
        seed: cfg.seed,
        link: LinkModel {
            min_delay: SimTime(100),
            max_delay: SimTime(2_000),
            drop_prob: 0.0,
        },
    };

    // Hierarchical run (heartbeats off: the paper counts interval traffic).
    let mut hier = Deployment::new(
        topo.clone(),
        tree,
        &exec,
        DeployConfig {
            sim,
            interval_spacing: SimTime::from_millis(5),
            monitor: MonitorConfig {
                heartbeat_period: None,
                retransmit_period: None,
                ..Default::default()
            },
            repair_delay: SimTime::from_millis(50),
            ..Default::default()
        },
    );
    hier.run();

    // Centralized run over the same tree topology, sink at the root.
    let mut central =
        CentralizedDeployment::new(topo, NodeId(0), &exec, sim, SimTime::from_millis(5));
    central.run();

    // Empirical α over interior non-root nodes.
    let mut alpha_sum = 0.0;
    let mut alpha_count = 0usize;
    for i in 1..n {
        let app = hier.app(ftscp_vclock::ProcessId(i as u32));
        let engine = app.engine();
        let kids = engine.children().len();
        if kids == 0 {
            continue;
        }
        let received = engine.child_enqueued() as f64 / kids as f64;
        if received > 0.0 {
            alpha_sum += engine.solutions_found() as f64 / (kids as f64 * received);
            alpha_count += 1;
        }
    }

    let hier_comparisons: u64 = (0..n)
        .map(|i| {
            hier.app(ftscp_vclock::ProcessId(i as u32))
                .engine()
                .comparisons()
        })
        .sum();
    let hier_max_node_comparisons = (0..n)
        .map(|i| {
            hier.app(ftscp_vclock::ProcessId(i as u32))
                .engine()
                .comparisons()
        })
        .max()
        .unwrap_or(0);
    let hier_max_node_resident = hier.peak_queue_len();

    let measurement = Measurement {
        n,
        hier_messages: hier.interval_messages(),
        central_hop_messages: central.metrics().hop_messages,
        central_sends: central.metrics().sends,
        hier_detections: hier.detections().len(),
        central_detections: central.detections().len(),
        hier_comparisons,
        hier_max_node_comparisons,
        central_comparisons: central.sink_ops(),
        hier_max_node_resident,
        hier_total_resident: hier.total_peak_resident(),
        central_resident: central.sink_stats().peak_resident,
        hier_max_edge_load: hier.metrics().max_edge_load(),
        central_max_edge_load: central.metrics().max_edge_load(),
        empirical_alpha: if alpha_count > 0 {
            alpha_sum / alpha_count as f64
        } else {
            0.0
        },
    };
    PairedRun {
        config: cfg,
        measurement,
    }
}

/// Runs a batch of paired experiments across a bounded worker pool
/// ([`crate::shard::run_sharded`], capped at the machine's available
/// parallelism), preserving input order. The simulations are independent
/// and deterministic, so parallelism changes nothing but wall-clock time.
pub fn run_paired_many(configs: &[ExperimentConfig]) -> Vec<PairedRun> {
    crate::shard::run_sharded(configs.len(), |i| run_paired(configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig {
            d: 2,
            h: 3,
            p: 4,
            skip_prob: 0.0,
            solo_prob: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn paired_run_detections_agree() {
        let run = run_paired(quick_cfg());
        let m = run.measurement;
        assert_eq!(m.n, 7);
        assert_eq!(
            m.hier_detections, m.central_detections,
            "both algorithms find the same occurrences"
        );
        assert_eq!(m.hier_detections, 4, "one per clean round");
    }

    #[test]
    fn hierarchical_messages_fewer_than_centralized() {
        let run = run_paired(ExperimentConfig {
            h: 4,
            ..quick_cfg()
        });
        let m = run.measurement;
        assert!(
            m.hier_messages < m.central_hop_messages,
            "hier {} < central {}",
            m.hier_messages,
            m.central_hop_messages
        );
    }

    #[test]
    fn cost_is_distributed() {
        let run = run_paired(ExperimentConfig {
            h: 4,
            ..quick_cfg()
        });
        let m = run.measurement;
        // No single hierarchical node does as much comparison work or
        // holds as many intervals as the centralized sink.
        assert!(m.hier_max_node_comparisons < m.central_comparisons);
        assert!(m.hier_max_node_resident <= m.central_resident);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let configs = [
            quick_cfg(),
            ExperimentConfig {
                h: 4,
                ..quick_cfg()
            },
            ExperimentConfig {
                d: 3,
                seed: 9,
                ..quick_cfg()
            },
        ];
        let par = run_paired_many(&configs);
        for (cfg, run) in configs.iter().zip(&par) {
            let serial = run_paired(*cfg);
            assert_eq!(
                serial.measurement.hier_messages,
                run.measurement.hier_messages
            );
            assert_eq!(
                serial.measurement.hier_detections,
                run.measurement.hier_detections
            );
            assert_eq!(
                serial.measurement.central_hop_messages,
                run.measurement.central_hop_messages
            );
        }
    }

    #[test]
    fn empirical_alpha_near_model_for_clean_rounds() {
        // Clean rounds: every child interval aggregates; per the paper's
        // model (aggregates = d·α·per-child-intervals) this measures
        // α ≈ 1/d.
        let run = run_paired(quick_cfg());
        let alpha = run.measurement.empirical_alpha;
        assert!((alpha - 0.5).abs() < 0.15, "α̂ = {alpha}");
    }
}
