//! Plain-text table rendering for the reproduction binaries.

/// Renders a table with a header row, separator, and aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float compactly: integers without decimals, large values in
/// scientific notation.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v.abs() >= 1e7 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Renders rows as CSV (RFC-4180-ish: quotes only when needed).
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes CSV to `results/<name>.csv` relative to the workspace, creating
/// the directory. Returns the path written. Errors are returned, not
/// panicked, so reproduction binaries can degrade gracefully on read-only
/// filesystems.
pub fn write_csv(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, to_csv(headers, rows))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["h", "value"],
            &[
                vec!["2".into(), "40".into()],
                vec!["10".into(), "1234567".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("value"));
    }

    #[test]
    fn csv_escapes_only_when_needed() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["plain".into(), "with,comma".into()],
                vec!["with\"quote".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",2");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(40.0), "40");
        assert_eq!(fnum(0.45), "0.45");
        assert_eq!(fnum(12345678.0), "1.235e7");
    }
}
