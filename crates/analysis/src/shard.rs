//! Work-sharded parallel execution of independent deployment jobs.
//!
//! Experiment batches (seeds × configurations × sweep modes) are
//! embarrassingly parallel: every job is a self-contained deterministic
//! simulation with its own clock pool and per-thread counters, so results
//! are independent of scheduling. This module runs such batches across a
//! bounded worker pool — [`worker_count`] threads, never more than
//! `std::thread::available_parallelism()` — with a shared atomic job
//! cursor, instead of the one-OS-thread-per-job pattern that oversubscribes
//! the scheduler on wide batches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a batch of `jobs` independent jobs:
/// `min(available_parallelism, jobs)`, at least 1.
pub fn worker_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    cores.min(jobs).max(1)
}

/// Runs `f(0..jobs)` across a bounded scoped worker pool, returning the
/// results in job order. Workers pull the next job index from a shared
/// atomic cursor, so long jobs never leave idle cores behind a static
/// partition. `f` must be deterministic per index for the batch to be
/// scheduling-independent (every caller in this workspace is).
///
/// # Panics
///
/// Propagates a panic from any job once the scope joins.
pub fn run_sharded<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..worker_count(jobs) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        // Stagger job durations so completion order differs from job order.
        let out = run_sharded(16, |i| {
            std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 4) as u64));
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn wide_batches_share_a_bounded_pool() {
        // Far more jobs than cores: every job still runs exactly once.
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let out = run_sharded(200, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 200);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(worker_count(200) <= 200);
        assert!(worker_count(0) == 1 && worker_count(1) == 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let out: Vec<u32> = run_sharded(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }
}
