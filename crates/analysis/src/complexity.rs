//! The paper's closed-form cost models (§IV).

use serde::{Deserialize, Serialize};

/// Eq. (11): total messages of the hierarchical algorithm on a complete
/// `d`-ary tree of height `h` with `p` intervals per process and
/// aggregation probability `α`:
///
/// ```text
/// Σ_{i=1}^{h-1} d^{h-i} · p · d^{i-1} · α^{i-1}  =  p·d^{h-1}·(1-α^{h-1})/(1-α)
/// ```
///
/// Every message travels exactly one hop (child → parent), so this is
/// already hop-weighted.
pub fn hier_messages_eq11(p: u64, d: u64, h: u32, alpha: f64) -> f64 {
    assert!(h >= 1);
    let p = p as f64;
    let d = d as f64;
    if (alpha - 1.0).abs() < 1e-12 {
        // lim α→1 of (1-α^{h-1})/(1-α) = h-1.
        return p * d.powi(h as i32 - 1) * (h as f64 - 1.0);
    }
    p * d.powi(h as i32 - 1) * (1.0 - alpha.powi(h as i32 - 1)) / (1.0 - alpha)
}

/// The same sum, term by term: messages sent *from* level `i` (leaves are
/// level 1). Useful for per-level breakdowns.
pub fn hier_messages_from_level(p: u64, d: u64, h: u32, alpha: f64, i: u32) -> f64 {
    assert!((1..h).contains(&i));
    (d as f64).powi((h - i) as i32)
        * (p as f64)
        * (d as f64).powi(i as i32 - 1)
        * alpha.powi(i as i32 - 1)
}

/// Eq. (12)/(14): total (hop-weighted) messages of the centralized
/// repeated detection algorithm \[12\] collecting over the same spanning
/// tree — every interval travels from its level to the sink, one hop per
/// level:
///
/// ```text
/// Σ_{i=1}^{h-1} p · d^{h-i} · (h-i)
///   = p · [ h·(d^h - d)/(d-1) − k ],   k = Σ i·d^{h-i}
///   with  (d-1)·k = d²·(d^{h-1} - 1)/(d-1) − (h-1)·d
/// ```
///
/// **Erratum.** The paper's published closed forms (its Eqs. (13)/(14))
/// carry a sign error: the telescoping step should *subtract* `(h-1)d`,
/// not add it, so the published Eq. (14) disagrees with its own Eq. (12)
/// sum (and even goes negative for small `h`). This function implements
/// the *corrected* closed form, which matches the direct sum exactly; the
/// published expression is kept as
/// [`central_messages_eq14_published`] for comparison. See
/// EXPERIMENTS.md.
pub fn central_messages_eq14(p: u64, d: u64, h: u32) -> f64 {
    assert!(d >= 2, "closed form requires d ≥ 2 (division by d-1)");
    let p = p as f64;
    let df = d as f64;
    let hf = h as f64;
    let geo = (df.powi(h as i32) - df) / (df - 1.0); // Σ_{j=1}^{h-1} d^j
    let k = (df * df * (df.powi(h as i32 - 1) - 1.0) / (df - 1.0) - (hf - 1.0) * df) / (df - 1.0);
    p * (hf * geo - k)
}

/// The paper's Eq. (14) exactly as published (erroneous — see
/// [`central_messages_eq14`]): `p·((d^h − 2d)(dh − d − h) − d)/(d−1)²`.
pub fn central_messages_eq14_published(p: u64, d: u64, h: u32) -> f64 {
    let p = p as f64;
    let df = d as f64;
    let hf = h as f64;
    p * ((df.powi(h as i32) - 2.0 * df) * (df * hf - df - hf) - df) / ((df - 1.0) * (df - 1.0))
}

/// The centralized sum evaluated directly (term by term) — used by tests
/// to validate the closed form, and by callers who want per-level terms.
pub fn central_messages_direct(p: u64, d: u64, h: u32) -> f64 {
    (1..h)
        .map(|i| (p as f64) * (d as f64).powi((h - i) as i32) * ((h - i) as f64))
        .sum()
}

/// `k = Σ_{i=1}^{h-1} i·d^{h-i}` in (corrected) closed form. The paper's
/// Eq. (13) — `(d^{h+1} + d²h − 2d² − dh + d)/(d−1)²` — is off by
/// `2(h−1)d/(d−1)` due to the sign error described at
/// [`central_messages_eq14`].
pub fn eq13_k(d: u64, h: u32) -> f64 {
    let df = d as f64;
    let hf = h as f64;
    (df * df * (df.powi(h as i32 - 1) - 1.0) / (df - 1.0) - (hf - 1.0) * df) / (df - 1.0)
}

/// One row of Table I, evaluated for concrete `n`, `p`, `d`, `h`, `α`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Network size (`n = d^h`).
    pub n: u64,
    /// Intervals per process.
    pub p: u64,
    /// Tree degree.
    pub d: u64,
    /// Tree height.
    pub h: u32,
    /// Hierarchical space bound `O(p·n²)` — distributed across all nodes.
    pub hier_space: f64,
    /// Centralized space bound `O(p·n²)` — all at the sink.
    pub central_space: f64,
    /// Hierarchical time bound `O(d²·p·n²)` — distributed.
    pub hier_time: f64,
    /// Centralized time bound `O(p·n³)` — all at the sink.
    pub central_time: f64,
    /// Hierarchical messages, Eq. (11).
    pub hier_messages: f64,
    /// Centralized messages, Eq. (14).
    pub central_messages: f64,
}

impl Table1Row {
    /// Evaluates the row for a complete `d`-ary tree of height `h`.
    pub fn evaluate(p: u64, d: u64, h: u32, alpha: f64) -> Table1Row {
        let n = d.pow(h);
        let nf = n as f64;
        let pf = p as f64;
        Table1Row {
            n,
            p,
            d,
            h,
            hier_space: pf * nf * nf,
            central_space: pf * nf * nf,
            hier_time: (d * d) as f64 * pf * nf * nf,
            central_time: pf * nf * nf * nf,
            hier_messages: hier_messages_eq11(p, d, h, alpha),
            central_messages: central_messages_eq14(p, d, h),
        }
    }

    /// The paper's headline ratio: centralized time / hierarchical time
    /// `= n / d²` (> 1 whenever `h > 2`).
    pub fn time_ratio(&self) -> f64 {
        self.central_time / self.hier_time
    }
}

/// Number of nodes of a complete `d`-ary tree of height `h` in the
/// paper's idealization (`n = d^h`).
pub fn ideal_n(d: u64, h: u32) -> u64 {
    d.pow(h)
}

/// Number of nodes of an *actual* complete `d`-ary tree with `h` full
/// levels: `(d^h - 1)/(d - 1)`. The paper idealizes this to `d^h`; both
/// are provided so measured runs can use real trees.
pub fn full_tree_n(d: u64, h: u32) -> u64 {
    if d == 1 {
        h as u64
    } else {
        (d.pow(h) - 1) / (d - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq11_closed_form_matches_sum() {
        for &(p, d, h) in &[(20u64, 2u64, 5u32), (20, 4, 4), (7, 3, 6)] {
            for &alpha in &[0.1, 0.45, 0.9] {
                let direct: f64 = (1..h)
                    .map(|i| hier_messages_from_level(p, d, h, alpha, i))
                    .sum();
                let closed = hier_messages_eq11(p, d, h, alpha);
                assert!(
                    (direct - closed).abs() < 1e-6 * direct.max(1.0),
                    "p={p} d={d} h={h} α={alpha}: {direct} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn eq11_alpha_one_limit() {
        let closed = hier_messages_eq11(20, 2, 5, 1.0);
        let direct: f64 = (1..5)
            .map(|i| hier_messages_from_level(20, 2, 5, 1.0, i))
            .sum();
        assert!((closed - direct).abs() < 1e-9);
    }

    #[test]
    fn eq14_closed_form_matches_sum() {
        for &(p, d, h) in &[(20u64, 2u64, 5u32), (20, 4, 4), (7, 3, 6), (1, 2, 2)] {
            let direct = central_messages_direct(p, d, h);
            let closed = central_messages_eq14(p, d, h);
            assert!(
                (direct - closed).abs() < 1e-6 * direct.max(1.0),
                "p={p} d={d} h={h}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn eq13_matches_direct_sum() {
        for &(d, h) in &[(2u64, 5u32), (4, 4), (3, 7)] {
            let direct: f64 = (1..h)
                .map(|i| (i as f64) * (d as f64).powi((h - i) as i32))
                .sum();
            assert!((eq13_k(d, h) - direct).abs() < 1e-6 * direct.max(1.0));
        }
    }

    /// At h = 2 the hierarchy degenerates to the centralized layout and
    /// the two costs coincide; the paper's claim concerns h > 2.
    #[test]
    fn h2_costs_coincide() {
        // α = 1: every leaf interval reaches the root either way.
        let hier = hier_messages_eq11(20, 2, 2, 1.0);
        let cent = central_messages_eq14(20, 2, 2);
        assert!((hier - cent).abs() < 1e-9);
    }

    /// The published Eq. (14) disagrees with its own defining sum — the
    /// erratum this reproduction documents.
    #[test]
    fn published_eq14_is_inconsistent_with_its_sum() {
        let direct = central_messages_direct(20, 2, 5);
        let published = central_messages_eq14_published(20, 2, 5);
        assert!((direct - published).abs() > 1.0, "the erratum is real");
        assert!(
            central_messages_eq14_published(20, 2, 2) < 0.0,
            "published form even goes negative"
        );
    }

    /// The paper's central claim: hierarchical messages are far fewer, and
    /// the gap widens with network size.
    #[test]
    fn hierarchical_wins_and_gap_grows() {
        let mut prev_ratio = 1.0;
        for h in 3..10 {
            let hier = hier_messages_eq11(20, 2, h, 0.45);
            let cent = central_messages_eq14(20, 2, h);
            assert!(hier < cent, "h={h}");
            let ratio = cent / hier;
            assert!(ratio > prev_ratio, "gap grows with h");
            prev_ratio = ratio;
        }
    }

    /// Lower α ⇒ fewer hierarchical messages (failed aggregations stop
    /// propagation early).
    #[test]
    fn alpha_monotonicity() {
        let lo = hier_messages_eq11(20, 2, 8, 0.1);
        let hi = hier_messages_eq11(20, 2, 8, 0.45);
        assert!(lo < hi);
    }

    /// p is a linear factor in both formulas (stated in §IV-A).
    #[test]
    fn p_is_linear() {
        let h1 = hier_messages_eq11(10, 2, 6, 0.3);
        let h2 = hier_messages_eq11(20, 2, 6, 0.3);
        assert!((h2 / h1 - 2.0).abs() < 1e-9);
        let c1 = central_messages_eq14(10, 2, 6);
        let c2 = central_messages_eq14(20, 2, 6);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table1_row_ratio_is_n_over_d_squared() {
        let row = Table1Row::evaluate(20, 2, 5, 0.45);
        assert_eq!(row.n, 32);
        assert!((row.time_ratio() - 32.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn tree_size_helpers() {
        assert_eq!(ideal_n(2, 5), 32);
        assert_eq!(full_tree_n(2, 3), 7);
        assert_eq!(full_tree_n(3, 3), 13);
        assert_eq!(full_tree_n(1, 4), 4);
    }
}
