//! # ftscp-analysis — complexity models and experiment runners
//!
//! The paper's evaluation (§IV, Table I, Figures 4–5) is *analytic*: it
//! derives closed-form message/space/time costs for the hierarchical
//! algorithm and the centralized comparator \[12\] and plots the formulas.
//! This crate reproduces that evaluation and backs it with measurements:
//!
//! * [`complexity`] — the exact formulas: Eq. (11) (hierarchical message
//!   count), Eq. (13)/(14) (centralized hop-weighted message count), and
//!   the Table I complexity expressions;
//! * [`measure`] — experiment runners that execute both algorithms on the
//!   same workload over the same simulated network and report *measured*
//!   message counts, vector-clock comparison counts, and queue residency —
//!   the validation layer the paper lacks;
//! * [`report`] — plain-text/markdown table rendering for the
//!   reproduction binaries in `ftscp-bench`;
//! * [`shard`] — the bounded-worker parallel runner the experiment
//!   batches (and the `ftscp_sim` bench harness) use to spread
//!   independent deployments across the machine's cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod measure;
pub mod report;
pub mod shard;

pub use complexity::{central_messages_eq14, hier_messages_eq11, Table1Row};
pub use measure::{ExperimentConfig, Measurement, PairedRun};
pub use shard::{run_sharded, worker_count};
