//! End-to-end tests of the reproduction binaries: each must run cleanly
//! and print the facts the paper's tables/figures assert.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn repro_table1_prints_both_sections() {
    let out = run(env!("CARGO_BIN_EXE_repro_table1"), &[]);
    assert!(out.contains("Table I: analytic complexity"));
    assert!(out.contains("Table I, measured"));
    // The headline ratio column exists and the n = 32 row shows ratio 8.
    assert!(out.contains("cent/hier time"));
    // Detections agree in the clean-round rows.
    for line in out.lines().filter(|l| l.contains("(0.0/0.0)")) {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        assert_eq!(cells[4], cells[5], "det hier == det cent in: {line}");
    }
}

#[test]
fn repro_fig4_shows_erratum_and_growth() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig4"), &[]);
    assert!(out.contains("cent (published)"));
    // The published closed form's h = 2 value is negative — the erratum.
    let h2_line = out
        .lines()
        .find(|l| l.trim_start().starts_with("|  2 |"))
        .expect("h=2 row");
    assert!(
        h2_line.contains("-40"),
        "erratum visible at h = 2: {h2_line}"
    );
    // Corrected and hierarchical α-curves agree at h = 2 (both 40).
    assert!(out.contains("Measured validation"));
}

#[test]
fn repro_fig5_runs() {
    let out = run(env!("CARGO_BIN_EXE_repro_fig5"), &[]);
    assert!(out.contains("Figure 5: analytic series"));
    assert!(out.contains("d = 4"));
}

#[test]
fn repro_examples_reproduces_all_figures() {
    let out = run(env!("CARGO_BIN_EXE_repro_examples"), &[]);
    assert!(out.contains("Figure 1"));
    assert!(out.contains("Figure 3"));
    assert!(out.contains("Figure 2"));
    assert!(out.contains("{x1,x2,x4,x5} Definitely: false"));
    assert!(out.contains("{x1,x3,x4,x5} Definitely: true"));
    assert!(out.contains("All worked examples reproduced."));
}

#[test]
fn ftscp_sim_cli_end_to_end() {
    let out = run(
        env!("CARGO_BIN_EXE_ftscp_sim"),
        &[
            "--nodes",
            "15",
            "--rounds",
            "4",
            "--seed",
            "3",
            "--crash",
            "5@150ms",
            "--baseline",
        ],
    );
    assert!(out.contains("hierarchical detections:"));
    assert!(out.contains("centralized baseline:"));
    assert!(out.contains("scheduled crash: node 5"));
}
