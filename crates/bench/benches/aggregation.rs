//! Micro-benchmark: cost of the aggregation function `⊓` (Eqs. (5)/(6))
//! by solution-set size and clock width — the per-solution overhead the
//! hierarchical algorithm pays that the centralized one does not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_intervals::{aggregate, Interval};
use ftscp_vclock::{ProcessId, VectorClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_set(rng: &mut StdRng, members: usize, width: usize) -> Vec<Interval> {
    (0..members)
        .map(|m| {
            let lo: Vec<u32> = (0..width).map(|_| rng.gen_range(0..100)).collect();
            let hi: Vec<u32> = lo.iter().map(|l| l + rng.gen_range(1..50)).collect();
            Interval::local(
                ProcessId(m as u32),
                0,
                VectorClock::from_components(lo),
                VectorClock::from_components(hi),
            )
        })
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_meet");
    for members in [2usize, 4, 8, 16] {
        for width in [16usize, 128] {
            let mut rng = StdRng::seed_from_u64(11);
            let set = random_set(&mut rng, members, width);
            group.bench_with_input(
                BenchmarkId::new(format!("w{width}"), members),
                &set,
                |b, set| b.iter(|| black_box(aggregate(set, ProcessId(0), 0, 2))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
