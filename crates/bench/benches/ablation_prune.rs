//! **Ablation: Eq. (10) vs Eq. (9)** — the paper prunes with the on-line
//! approximation Eq. (10) because Eq. (9)'s successor lows are unknown
//! on-line. The offline detector can evaluate both; this bench quantifies
//! what the approximation costs (comparisons) and what the exact rule
//! would buy (deeper pruning per solution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_intervals::offline::OfflineDetector;
use ftscp_intervals::{Interval, PruneRule};
use ftscp_workload::RandomExecution;
use std::hint::black_box;

fn sequences(n: usize, p: usize) -> Vec<Vec<Interval>> {
    let exec = RandomExecution::builder(n)
        .intervals_per_process(p)
        .skip_prob(0.04)
        .seed(9)
        .build();
    exec.intervals
}

fn bench_prune_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prune_rule");
    for n in [4usize, 8, 16] {
        let seqs = sequences(n, 12);
        group.bench_with_input(BenchmarkId::new("eq10_approximate", n), &seqs, |b, seqs| {
            b.iter(|| {
                let out = OfflineDetector::new(seqs.clone(), PruneRule::Approximate).run();
                black_box((out.solutions.len(), out.pruned))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("eq9_exact_hindsight", n),
            &seqs,
            |b, seqs| {
                b.iter(|| {
                    let out =
                        OfflineDetector::new(seqs.clone(), PruneRule::ExactWithHindsight).run();
                    black_box((out.solutions.len(), out.pruned))
                })
            },
        );
    }
    group.finish();

    // Also print the non-timing ablation numbers once.
    for n in [4usize, 8, 16] {
        let seqs = sequences(n, 12);
        let a = OfflineDetector::new(seqs.clone(), PruneRule::Approximate).run();
        let e = OfflineDetector::new(seqs, PruneRule::ExactWithHindsight).run();
        eprintln!(
            "[ablation n={n}] solutions: eq10={} eq9={} | pruned/solution: eq10={:.2} eq9={:.2} | comparisons: eq10={} eq9={}",
            a.solutions.len(),
            e.solutions.len(),
            a.pruned as f64 / a.solutions.len().max(1) as f64,
            e.pruned as f64 / e.solutions.len().max(1) as f64,
            a.comparisons,
            e.comparisons,
        );
    }
}

criterion_group!(benches, bench_prune_rules);
criterion_main!(benches);
