//! End-to-end deployment benchmark: full simulated runs of the
//! hierarchical monitor vs the centralized baseline over the same network,
//! including message routing, timers, and (for the hierarchy) aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_baselines::centralized::CentralizedDeployment;
use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::monitor::MonitorConfig;
use ftscp_simnet::{NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_workload::{Execution, RandomExecution};
use std::hint::black_box;

fn workload(n: usize) -> Execution {
    RandomExecution::builder(n)
        .intervals_per_process(5)
        .seed(8)
        .build()
}

fn bench_deployments(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployment_e2e");
    group.sample_size(20);
    for n in [7usize, 15, 31] {
        let exec = workload(n);
        let topo = Topology::dary_tree(n, 2, 0);
        let tree = SpanningTree::balanced_dary(n, 2);

        group.bench_with_input(BenchmarkId::new("hierarchical", n), &exec, |b, exec| {
            b.iter(|| {
                let mut dep = Deployment::new(
                    topo.clone(),
                    tree.clone(),
                    exec,
                    DeployConfig {
                        sim: SimConfig::default(),
                        interval_spacing: SimTime::from_millis(2),
                        monitor: MonitorConfig {
                            heartbeat_period: None,
                            retransmit_period: None,
                            ..Default::default()
                        },
                        repair_delay: SimTime::from_millis(50),
                        ..Default::default()
                    },
                );
                dep.run();
                black_box(dep.detections().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("centralized", n), &exec, |b, exec| {
            b.iter(|| {
                let mut dep = CentralizedDeployment::new(
                    topo.clone(),
                    NodeId(0),
                    exec,
                    SimConfig::default(),
                    SimTime::from_millis(2),
                );
                dep.run();
                black_box(dep.detections().len())
            })
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload_generation_n31_p10", |b| {
        b.iter(|| {
            black_box(
                RandomExecution::builder(31)
                    .intervals_per_process(10)
                    .noise_msg_prob(0.3)
                    .seed(3)
                    .build()
                    .total_intervals(),
            )
        })
    });
}

criterion_group!(benches, bench_deployments, bench_workload_generation);
criterion_main!(benches);
