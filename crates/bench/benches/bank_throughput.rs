//! Macro-benchmark: QueueBank enqueue/detect throughput — the inner loop
//! of every node in the hierarchy and of the centralized sink.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftscp_intervals::{QueueBank, SlotId};
use ftscp_workload::RandomExecution;
use std::hint::black_box;

/// Feed a full clean-round execution through a sink-style bank (one queue
/// per process).
fn bench_sink_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_sink_feed");
    for n in [4usize, 8, 16, 32] {
        let exec = RandomExecution::builder(n)
            .intervals_per_process(8)
            .seed(3)
            .build();
        let feed: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
        group.throughput(Throughput::Elements(feed.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &feed, |b, feed| {
            b.iter(|| {
                let mut bank = QueueBank::new(n);
                let mut solutions = 0usize;
                for iv in feed {
                    solutions += bank.enqueue(SlotId(iv.source.0), iv.clone()).len();
                }
                black_box(solutions)
            })
        });
    }
    group.finish();
}

/// The same workload at a fixed small node (d = 2 queues), as hierarchy
/// interior nodes see it.
fn bench_node_bank(c: &mut Criterion) {
    let exec = RandomExecution::builder(2)
        .intervals_per_process(64)
        .seed(4)
        .build();
    let feed: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
    c.bench_function("bank_interior_node_feed", |b| {
        b.iter(|| {
            let mut bank = QueueBank::new(2);
            let mut sols = 0;
            for iv in &feed {
                sols += bank.enqueue(SlotId(iv.source.0), iv.clone()).len();
            }
            black_box(sols)
        })
    });
}

criterion_group!(benches, bench_sink_bank, bench_node_bank);
criterion_main!(benches);
