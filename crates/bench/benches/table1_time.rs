//! **Table I, time column, as wall-clock**: the hierarchical detector vs
//! the centralized repeated detector on identical executions.
//!
//! The paper's analytic claim is `O(d²pn²)` (distributed) vs `O(pn³)` (at
//! the sink): the centralized/hierarchical total-work ratio should grow
//! roughly like `n/d²` with the network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_baselines::CentralizedDetector;
use ftscp_core::HierarchicalDetector;
use ftscp_tree::SpanningTree;
use ftscp_workload::{Execution, RandomExecution};
use std::hint::black_box;

fn workload(n: usize) -> Execution {
    RandomExecution::builder(n)
        .intervals_per_process(6)
        .skip_prob(0.1)
        .seed(5)
        .build()
}

fn bench_hier_vs_central(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_detection_time");
    for n in [7usize, 15, 31, 63] {
        let exec = workload(n);
        let tree = SpanningTree::balanced_dary(n, 2);
        let feed: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();

        group.bench_with_input(
            BenchmarkId::new("hierarchical_total", n),
            &feed,
            |b, feed| {
                b.iter(|| {
                    let mut det = HierarchicalDetector::new(&tree);
                    for iv in feed {
                        det.feed(iv.clone());
                    }
                    black_box(det.root_solutions().len())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("centralized_sink", n), &feed, |b, feed| {
            b.iter(|| {
                let mut det = CentralizedDetector::new(n);
                let mut sols = 0;
                for iv in feed {
                    sols += det.feed(iv.clone()).len();
                }
                black_box(sols)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hier_vs_central);
criterion_main!(benches);
