//! Micro-benchmarks: vector-clock comparison/join/meet across widths.
//!
//! The `O(n)`-per-comparison cost is the unit of the paper's §IV-C time
//! analysis; these benches pin down the constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_vclock::{order, VectorClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_clock(rng: &mut StdRng, n: usize) -> VectorClock {
    VectorClock::from_components((0..n).map(|_| rng.gen_range(0..1000)).collect::<Vec<_>>())
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("vclock_compare");
    for n in [8usize, 32, 128, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let pairs: Vec<(VectorClock, VectorClock)> = (0..64)
            .map(|_| (random_clock(&mut rng, n), random_clock(&mut rng, n)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pairs, |b, pairs| {
            b.iter(|| {
                for (x, y) in pairs {
                    black_box(order::compare(black_box(x), black_box(y)));
                }
            })
        });
    }
    group.finish();
}

fn bench_join_meet(c: &mut Criterion) {
    let mut group = c.benchmark_group("vclock_join_meet");
    for n in [8usize, 128] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_clock(&mut rng, n);
        let b = random_clock(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("join", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| black_box(a.join(b)))
        });
        group.bench_with_input(BenchmarkId::new("meet", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| black_box(a.meet(b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compare, bench_join_meet);
criterion_main!(benches);
