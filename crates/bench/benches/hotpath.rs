//! Hot-path micro-benchmarks of the zero-copy data plane: pooled clock
//! merge/compare (including the shared-storage fast paths), pairwise
//! interval overlap, `⊓`-aggregation, and wire-codec roundtrips (dense
//! vs delta).
//!
//! The end-to-end before/after numbers (overlap comparisons, clock
//! clones, bytes per interval) come from `ftscp_sim --bench-json`; these
//! benches pin down the per-operation constants behind them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftscp_intervals::codec::{
    decode_interval_auto, encode_interval, encode_interval_delta, interval_from_bytes,
    interval_to_bytes,
};
use ftscp_intervals::{aggregate, overlap, Interval};
use ftscp_vclock::{ProcessId, VectorClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WIDTHS: [usize; 3] = [64, 256, 1024];

fn random_clock(rng: &mut StdRng, n: usize) -> VectorClock {
    VectorClock::from_components((0..n).map(|_| rng.gen_range(0..1000)).collect::<Vec<_>>())
}

/// An interval whose `hi` advances a handful of components past `lo` —
/// the shape the detector actually processes.
fn random_interval(rng: &mut StdRng, n: usize, source: u32, seq: u64) -> Interval {
    let lo = random_clock(rng, n);
    let mut hi = lo.clone();
    for _ in 0..4 {
        let i = rng.gen_range(0..n);
        hi.set(i, hi.get(i) + rng.gen_range(1..5));
    }
    Interval::local(ProcessId(source), seq, lo, hi)
}

fn bench_clock_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_clock");
    for n in WIDTHS {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_clock(&mut rng, n);
        let b = random_clock(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("merge", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| {
                let mut m = (*a).clone();
                m.merge(black_box(b));
                black_box(m)
            })
        });
        // Merging a clock into a handle-sharing copy of itself exercises
        // the pooled layout's ptr-equality fast path: no CoW break.
        group.bench_with_input(BenchmarkId::new("merge_shared", n), &a, |bch, a| {
            bch.iter(|| {
                let mut m = (*a).clone();
                m.merge(black_box(a));
                black_box(m)
            })
        });
        group.bench_with_input(BenchmarkId::new("compare", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| black_box(a.less_eq(black_box(b))))
        });
        group.bench_with_input(BenchmarkId::new("clone", n), &a, |bch, a| {
            bch.iter(|| black_box((*a).clone()))
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_overlap");
    for n in WIDTHS {
        let mut rng = StdRng::seed_from_u64(12);
        let pairs: Vec<(Interval, Interval)> = (0..32)
            .map(|i| {
                (
                    random_interval(&mut rng, n, 0, i),
                    random_interval(&mut rng, n, 1, i),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pairs, |b, pairs| {
            b.iter(|| {
                for (x, y) in pairs {
                    black_box(overlap(black_box(x), black_box(y)));
                }
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_aggregate");
    for n in WIDTHS {
        let mut rng = StdRng::seed_from_u64(13);
        let set: Vec<Interval> = (0..5).map(|i| random_interval(&mut rng, n, i, 0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| black_box(aggregate(black_box(set), ProcessId(0), 0, 1)))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_codec");
    for n in WIDTHS {
        let mut rng = StdRng::seed_from_u64(14);
        let iv = random_interval(&mut rng, n, 3, 9);
        let prev = random_interval(&mut rng, n, 3, 8);
        group.bench_with_input(BenchmarkId::new("dense_roundtrip", n), &iv, |b, iv| {
            b.iter(|| {
                let bytes = interval_to_bytes(black_box(iv));
                black_box(interval_from_bytes(&bytes).expect("roundtrip"))
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_encode", n), &iv, |b, iv| {
            b.iter(|| {
                let mut buf = bytes::BytesMut::new();
                encode_interval(black_box(iv), &mut buf);
                black_box(buf)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("delta_roundtrip", n),
            &(&iv, &prev),
            |b, (iv, prev)| {
                b.iter(|| {
                    let mut buf = bytes::BytesMut::new();
                    encode_interval_delta(black_box(iv), Some(&prev.lo), &mut buf);
                    let mut frame = buf.freeze();
                    black_box(decode_interval_auto(&mut frame, Some(&prev.lo)).expect("roundtrip"))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delta_encode", n),
            &(&iv, &prev),
            |b, (iv, prev)| {
                b.iter(|| {
                    let mut buf = bytes::BytesMut::new();
                    encode_interval_delta(black_box(iv), Some(&prev.lo), &mut buf);
                    black_box(buf)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clock_ops,
    bench_overlap,
    bench_aggregate,
    bench_codec
);
criterion_main!(benches);
