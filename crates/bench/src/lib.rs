//! # ftscp-bench — reproduction harness
//!
//! One binary per table/figure of the paper plus criterion micro/macro
//! benchmarks. Run everything with:
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_table1
//! cargo run -p ftscp-bench --release --bin repro_fig4
//! cargo run -p ftscp-bench --release --bin repro_fig5
//! cargo run -p ftscp-bench --release --bin repro_examples
//! cargo bench -p ftscp-bench
//! ```
//!
//! | target | reproduces |
//! |---|---|
//! | `repro_table1` | Table I (complexity comparison), analytic + measured |
//! | `repro_fig4` | Figure 4 (messages vs `h`, `d = 2`, `p = 20`, `α ∈ {0.1, 0.45}`) |
//! | `repro_fig5` | Figure 5 (same, `d = 4`) |
//! | `repro_examples` | Figures 1–3 (worked examples as real executions) |
//! | bench `table1_time` | Table I's time column as wall-clock |
//! | bench `ablation_prune` | Eq. (9) vs Eq. (10) prune-rule ablation |
//! | bench `vclock_ops`, `bank_throughput`, `aggregation` | component costs |

#![forbid(unsafe_code)]

/// Shared helper: the measured experiment grid used by `repro_table1` and
/// the figure binaries when `--measure` is passed.
pub fn default_seeds() -> Vec<u64> {
    vec![11, 23, 47]
}
