//! Reproduces **Figure 4**: message complexity of hierarchical (Eq. (11))
//! vs centralized (Eq. (12)/(14)) detection, `d = 2`, `p = 20`,
//! `α ∈ {0.1, 0.45}`, as a function of the tree height `h` — plus measured
//! validation runs at simulable sizes.
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_fig4
//! ```

use ftscp_analysis::complexity::{
    central_messages_eq14, central_messages_eq14_published, hier_messages_eq11,
};
use ftscp_analysis::measure::{run_paired, ExperimentConfig};
use ftscp_analysis::report::{fnum, render_table};

fn analytic(d: u64, h_max: u32) {
    let p = 20;
    println!(
        "== Figure {}: analytic series (p = {p}, d = {d}) ==",
        if d == 2 { 4 } else { 5 }
    );
    println!("   'cent (published)' evaluates the paper's erroneous closed form;");
    println!("   'cent (corrected)' matches the defining sum Eq. (12).\n");
    let mut rows = Vec::new();
    for h in 2..=h_max {
        rows.push(vec![
            h.to_string(),
            d.pow(h).to_string(),
            fnum(hier_messages_eq11(p, d, h, 0.1)),
            fnum(hier_messages_eq11(p, d, h, 0.45)),
            fnum(central_messages_eq14(p, d, h)),
            fnum(central_messages_eq14_published(p, d, h)),
        ]);
    }
    let headers = [
        "h",
        "n=d^h",
        "hier α=0.1",
        "hier α=0.45",
        "cent (corrected)",
        "cent (published)",
    ];
    println!("{}", render_table(&headers, &rows));
    let fig = if d == 2 { "fig4" } else { "fig5" };
    if let Ok(path) = ftscp_analysis::report::write_csv(&format!("{fig}_analytic"), &headers, &rows)
    {
        println!("(series written to {})", path.display());
    }
}

fn measured(d: usize, heights: &[u32], skips: &[(f64, f64)]) {
    println!("\n== Measured validation (full {d}-ary trees, p = 6) ==");
    println!("   skip/solo probabilities steer the effective α̂ (reported).\n");
    let mut rows = Vec::new();
    for &(skip, solo) in skips {
        for &h in heights {
            let cfg = ExperimentConfig {
                d,
                h,
                p: 6,
                skip_prob: skip,
                solo_prob: solo,
                seed: 7,
            };
            let run = run_paired(cfg);
            let m = run.measurement;
            rows.push(vec![
                format!("{skip:.2}/{solo:.2}"),
                h.to_string(),
                m.n.to_string(),
                format!("{:.2}", m.empirical_alpha),
                m.hier_messages.to_string(),
                m.central_hop_messages.to_string(),
                format!(
                    "{:.2}",
                    m.central_hop_messages as f64 / m.hier_messages.max(1) as f64
                ),
            ]);
        }
    }
    let headers = [
        "skip/solo",
        "h",
        "n",
        "α̂",
        "msgs hier",
        "msgs cent(hop)",
        "cent/hier",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) =
        ftscp_analysis::report::write_csv(&format!("fig_d{d}_measured"), &headers, &rows)
    {
        println!("(series written to {})", path.display());
    }
}

fn main() {
    analytic(2, 14);
    measured(2, &[3, 4, 5, 6], &[(0.0, 0.0), (0.3, 0.2)]);
    println!("\nShape check (paper's Figure 4 claims):");
    println!("  * centralized grows faster than hierarchical in h — ratio increases;");
    println!("  * smaller α ⇒ fewer hierarchical messages;");
    println!("  * p is a linear factor in both curves.");
}
