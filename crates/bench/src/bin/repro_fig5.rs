//! Reproduces **Figure 5**: same comparison as Figure 4 with `d = 4`
//! (`p = 20`, `α ∈ {0.1, 0.45}`).
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_fig5
//! ```

use ftscp_analysis::complexity::{
    central_messages_eq14, central_messages_eq14_published, hier_messages_eq11,
};
use ftscp_analysis::measure::{run_paired, ExperimentConfig};
use ftscp_analysis::report::{fnum, render_table};

fn main() {
    let (p, d) = (20u64, 4u64);
    println!("== Figure 5: analytic series (p = {p}, d = {d}) ==\n");
    let mut rows = Vec::new();
    for h in 2..=7u32 {
        rows.push(vec![
            h.to_string(),
            d.pow(h).to_string(),
            fnum(hier_messages_eq11(p, d, h, 0.1)),
            fnum(hier_messages_eq11(p, d, h, 0.45)),
            fnum(central_messages_eq14(p, d, h)),
            fnum(central_messages_eq14_published(p, d, h)),
        ]);
    }
    let headers = [
        "h",
        "n=d^h",
        "hier α=0.1",
        "hier α=0.45",
        "cent (corrected)",
        "cent (published)",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = ftscp_analysis::report::write_csv("fig5_analytic", &headers, &rows) {
        println!("(series written to {})", path.display());
    }

    println!("\n== Measured validation (full 4-ary trees, p = 6) ==\n");
    let mut rows = Vec::new();
    for &(skip, solo) in &[(0.0f64, 0.0f64), (0.3, 0.2)] {
        for h in [2u32, 3, 4] {
            let cfg = ExperimentConfig {
                d: 4,
                h,
                p: 6,
                skip_prob: skip,
                solo_prob: solo,
                seed: 7,
            };
            let run = run_paired(cfg);
            let m = run.measurement;
            rows.push(vec![
                format!("{skip:.2}/{solo:.2}"),
                h.to_string(),
                m.n.to_string(),
                format!("{:.2}", m.empirical_alpha),
                m.hier_messages.to_string(),
                m.central_hop_messages.to_string(),
                format!(
                    "{:.2}",
                    m.central_hop_messages as f64 / m.hier_messages.max(1) as f64
                ),
            ]);
        }
    }
    let headers = [
        "skip/solo",
        "h",
        "n",
        "α̂",
        "msgs hier",
        "msgs cent(hop)",
        "cent/hier",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = ftscp_analysis::report::write_csv("fig_d4_measured", &headers, &rows) {
        println!("(series written to {})", path.display());
    }
    println!("\nShape check: same as Figure 4 — larger d amplifies both curves,");
    println!("and the centralized/hierarchical gap still widens with h.");
}
