//! Reproduces **Table I**: complexity comparison between the hierarchical
//! detection algorithm and the centralized repeated detection algorithm
//! \[12\], both as the paper's closed forms and as measured quantities from
//! paired simulation runs.
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_table1
//! ```

use ftscp_analysis::complexity::{full_tree_n, Table1Row};
use ftscp_analysis::measure::{run_paired_many, ExperimentConfig};
use ftscp_analysis::report::{fnum, render_table};

fn main() {
    println!("== Table I: analytic complexity (paper's expressions) ==");
    println!("   (space/time columns are the O(·) expressions evaluated,");
    println!("    messages are Eq. (11) with α = 0.45 vs corrected Eq. (14))\n");

    let mut rows = Vec::new();
    for &(d, h) in &[(2u64, 3u32), (2, 5), (2, 7), (4, 3), (4, 5)] {
        let r = Table1Row::evaluate(20, d, h, 0.45);
        rows.push(vec![
            r.d.to_string(),
            r.h.to_string(),
            r.n.to_string(),
            fnum(r.hier_space),
            fnum(r.central_space),
            fnum(r.hier_time),
            fnum(r.central_time),
            fnum(r.time_ratio()),
            fnum(r.hier_messages),
            fnum(r.central_messages),
        ]);
    }
    let headers = [
        "d",
        "h",
        "n=d^h",
        "space hier",
        "space cent",
        "time hier (d²pn²)",
        "time cent (pn³)",
        "cent/hier time",
        "msgs hier",
        "msgs cent",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = ftscp_analysis::report::write_csv("table1_analytic", &headers, &rows) {
        println!("(series written to {})", path.display());
    }

    println!("\n== Table I, measured: paired simulation runs ==");
    println!("   full d-ary trees, clean-round workload, p = 6, heartbeats off\n");
    let grid: Vec<(usize, u32, f64, f64)> = vec![
        (2, 3, 0.0, 0.0),
        (2, 4, 0.0, 0.0),
        (2, 5, 0.0, 0.0),
        (3, 3, 0.0, 0.0),
        (3, 4, 0.0, 0.0),
        (4, 3, 0.0, 0.0),
        (2, 4, 0.2, 0.1),
        (3, 3, 0.2, 0.1),
    ];
    let configs: Vec<ExperimentConfig> = grid
        .iter()
        .map(|&(d, h, skip, solo)| ExperimentConfig {
            d,
            h,
            p: 6,
            skip_prob: skip,
            solo_prob: solo,
            seed: 42,
        })
        .collect();
    let runs = run_paired_many(&configs);
    let mut rows = Vec::new();
    for (&(d, h, skip, solo), run) in grid.iter().zip(&runs) {
        let m = run.measurement;
        rows.push(vec![
            format!("{d} ({skip:.1}/{solo:.1})"),
            h.to_string(),
            full_tree_n(d as u64, h).to_string(),
            m.hier_detections.to_string(),
            m.central_detections.to_string(),
            m.hier_messages.to_string(),
            m.central_hop_messages.to_string(),
            m.hier_max_node_comparisons.to_string(),
            m.central_comparisons.to_string(),
            m.hier_max_node_resident.to_string(),
            m.central_resident.to_string(),
            format!("{:.2}", m.empirical_alpha),
        ]);
    }
    let headers = [
        "d (skip/solo)",
        "h",
        "n",
        "det hier",
        "det cent",
        "msgs hier",
        "msgs cent(hop)",
        "max cmp/node hier",
        "cmp sink cent",
        "max queue hier",
        "queue sink cent",
        "α̂",
    ];
    println!("{}", render_table(&headers, &rows));
    if let Ok(path) = ftscp_analysis::report::write_csv("table1_measured", &headers, &rows) {
        println!("(series written to {})", path.display());
    }
    println!("\nReadings:");
    println!("  * detections agree — both algorithms find the same occurrences;");
    println!("  * hierarchical hop-messages < centralized hop-messages, gap grows with h;");
    println!("  * no hierarchical node compares or stores as much as the sink —");
    println!("    the cost is distributed (the paper's headline claim).");
}
