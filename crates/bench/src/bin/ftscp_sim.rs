//! `ftscp_sim` — parameterized simulation runner.
//!
//! Runs the fault-tolerant hierarchical detector (and optionally the
//! centralized baseline) over a simulated network and prints detections
//! and cost metrics. All knobs via flags:
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin ftscp_sim -- \
//!     --nodes 31 --degree 2 --rounds 8 --skip 0.1 --seed 7 \
//!     --crash 5@200ms --crash 0@400ms --baseline --loss 0.1
//! ```
//!
//! `--bench-json` instead runs the data-plane measurement suite (Figure 5
//! workload shape, full 4-ary trees at n ∈ {64, 256, 1024, 4096}),
//! sharding the independent `(point × sweep mode)` deployments across the
//! machine's cores, and writes `BENCH_hotpath.json` at the repository
//! root: overlap comparisons full vs incremental vs aggregate sweep (with
//! runtime assertions that all three produce bit-identical detections),
//! logical vs deep clock clones, encoded bytes per interval dense vs
//! delta, a `parallel_sweep` section timing `SweepMode::AggregateParallel`
//! against sequential `Aggregate` on wide sink banks (n = 1024 and 4096)
//! per thread count — with runtime assertions that every thread count
//! reproduces the sequential decision trace, solution sequence, and
//! billed comparison total exactly — plus a `repair` row measuring the
//! decentralized crash-recovery protocol (re-report traffic and simulated
//! time-to-first-solution after a mid-run internal-node crash on the
//! `h = 3` workload), and a `reactor` row driving one real-TCP node
//! through a 512-connection fan-in on a single epoll loop
//! (`ftscp_net::scale::run_scale`).
//!
//! `--bench-check` regenerates the same grid in memory and exits nonzero
//! if any deterministic cost counter regressed more than 10% against the
//! committed `BENCH_hotpath.json` — the CI regression gate.

use ftscp_analysis::report::render_table;
use ftscp_baselines::centralized::CentralizedDeployment;
use ftscp_core::deploy::{DeployConfig, Deployment, RepairMode};
use ftscp_core::monitor::MonitorConfig;
use ftscp_simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::RandomExecution;

#[derive(Debug)]
struct Args {
    nodes: usize,
    degree: usize,
    rounds: usize,
    skip: f64,
    solo: f64,
    seed: u64,
    loss: f64,
    crashes: Vec<(u32, u64)>, // (node, ms)
    baseline: bool,
    topology: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            nodes: 15,
            degree: 2,
            rounds: 6,
            skip: 0.0,
            solo: 0.0,
            seed: 0,
            loss: 0.0,
            crashes: Vec::new(),
            baseline: false,
            topology: "tree".to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ftscp_sim [--nodes N] [--degree D] [--rounds P] [--skip F] \
         [--solo F] [--seed S] [--loss F] [--crash NODE@MSms]... \
         [--topology tree|grid|geometric|smallworld|scalefree] [--baseline] \
         | --bench-json | --bench-check | --bench-parallel | --bench-tenancy"
    );
    std::process::exit(2);
}

/// The `(skip, solo) × h` grid of the `--bench-json` suite.
const BENCH_GRID: [(f64, f64); 2] = [(0.0, 0.0), (0.3, 0.2)];
const BENCH_HEIGHTS: [u32; 4] = [3, 4, 5, 6];

/// One sweep-mode deployment of one workload point: a self-contained
/// simulation with its own workload, detector tree, interned clock pools,
/// and (per-thread) clone counters, so the sharded driver can run it on
/// any worker.
struct ModeRun {
    ops: u64,
    elapsed_ms: f64,
    fingerprint: u64,
    /// `(solution index, coverage refs)` in emission order — the explicit
    /// solution sequence behind the fingerprint, for the bit-identity
    /// assertion across sweep modes.
    solutions: Vec<(u64, Vec<(u32, u64)>)>,
    detections: usize,
    clones_logical: u64,
    clones_deep: u64,
    gate_hits: u64,
    gate_misses: u64,
}

/// Wire-size measurement of one workload point's interval stream.
struct CodecRun {
    intervals: usize,
    dense_bytes: usize,
    standalone_bytes: usize,
    stateful_bytes: usize,
}

/// One measured size point of the `--bench-json` suite, assembled from
/// its three [`ModeRun`]s and one [`CodecRun`].
struct BenchPoint {
    n: usize,
    h: u32,
    skip: f64,
    solo: f64,
    intervals: usize,
    detections: usize,
    ops_full: u64,
    ops_incr: u64,
    ops_agg: u64,
    gate_hits: u64,
    gate_misses: u64,
    clones_logical: u64,
    clones_deep: u64,
    dense_bytes: usize,
    standalone_bytes: usize,
    stateful_bytes: usize,
    elapsed_full_ms: f64,
    elapsed_incr_ms: f64,
    elapsed_agg_ms: f64,
}

fn pct_saved(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (before.saturating_sub(after)) as f64 / before as f64
    }
}

fn bench_workload(h: u32, skip: f64, solo: f64) -> Vec<ftscp_intervals::Interval> {
    let n = 4usize.pow(h);
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .skip_prob(skip)
        .solo_prob(solo)
        .seed(7)
        .build();
    exec.intervals_interleaved().into_iter().cloned().collect()
}

/// Runs one sweep mode over one Figure 5 workload row (full `d = 4` tree,
/// `p = 6`, seed 7). Clone counters are thread-local, so resetting here
/// charges exactly this deployment no matter which shard worker runs it.
fn bench_mode(h: u32, skip: f64, solo: f64, mode: ftscp_intervals::SweepMode) -> ModeRun {
    use ftscp_core::HierarchicalDetector;
    use std::time::Instant;

    let intervals = bench_workload(h, skip, solo);
    let tree = SpanningTree::balanced_dary(4usize.pow(h), 4);
    ftscp_vclock::reset_clone_stats();
    let t0 = Instant::now();
    let mut det = HierarchicalDetector::new(&tree).with_sweep_mode(mode);
    for iv in &intervals {
        det.feed(iv.clone());
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (clones_logical, clones_deep) = ftscp_vclock::clone_stats();
    let stats = det.bank_stats_total();
    ModeRun {
        ops: det.ops().get(),
        elapsed_ms,
        fingerprint: ftscp_core::faultcheck::detection_fingerprint(det.root_solutions()),
        solutions: det
            .root_solutions()
            .iter()
            .map(|d| {
                (
                    d.solution.index,
                    d.coverage.iter().map(|r| (r.process.0, r.seq)).collect(),
                )
            })
            .collect(),
        detections: det.root_solutions().len(),
        clones_logical,
        clones_deep,
        gate_hits: stats.gate_hits,
        gate_misses: stats.gate_misses,
    }
}

/// Wire sizes over one point's interval stream: legacy dense, delta with
/// no base (retransmit/resync frames), and delta over per-source
/// connection state (the live stream).
fn bench_codec(h: u32, skip: f64, solo: f64) -> CodecRun {
    use ftscp_core::ConnCodec;
    use ftscp_intervals::codec::{encoded_interval_delta_len, encoded_interval_len};
    use std::collections::BTreeMap;

    let intervals = bench_workload(h, skip, solo);
    let mut dense_bytes = 0usize;
    let mut standalone_bytes = 0usize;
    let mut stateful_bytes = 0usize;
    let mut conns: BTreeMap<u32, ConnCodec> = BTreeMap::new();
    for iv in &intervals {
        dense_bytes += encoded_interval_len(iv);
        standalone_bytes += encoded_interval_delta_len(iv, None);
        let codec = conns.entry(iv.source.0).or_default();
        stateful_bytes += codec.stateful_len(iv);
        codec.note_sent(iv);
    }
    CodecRun {
        intervals: intervals.len(),
        dense_bytes,
        standalone_bytes,
        stateful_bytes,
    }
}

/// The `net_loopback` row: the `h = 3` hotpath workload pushed through
/// the real-TCP loopback deployment (`ftscp-net`), one OS process tree on
/// 127.0.0.1. `intervals_per_sec` and `elapsed_ms` are wall-clock and not
/// gated; the frame/byte counters are deterministic because heartbeats
/// and retransmits are off (reliable local sockets, no drops) and each
/// node's report stream is interleaving-invariant.
struct NetRun {
    available: bool,
    n: usize,
    intervals: u64,
    detections: usize,
    interval_msgs: u64,
    interval_frames: u64,
    standalone_frames: u64,
    bytes_on_wire: u64,
    reconnects: u64,
    intervals_per_sec: f64,
    elapsed_ms: f64,
}

fn bench_net_loopback() -> NetRun {
    use ftscp_net::loopback::{run_execution, sockets_available, LoopbackConfig};

    let h = 3u32;
    let n = 4usize.pow(h);
    let mut run = NetRun {
        available: false,
        n,
        intervals: 0,
        detections: 0,
        interval_msgs: 0,
        interval_frames: 0,
        standalone_frames: 0,
        bytes_on_wire: 0,
        reconnects: 0,
        intervals_per_sec: 0.0,
        elapsed_ms: 0.0,
    };
    if !sockets_available() {
        return run;
    }
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(7)
        .build();
    let tree = SpanningTree::balanced_dary(n, 4);
    let config = LoopbackConfig {
        monitor: MonitorConfig {
            heartbeat_period: None,
            retransmit_period: None,
            ..MonitorConfig::default()
        },
        event_pacing: std::time::Duration::ZERO,
        run_timeout: std::time::Duration::from_secs(60),
        ..Default::default()
    };
    let report = match run_execution(&tree, &exec, &config) {
        Ok(r) if !r.timed_out => r,
        _ => return run,
    };
    run.available = true;
    run.intervals = report.total_intervals;
    run.detections = report.detections.len();
    run.interval_msgs = report
        .node_reports
        .iter()
        .map(|r| r.interval_msgs_sent)
        .sum();
    run.interval_frames = report.interval_frames();
    run.standalone_frames = report.standalone_frames();
    run.bytes_on_wire = report.bytes_on_wire();
    run.reconnects = report.reconnects();
    run.intervals_per_sec = report.intervals_per_sec();
    run.elapsed_ms = report.elapsed.as_secs_f64() * 1e3;
    run
}

/// The `repair` row: cost of surviving a mid-run crash of a height-1
/// internal node on the `h = 3` hotpath workload, with the repair run by
/// the decentralized membership protocol (`RepairMode::HeartbeatDriven`:
/// heartbeat suspicion → grandparent adoption → re-reports — the same
/// code path the TCP runtime drives). Everything except `elapsed_ms` is
/// simulation-deterministic: `time_to_first_solution_ms` is *simulated*
/// time from the crash instant to the first post-crash detection at the
/// root, and the re-report counters meter the §III-F recovery traffic
/// (retransmitted unacked reports + standalone resync frames).
struct RepairRun {
    n: usize,
    crashed_node: u32,
    crash_at_ms: u64,
    detections: usize,
    re_report_msgs: u64,
    re_report_bytes: u64,
    time_to_first_solution_ms: f64,
    elapsed_ms: f64,
}

fn bench_repair() -> RepairRun {
    use std::time::Instant;

    let h = 3u32;
    let n = 4usize.pow(h);
    let crashed = ProcessId(5); // height-1 internal: parent of four leaves
    let crash_at = SimTime::from_millis(150);
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(7)
        .build();
    let topo = Topology::dary_tree(n, 4, 1);
    let tree = SpanningTree::balanced_dary(n, 4);
    let cfg = DeployConfig {
        sim: SimConfig {
            seed: 7,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        monitor: MonitorConfig {
            heartbeat_period: Some(SimTime::from_millis(20)),
            retransmit_period: Some(SimTime::from_millis(25)),
            ..Default::default()
        },
        repair_delay: SimTime::from_millis(120),
        repair_mode: RepairMode::HeartbeatDriven,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    dep.schedule_crash(crashed, crash_at);
    dep.run();
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let dets = dep.detections();
    let first_after = dets
        .iter()
        .map(|d| d.time)
        .find(|&t| t >= crash_at)
        .map(|t| t.saturating_sub(crash_at))
        .unwrap_or(SimTime::ZERO);
    let mut re_report_msgs = 0u64;
    let mut re_report_bytes = 0u64;
    for p in 0..n {
        let app = dep.app(ProcessId(p as u32));
        re_report_msgs += app.re_report_msgs();
        re_report_bytes += app.re_report_bytes();
    }
    assert!(
        dets.iter().any(|d| d.time >= crash_at),
        "repair row must keep detecting after the crash"
    );
    RepairRun {
        n,
        crashed_node: crashed.0,
        crash_at_ms: crash_at.as_millis(),
        detections: dets.len(),
        re_report_msgs,
        re_report_bytes,
        time_to_first_solution_ms: first_after.as_micros() as f64 / 1e3,
        elapsed_ms,
    }
}

/// The `reactor` row: one real-TCP root node sustaining a 512-child
/// fan-in on a single epoll loop (`ftscp_net::scale::run_scale`, the
/// same harness as `net/tests/scale.rs`). Heartbeats and retransmits
/// are off, so `detections`, `bytes_received` (the children's protocol
/// payload), and `reconnects` are deterministic and gated; `syscalls`
/// is scheduling-dependent and `elapsed_ms`/`intervals_per_sec` are
/// wall-clock — reported, never gated.
struct ReactorRun {
    available: bool,
    children: usize,
    rounds: u64,
    intervals: u64,
    detections: usize,
    bytes_sent: u64,
    bytes_received: u64,
    reconnects: u64,
    syscalls: u64,
    intervals_per_sec: f64,
    elapsed_ms: f64,
}

fn bench_reactor() -> ReactorRun {
    use ftscp_net::scale::run_scale;

    let children = 512usize;
    let rounds = 3u64;
    let mut run = ReactorRun {
        available: false,
        children,
        rounds,
        intervals: 0,
        detections: 0,
        bytes_sent: 0,
        bytes_received: 0,
        reconnects: 0,
        syscalls: 0,
        intervals_per_sec: 0.0,
        elapsed_ms: 0.0,
    };
    let report = match run_scale(children, rounds, std::time::Duration::from_secs(120)) {
        Ok(Some(r)) => r,
        // Socketless environment or an unraisable fd limit: record zeros.
        Ok(None) | Err(_) => return run,
    };
    run.available = true;
    run.intervals = (children as u64 + 1) * rounds;
    run.detections = report.node.detections.len();
    run.bytes_sent = report.node.bytes_sent;
    run.bytes_received = report.node.bytes_received;
    run.reconnects = report.node.reconnects;
    run.syscalls = report.node.syscalls;
    run.elapsed_ms = report.elapsed.as_secs_f64() * 1e3;
    run.intervals_per_sec = run.intervals as f64 / report.elapsed.as_secs_f64().max(1e-9);
    run
}

/// One `AggregateParallel` run of the sink-bank suite, measured against
/// the sequential `Aggregate` baseline of the same [`ParallelPoint`].
struct ParallelRun {
    threads_requested: usize,
    threads_effective: usize,
    elapsed_ms: f64,
    speedup: f64,
}

/// One size point of the parallel-sweep suite: a single *wide* queue bank
/// (one queue per process, fed directly — the centralized sink shape,
/// where every sweep visit touches an `n`-queue × `n`-component region
/// and the per-visit sharding has room to pay off; the hierarchical
/// grid's per-node banks are only `d = 4` queues wide and never cross the
/// parallel threshold). The outcome columns are shared by every run of
/// the point — the runtime asserts make them bit-identical.
struct ParallelPoint {
    n: usize,
    rounds: usize,
    /// `available_parallelism` of the measuring machine — committed with
    /// the rows so a 1-core artifact reads as what it is.
    cores: usize,
    intervals: usize,
    solutions: u64,
    swept: u64,
    pruned: u64,
    billed_ops: u64,
    seq_elapsed_ms: f64,
    runs: Vec<ParallelRun>,
}

/// Everything observable about one sink-bank sweep: the full decision
/// trace (enqueue/sweep/prune/emission order), solution sequence, stats,
/// and billed comparison total that must be bit-identical across thread
/// counts, plus the wall-clock that must not be.
struct SinkRun {
    elapsed_ms: f64,
    ops: u64,
    stats: ftscp_intervals::BankStats,
    solutions: Vec<ftscp_intervals::Solution>,
    trace: Vec<ftscp_intervals::BankEvent>,
}

/// Feeds one pre-built interval stream through a fresh `n`-queue sink
/// bank under `mode`, tracing every decision.
fn run_sink(
    intervals: &[ftscp_intervals::Interval],
    n: usize,
    mode: ftscp_intervals::SweepMode,
) -> SinkRun {
    use ftscp_intervals::{QueueBank, SlotId};
    use std::time::Instant;

    let mut bank = QueueBank::new(n).with_sweep_mode(mode).with_trace();
    let mut solutions = Vec::new();
    let t0 = Instant::now();
    for iv in intervals {
        solutions.extend(bank.enqueue(SlotId(iv.source.0), iv.clone()));
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    SinkRun {
        elapsed_ms,
        ops: bank.ops().get(),
        stats: bank.stats(),
        solutions,
        trace: bank.take_trace(),
    }
}

/// Measures one parallel-sweep size point: sequential `Aggregate` first,
/// then `AggregateParallel` at each requested thread count (0 = auto),
/// asserting after every run that the parallel sweep reproduced the
/// sequential decision trace, solution sequence, deletion/prune counters,
/// and billed comparison total *exactly* — the tentpole's bit-identity
/// contract, enforced on real workloads every time the bench runs.
fn bench_parallel_point(n: usize, rounds: usize) -> ParallelPoint {
    use ftscp_intervals::SweepMode;

    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(7)
        .build();
    let intervals: Vec<ftscp_intervals::Interval> =
        exec.intervals_interleaved().into_iter().cloned().collect();

    let seq = run_sink(&intervals, n, SweepMode::Aggregate);
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4, 0] {
        let effective = ftscp_intervals::par::effective_threads(threads);
        let par = run_sink(&intervals, n, SweepMode::AggregateParallel { threads });
        assert_eq!(
            par.solutions, seq.solutions,
            "parallel sweep solution sequence diverged at n = {n}, {threads} threads"
        );
        assert_eq!(
            par.stats, seq.stats,
            "parallel sweep bank stats diverged at n = {n}, {threads} threads"
        );
        assert_eq!(
            par.ops, seq.ops,
            "parallel sweep billed total diverged at n = {n}, {threads} threads"
        );
        assert_eq!(
            par.trace, seq.trace,
            "parallel sweep decision trace (deletion order) diverged at n = {n}, {threads} threads"
        );
        runs.push(ParallelRun {
            threads_requested: threads,
            threads_effective: effective,
            elapsed_ms: par.elapsed_ms,
            speedup: seq.elapsed_ms / par.elapsed_ms.max(1e-9),
        });
    }

    // The speedup bar: ≥2× over sequential aggregate on the dense
    // n = 4096 sink at ≥4 threads. Wall-clock is machine-dependent (the
    // materialization pass is memory-bandwidth-bound, and shared CI
    // runners neither guarantee 4 physical cores nor stable bandwidth),
    // so the bar is only *enforced* when the operator vouches for the
    // hardware via `FTSCP_BENCH_ASSERT_SPEEDUP=1`; everywhere else a
    // miss on a ≥4-core machine is reported loudly but stays ungated —
    // the same policy `--bench-check` applies to every elapsed_ms field.
    // The bit-identity assertions above run unconditionally.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if n >= 4096 {
        let four = runs
            .iter()
            .find(|r| r.threads_requested == 4)
            .expect("4-thread row is in the grid");
        if cores < 4 {
            eprintln!(
                "note: {cores}-core machine — the ≥2× speedup bar needs 4 cores \
                 (measured {:.2}x at 4 oversubscribed threads)",
                four.speedup
            );
        } else if std::env::var("FTSCP_BENCH_ASSERT_SPEEDUP").is_ok() {
            assert!(
                four.speedup >= 2.0,
                "parallel sweep under 2x at n = {n} with 4 threads on {cores} cores ({:.2}x)",
                four.speedup
            );
        } else if four.speedup < 2.0 {
            eprintln!(
                "WARNING: parallel sweep under the 2x bar at n = {n} with 4 threads \
                 on {cores} cores ({:.2}x) — set FTSCP_BENCH_ASSERT_SPEEDUP=1 to enforce",
                four.speedup
            );
        } else {
            eprintln!(
                "parallel sweep speedup bar met: {:.2}x at 4 threads on {cores} cores",
                four.speedup
            );
        }
    }

    ParallelPoint {
        n,
        rounds,
        cores,
        intervals: intervals.len(),
        solutions: seq.stats.solutions,
        swept: seq.stats.swept,
        pruned: seq.stats.pruned,
        billed_ops: seq.ops,
        seq_elapsed_ms: seq.elapsed_ms,
        runs,
    }
}

/// The parallel-sweep suite: wide sink banks at n = 1024, 4096, and
/// 16384 (dense workload, seed 7), sequential baseline +
/// per-thread-count rows. Runs are strictly sequential — each owns the
/// whole machine, so the wall-clock rows measure the sharding, not
/// scheduler contention.
fn bench_parallel_sweep() -> Vec<ParallelPoint> {
    [(1024usize, 2usize), (4096, 1), (16384, 1)]
        .into_iter()
        .map(|(n, rounds)| {
            eprintln!("parallel sweep: sink bank n = {n}, rounds = {rounds} ...");
            bench_parallel_point(n, rounds)
        })
        .collect()
}

/// One tenant-count point of the tenancy suite: the registry's
/// relevance-filtered routing vs the naive broadcast baseline on the
/// same shared event stream, with per-tenant bit-identity asserted at
/// runtime every time the suite runs.
struct TenancyPoint {
    tenants: usize,
    events: u64,
    detections: usize,
    /// Deterministic billed cost (routing touches + vector-clock
    /// comparisons) of the registry's `ingest` run.
    registry_billed: u64,
    /// Billed cost of the naive run: every tenant offered every event.
    naive_billed: u64,
    /// Events × relevant tenants — the Σ|S_k| work the filter admits.
    relevant_touches: u64,
    /// Uplink bytes with per-connection tenant batches (0xD3 frames).
    batched_bytes: u64,
    /// The same routed traffic as per-predicate `Interval` frames.
    naive_bytes: u64,
    elapsed_ms: f64,
    detections_per_sec: f64,
}

/// Tenant counts of the tenancy suite (1 → 10k over one event stream).
const TENANCY_COUNTS: [usize; 5] = [1, 10, 100, 1_000, 10_000];
const TENANCY_N: usize = 64;
const TENANCY_ROUNDS: usize = 6;
const TENANCY_BATCH_SPAN: usize = 8;

/// splitmix64 — the member sets must be stable across runs and machines
/// (the bench gate compares billed counters), so they are derived from
/// the tenant index, not from an RNG stream shared with anything else.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tenant 0 watches everyone (the legacy full-coverage shape); tenants
/// 1.. watch pseudo-random member sets of 4–16 processes — the
/// "thousands of small Φ over one fleet" shape the registry exists for.
fn tenancy_specs(tenants: usize, n: usize) -> Vec<ftscp_core::registry::TenantSpec> {
    use ftscp_core::registry::TenantSpec;
    use ftscp_core::PredicateId;

    let mut specs = Vec::with_capacity(tenants);
    specs.push(TenantSpec::full(PredicateId(0)));
    for k in 1..tenants {
        let seed = mix64(k as u64);
        let size = 4 + (seed % 13) as usize;
        let mut members: Vec<ProcessId> = Vec::with_capacity(size);
        let mut probe = seed;
        while members.len() < size {
            probe = mix64(probe);
            let p = ProcessId((probe % n as u64) as u32);
            if !members.contains(&p) {
                members.push(p);
            }
        }
        specs.push(TenantSpec::restricted(PredicateId(k as u32), members));
    }
    specs
}

/// Measures one tenant count: registry `ingest` (timed, billed), naive
/// `ingest_broadcast` baseline (billed), per-tenant solution-sequence
/// bit-identity (asserted), and both uplink byte costs for the same
/// routed traffic (computed with the real codecs, size queries only).
fn bench_tenancy_point(
    tenants: usize,
    tree: &SpanningTree,
    exec: &ftscp_workload::Execution,
    stream: &[ftscp_intervals::Interval],
) -> TenancyPoint {
    use ftscp_core::registry::PredicateRegistry;
    use ftscp_intervals::codec::{
        encoded_interval_delta_len, encoded_tenant_batch_len, TenantGroup,
    };
    use std::time::Instant;

    let specs = tenancy_specs(tenants, TENANCY_N);
    let mut registry = PredicateRegistry::new(tree, &specs);
    let t0 = Instant::now();
    for iv in stream {
        registry.ingest(iv.clone());
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut naive = PredicateRegistry::new(tree, &specs);
    for iv in stream {
        naive.ingest_broadcast(iv.clone());
    }
    // The differential, enforced on every bench run: routing through the
    // relevance filter must not change any tenant's detections.
    for spec in &specs {
        assert_eq!(
            registry.tenant(spec.id).solution_sequence(),
            naive.tenant(spec.id).solution_sequence(),
            "tenant {:?} diverged registry-vs-naive at T = {tenants}",
            spec.id
        );
    }

    // Wire cost of the same routed traffic, per monitored process: one
    // connection each, flushed every TENANCY_BATCH_SPAN events. Batched =
    // one 0xD3 frame per flush (each interval encoded once, fan-out as
    // varint tags); naive = one per-predicate Interval frame per
    // (event, tenant) pair, each predicate with its own delta stream.
    // Constant 11 bytes per frame either way: u32 length prefix, tag,
    // subtag, u32 `from`, resync flag.
    const FRAME_FIXED: u64 = 4 + 2 + 4 + 1;
    let mut batched_bytes = 0u64;
    let mut naive_bytes = 0u64;
    for p in 0..TENANCY_N {
        let route: Vec<u32> = registry
            .tenants_for(ProcessId(p as u32))
            .iter()
            .map(|id| id.0)
            .collect();
        if route.is_empty() {
            continue;
        }
        let ivs = exec.intervals_of(ProcessId(p as u32));
        let mut base: Option<ftscp_vclock::VectorClock> = None;
        for chunk in ivs.chunks(TENANCY_BATCH_SPAN) {
            let groups: Vec<TenantGroup> =
                chunk.iter().map(|iv| (route.clone(), iv.clone())).collect();
            batched_bytes += FRAME_FIXED + encoded_tenant_batch_len(&groups, base.as_ref()) as u64;
            base = chunk.last().map(|iv| iv.lo.clone());
        }
        let mut bases: Vec<Option<ftscp_vclock::VectorClock>> = vec![None; route.len()];
        for iv in ivs {
            for b in bases.iter_mut() {
                naive_bytes += FRAME_FIXED + 4 + encoded_interval_delta_len(iv, b.as_ref()) as u64;
                *b = Some(iv.lo.clone());
            }
        }
    }

    let detections = registry.total_detections();
    TenancyPoint {
        tenants,
        events: stream.len() as u64,
        detections,
        registry_billed: registry.billed_cost(),
        naive_billed: naive.billed_cost(),
        relevant_touches: registry.stats().tenant_touches,
        batched_bytes,
        naive_bytes,
        elapsed_ms,
        detections_per_sec: detections as f64 / (elapsed_ms / 1e3).max(1e-9),
    }
}

/// The tenancy suite: T ∈ {1, 10, 100, 1k, 10k} tenants over one shared
/// 64-process event stream (full 4-ary tree, seed 7). Asserts the
/// acceptance bar: aggregate billed cost at 10k tenants under 0.5× of
/// 10k × the single-tenant cost — the relevance filter's sublinearity.
fn bench_tenancy() -> Vec<TenancyPoint> {
    let tree = SpanningTree::balanced_dary(TENANCY_N, 4);
    let exec = RandomExecution::builder(TENANCY_N)
        .intervals_per_process(TENANCY_ROUNDS)
        .seed(7)
        .build();
    let stream: Vec<ftscp_intervals::Interval> =
        exec.intervals_interleaved().into_iter().cloned().collect();
    let points: Vec<TenancyPoint> = TENANCY_COUNTS
        .into_iter()
        .map(|tenants| {
            eprintln!(
                "tenancy: {tenants} tenants over {} events ...",
                stream.len()
            );
            bench_tenancy_point(tenants, &tree, &exec, &stream)
        })
        .collect();

    let single = points[0].registry_billed;
    let at_10k = points
        .last()
        .expect("tenant grid is non-empty")
        .registry_billed;
    assert!(
        2 * at_10k < 10_000 * single,
        "tenancy sublinearity bar lost: 10k tenants billed {at_10k}, \
         single-tenant cost {single} (needs < 0.5x of 10k x single)"
    );
    for p in &points {
        assert!(
            p.batched_bytes < p.naive_bytes || p.tenants == 1,
            "batched uplink must beat per-predicate framing at T = {}",
            p.tenants
        );
    }
    points
}

/// Runs the whole measurement grid — every `(point, sweep mode)`
/// deployment plus one codec pass per point — as independent jobs on the
/// sharded worker pool, then assembles and cross-checks the points.
///
/// The cross-checks are the bit-identity contract of the sweep modes,
/// asserted at runtime on every point: identical faultcheck fingerprints
/// *and* identical solution sequences across `Full`, `Incremental`, and
/// `Aggregate`. The clean `h = 5` row must also show the headline
/// `≥ 10×` comparison saving of the aggregate-summary gate.
fn bench_points() -> Vec<BenchPoint> {
    use ftscp_intervals::SweepMode;

    let grid: Vec<(u32, f64, f64)> = BENCH_GRID
        .iter()
        .flat_map(|&(skip, solo)| BENCH_HEIGHTS.iter().map(move |&h| (h, skip, solo)))
        .collect();
    const MODES: [SweepMode; 3] = [
        SweepMode::Full,
        SweepMode::Incremental,
        SweepMode::Aggregate,
    ];
    const JOBS_PER_POINT: usize = MODES.len() + 1; // 3 sweep modes + codec

    enum JobOut {
        Mode(ModeRun),
        Codec(CodecRun),
    }
    eprintln!(
        "measuring {} deployments on {} workers ...",
        grid.len() * JOBS_PER_POINT,
        ftscp_analysis::worker_count(grid.len() * JOBS_PER_POINT)
    );
    let outs = ftscp_analysis::run_sharded(grid.len() * JOBS_PER_POINT, |i| {
        let (h, skip, solo) = grid[i / JOBS_PER_POINT];
        match i % JOBS_PER_POINT {
            m if m < MODES.len() => JobOut::Mode(bench_mode(h, skip, solo, MODES[m])),
            _ => JobOut::Codec(bench_codec(h, skip, solo)),
        }
    });

    let mut points = Vec::new();
    for (pi, chunk) in outs.chunks(JOBS_PER_POINT).enumerate() {
        let (h, skip, solo) = grid[pi];
        let n = 4usize.pow(h);
        let [JobOut::Mode(full), JobOut::Mode(incr), JobOut::Mode(agg), JobOut::Codec(codec)] =
            chunk
        else {
            unreachable!("job kinds arrive in per-point order");
        };
        // Bit-identity across all three sweep modes: same fingerprint,
        // same explicit solution sequence.
        for (name, run) in [("incremental", incr), ("aggregate", agg)] {
            assert_eq!(
                full.fingerprint, run.fingerprint,
                "{name} sweep fingerprint diverged at n = {n}, skip = {skip}"
            );
            assert_eq!(
                full.solutions, run.solutions,
                "{name} sweep solution sequence diverged at n = {n}, skip = {skip}"
            );
        }
        assert!(
            incr.ops < full.ops,
            "incremental sweep must do strictly fewer comparisons ({} >= {})",
            incr.ops,
            full.ops
        );
        assert!(
            agg.ops < full.ops,
            "aggregate sweep must do strictly fewer comparisons ({} >= {})",
            agg.ops,
            full.ops
        );
        if skip == 0.0 && h >= 5 {
            assert!(
                full.ops >= 10 * agg.ops,
                "headline row (n = {n} dense) lost the ≥10× saving: {} vs {}",
                full.ops,
                agg.ops
            );
        }
        points.push(BenchPoint {
            n,
            h,
            skip,
            solo,
            intervals: codec.intervals,
            detections: agg.detections,
            ops_full: full.ops,
            ops_incr: incr.ops,
            ops_agg: agg.ops,
            gate_hits: agg.gate_hits,
            gate_misses: agg.gate_misses,
            clones_logical: incr.clones_logical,
            clones_deep: incr.clones_deep,
            dense_bytes: codec.dense_bytes,
            standalone_bytes: codec.standalone_bytes,
            stateful_bytes: codec.stateful_bytes,
            elapsed_full_ms: full.elapsed_ms,
            elapsed_incr_ms: incr.elapsed_ms,
            elapsed_agg_ms: agg.elapsed_ms,
        });
    }
    points
}

fn render_tenancy_json(tenancy: &[TenancyPoint]) -> String {
    let mut out = String::new();
    out.push_str("  \"tenancy\": [\n");
    for (i, p) in tenancy.iter().enumerate() {
        let per_iv = |total: u64| total as f64 / p.events.max(1) as f64;
        out.push_str(&format!(
            "    {{\"tenants\": {}, \"events\": {}, \"elapsed_ms\": {:.3}, \
             \"detections_per_sec\": {:.0},\n",
            p.tenants, p.events, p.elapsed_ms, p.detections_per_sec
        ));
        out.push_str(&format!(
            "     \"tenancy_cost\": {{\"registry_billed\": {}, \"naive_billed\": {}, \
             \"relevant_touches\": {}, \"detections\": {}}},\n",
            p.registry_billed, p.naive_billed, p.relevant_touches, p.detections
        ));
        out.push_str(&format!(
            "     \"tenancy_bytes\": {{\"batched_per_interval\": {:.1}, \
             \"naive_per_interval\": {:.1}}}}}{}\n",
            per_iv(p.batched_bytes),
            per_iv(p.naive_bytes),
            if i + 1 < tenancy.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out
}

fn render_bench_json(
    points: &[BenchPoint],
    parallel: &[ParallelPoint],
    tenancy: &[TenancyPoint],
    net: &NetRun,
    repair: &RepairRun,
    reactor: &ReactorRun,
) -> String {
    // Hand-formatted JSON: the build environment has no serde_json.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(
        "  \"workload\": {\"tree_degree\": 4, \"intervals_per_process\": 6, \"seed\": 7},\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let per_iv = |total: usize| total as f64 / p.intervals.max(1) as f64;
        out.push_str(&format!(
            "    {{\"n\": {}, \"h\": {}, \"skip_prob\": {:.1}, \"solo_prob\": {:.1}, \
             \"intervals\": {}, \"detections\": {},\n",
            p.n, p.h, p.skip, p.solo, p.intervals, p.detections
        ));
        out.push_str(&format!(
            "     \"overlap_comparisons\": {{\"full_sweep\": {}, \"incremental\": {}, \
             \"aggregate\": {}, \"saved_pct\": {:.2}, \"aggregate_saved_pct\": {:.2}}},\n",
            p.ops_full,
            p.ops_incr,
            p.ops_agg,
            pct_saved(p.ops_full, p.ops_incr),
            pct_saved(p.ops_full, p.ops_agg)
        ));
        out.push_str(&format!(
            "     \"aggregate_gate\": {{\"hits\": {}, \"misses\": {}}},\n",
            p.gate_hits, p.gate_misses
        ));
        out.push_str(&format!(
            "     \"clock_clones\": {{\"logical\": {}, \"deep_copies\": {}, \"elided_pct\": {:.1}}},\n",
            p.clones_logical,
            p.clones_deep,
            pct_saved(p.clones_logical, p.clones_deep)
        ));
        out.push_str(&format!(
            "     \"bytes_per_interval\": {{\"dense\": {:.1}, \"delta_standalone\": {:.1}, \"delta_stateful\": {:.1}}},\n",
            per_iv(p.dense_bytes),
            per_iv(p.standalone_bytes),
            per_iv(p.stateful_bytes)
        ));
        out.push_str(&format!(
            "     \"elapsed_ms\": {{\"full\": {:.3}, \"incremental\": {:.3}, \"aggregate\": {:.3}}}}}{}\n",
            p.elapsed_full_ms,
            p.elapsed_incr_ms,
            p.elapsed_agg_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Wall-clock rows of the parallel sweep: deliberately *not* gated by
    // `--bench-check` (machine-dependent); the bit-identity and billed-
    // total contracts are asserted at generation time instead.
    out.push_str("  \"parallel_sweep\": [\n");
    for (i, p) in parallel.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"rounds\": {}, \"cores\": {}, \"intervals\": {}, \
             \"solutions\": {}, \"swept\": {}, \"pruned\": {}, \"billed_ops\": {}, \
             \"seq_elapsed_ms\": {:.3},\n",
            p.n,
            p.rounds,
            p.cores,
            p.intervals,
            p.solutions,
            p.swept,
            p.pruned,
            p.billed_ops,
            p.seq_elapsed_ms
        ));
        out.push_str("     \"threads\": [\n");
        for (j, r) in p.runs.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"requested\": {}, \"effective\": {}, \"elapsed_ms\": {:.3}, \
                 \"speedup\": {:.2}}}{}\n",
                r.threads_requested,
                r.threads_effective,
                r.elapsed_ms,
                r.speedup,
                if j + 1 < p.runs.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < parallel.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&render_tenancy_json(tenancy));
    out.push_str(&format!(
        "  \"repair\": {{\"n\": {}, \"crashed_node\": {}, \"crash_at_ms\": {}, \
         \"detections\": {}, \"re_report_msgs\": {}, \"re_report_bytes\": {}, \
         \"time_to_first_solution_ms\": {:.3}, \"elapsed_ms\": {:.3}}},\n",
        repair.n,
        repair.crashed_node,
        repair.crash_at_ms,
        repair.detections,
        repair.re_report_msgs,
        repair.re_report_bytes,
        repair.time_to_first_solution_ms,
        repair.elapsed_ms
    ));
    out.push_str(&format!(
        "  \"net_loopback\": {{\"available\": {}, \"n\": {}, \"intervals\": {}, \
         \"detections\": {}, \"interval_msgs\": {}, \"interval_frames\": {}, \
         \"standalone_frames\": {}, \"bytes_on_wire\": {}, \"reconnects\": {}, \
         \"intervals_per_sec\": {:.0}, \"elapsed_ms\": {:.3}}},\n",
        net.available,
        net.n,
        net.intervals,
        net.detections,
        net.interval_msgs,
        net.interval_frames,
        net.standalone_frames,
        net.bytes_on_wire,
        net.reconnects,
        net.intervals_per_sec,
        net.elapsed_ms
    ));
    out.push_str(&format!(
        "  \"reactor\": {{\"available\": {}, \"children\": {}, \"rounds\": {}, \
         \"intervals\": {}, \"detections\": {}, \"bytes_sent\": {}, \
         \"bytes_received\": {}, \"reconnects\": {}, \"syscalls\": {}, \
         \"intervals_per_sec\": {:.0}, \"elapsed_ms\": {:.3}}}\n",
        reactor.available,
        reactor.children,
        reactor.rounds,
        reactor.intervals,
        reactor.detections,
        reactor.bytes_sent,
        reactor.bytes_received,
        reactor.reconnects,
        reactor.syscalls,
        reactor.intervals_per_sec,
        reactor.elapsed_ms
    ));
    out.push_str("}\n");
    out
}

const BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");

fn run_bench_json() {
    let points = bench_points();
    let parallel = bench_parallel_sweep();
    let tenancy = bench_tenancy();
    let net = bench_net_loopback();
    let repair = bench_repair();
    let reactor = bench_reactor();
    if !net.available {
        eprintln!("note: loopback sockets unavailable — net_loopback row records zeros");
    }
    if !reactor.available {
        eprintln!("note: reactor scale run unavailable — reactor row records zeros");
    }
    let out = render_bench_json(&points, &parallel, &tenancy, &net, &repair, &reactor);
    std::fs::write(BENCH_JSON_PATH, &out).expect("write BENCH_hotpath.json");
    print!("{out}");
    eprintln!("written to {BENCH_JSON_PATH}");

    let last = points.last().expect("eight grid points");
    assert!(
        last.stateful_bytes < last.dense_bytes && last.standalone_bytes < last.dense_bytes,
        "delta encoding must beat dense at n = {}",
        last.n
    );
}

/// Every numeric value of `"key"` inside each `"section": {...}` object,
/// in file order — a deliberately dumb extractor for the regression gate
/// (no serde_json in the build environment; the file is our own
/// hand-formatted flat output). Scoping to the section keeps key names
/// like `"incremental"` from matching in `elapsed_ms`, which is
/// machine-dependent and must not be gated.
fn extract_all(json: &str, section: &str, key: &str) -> Vec<f64> {
    let sec_pat = format!("\"{section}\": {{");
    let key_pat = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&sec_pat) {
        let body_start = pos + sec_pat.len();
        let body_end = body_start
            + rest[body_start..]
                .find('}')
                .expect("section object is closed");
        let body = &rest[body_start..body_end];
        if let Some(kpos) = body.find(&key_pat) {
            let tail = &body[kpos + key_pat.len()..];
            let end = tail
                .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
                .unwrap_or(tail.len());
            if let Ok(v) = tail[..end].parse() {
                out.push(v);
            }
        }
        rest = &rest[body_end..];
    }
    out
}

/// `--bench-check`: regenerates the measurement grid in memory and fails
/// (exit 1) if any deterministic cost counter — overlap comparisons per
/// sweep mode, bytes per interval per codec — regressed by more than 10%
/// against the committed `BENCH_hotpath.json`. Wall-clock times are
/// machine-dependent and deliberately not gated.
fn run_bench_check() {
    const GATED_KEYS: [(&str, &str); 14] = [
        ("overlap_comparisons", "full_sweep"),
        ("overlap_comparisons", "incremental"),
        ("overlap_comparisons", "aggregate"),
        ("bytes_per_interval", "dense"),
        ("bytes_per_interval", "delta_standalone"),
        ("bytes_per_interval", "delta_stateful"),
        // The repair row is a deterministic simulation: recovery traffic
        // and simulated time-to-first-solution are gated; its wall-clock
        // `elapsed_ms` (like all elapsed times) is not.
        ("repair", "detections"),
        ("repair", "re_report_msgs"),
        ("repair", "re_report_bytes"),
        ("repair", "time_to_first_solution_ms"),
        // The tenancy rows are fully deterministic: billed routing +
        // comparison counts, detections, and codec byte costs per tenant
        // count. The sublinearity and bit-identity bars are asserted at
        // generation time; the gate catches cost creep.
        ("tenancy_cost", "registry_billed"),
        ("tenancy_cost", "relevant_touches"),
        ("tenancy_cost", "detections"),
        ("tenancy_bytes", "batched_per_interval"),
    ];
    let committed = std::fs::read_to_string(BENCH_JSON_PATH)
        .unwrap_or_else(|e| panic!("read committed {BENCH_JSON_PATH}: {e}"));
    let net = bench_net_loopback();
    let repair = bench_repair();
    let reactor = bench_reactor();
    // The parallel-sweep section holds only machine-dependent wall-clock
    // rows (its correctness contract is asserted when the suite runs), so
    // the check pass skips regenerating it rather than burn minutes on
    // ungated numbers. The tenancy suite is cheap and fully gated, so it
    // *is* regenerated (and its runtime assertions re-run) here.
    let current = render_bench_json(
        &bench_points(),
        &[],
        &bench_tenancy(),
        &net,
        &repair,
        &reactor,
    );

    let mut failures = Vec::new();
    for (section, key) in GATED_KEYS {
        let was = extract_all(&committed, section, key);
        let now = extract_all(&current, section, key);
        assert!(
            !was.is_empty() && was.len() == now.len(),
            "committed bench JSON lacks {} values for \"{section}.{key}\" (has {})",
            now.len(),
            was.len()
        );
        for (i, (w, n)) in was.iter().zip(&now).enumerate() {
            if *n > w * 1.10 {
                failures.push(format!(
                    "point {i}: \"{section}.{key}\" regressed {w:.1} -> {n:.1} (+{:.1}%)",
                    100.0 * (n - w) / w
                ));
            }
        }
    }

    // The net_loopback row is gated only when both the committed baseline
    // and this machine could actually run the TCP deployment; a row of
    // zeros (socketless environment) is recorded, not compared. Wall-clock
    // throughput is machine-dependent and never gated — only the
    // deterministic frame/byte/message counters are.
    const NET_GATED_KEYS: [&str; 4] = [
        "interval_msgs",
        "interval_frames",
        "standalone_frames",
        "bytes_on_wire",
    ];
    let committed_net_available = extract_all(&committed, "net_loopback", "intervals") != vec![0.0];
    if net.available && committed_net_available {
        for key in NET_GATED_KEYS {
            let was = extract_all(&committed, "net_loopback", key);
            let now = extract_all(&current, "net_loopback", key);
            match (was.first(), now.first()) {
                (Some(w), Some(n)) if *n > w * 1.10 => failures.push(format!(
                    "\"net_loopback.{key}\" regressed {w:.1} -> {n:.1} (+{:.1}%)",
                    100.0 * (n - w) / w
                )),
                (Some(_), Some(_)) => {}
                _ => failures.push(format!(
                    "committed bench JSON lacks \"net_loopback.{key}\" \
                     (regenerate with --bench-json)"
                )),
            }
        }
    } else {
        eprintln!(
            "bench check: net_loopback counters not gated (loopback sockets unavailable {})",
            if net.available {
                "in the committed baseline"
            } else {
                "here"
            }
        );
    }

    // The reactor row gates the same way: only when both sides could run
    // the 512-connection fan-in. `detections` and `bytes_received` (the
    // children's protocol payload) are deterministic with heartbeats and
    // retransmits off; `reconnects` must stay at its committed value
    // (zero — any reconnect under loopback is a reactor bug). `syscalls`
    // and wall-clock are scheduling-dependent and never gated.
    const REACTOR_GATED_KEYS: [&str; 3] = ["detections", "bytes_received", "reconnects"];
    let committed_reactor_available = extract_all(&committed, "reactor", "intervals") != vec![0.0];
    if reactor.available && committed_reactor_available {
        for key in REACTOR_GATED_KEYS {
            let was = extract_all(&committed, "reactor", key);
            let now = extract_all(&current, "reactor", key);
            match (was.first(), now.first()) {
                (Some(w), Some(n)) if *n > w * 1.10 => {
                    failures.push(format!("\"reactor.{key}\" regressed {w:.1} -> {n:.1}",))
                }
                (Some(_), Some(_)) => {}
                _ => failures.push(format!(
                    "committed bench JSON lacks \"reactor.{key}\" \
                     (regenerate with --bench-json)"
                )),
            }
        }
    } else {
        eprintln!(
            "bench check: reactor counters not gated (scale run unavailable {})",
            if reactor.available {
                "in the committed baseline"
            } else {
                "here"
            }
        );
    }

    if failures.is_empty() {
        eprintln!(
            "bench check passed: no gated counter regressed >10% vs committed BENCH_hotpath.json"
        );
    } else {
        for f in &failures {
            eprintln!("bench regression: {f}");
        }
        std::process::exit(1);
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--nodes" => args.nodes = next().parse().unwrap_or_else(|_| usage()),
            "--degree" => args.degree = next().parse().unwrap_or_else(|_| usage()),
            "--rounds" => args.rounds = next().parse().unwrap_or_else(|_| usage()),
            "--skip" => args.skip = next().parse().unwrap_or_else(|_| usage()),
            "--solo" => args.solo = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = next().parse().unwrap_or_else(|_| usage()),
            "--loss" => args.loss = next().parse().unwrap_or_else(|_| usage()),
            "--topology" => args.topology = next(),
            "--baseline" => args.baseline = true,
            "--crash" => {
                let spec = next();
                let Some((node, at)) = spec.split_once('@') else {
                    usage()
                };
                let node: u32 = node.parse().unwrap_or_else(|_| usage());
                let at_ms: u64 = at
                    .trim_end_matches("ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.crashes.push((node, at_ms));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    if std::env::args().any(|a| a == "--bench-json") {
        run_bench_json();
        return;
    }
    if std::env::args().any(|a| a == "--bench-check") {
        run_bench_check();
        return;
    }
    // Standalone tenancy suite (same rows as the `--bench-json`
    // `tenancy` section, printed as its JSON fragment) for re-measuring
    // the multi-tenant table — including its sublinearity and
    // bit-identity assertions — without the full grid.
    if std::env::args().any(|a| a == "--bench-tenancy") {
        print!("{}", render_tenancy_json(&bench_tenancy()));
        return;
    }
    // Standalone parallel-sweep suite (same rows as the `--bench-json`
    // `parallel_sweep` section) for re-measuring the speedup table
    // without the full grid.
    if std::env::args().any(|a| a == "--bench-parallel") {
        for p in bench_parallel_sweep() {
            eprintln!(
                "n = {}: {} intervals, {} solutions, {} swept, {} pruned, \
                 {} billed ops, sequential {:.1} ms",
                p.n, p.intervals, p.solutions, p.swept, p.pruned, p.billed_ops, p.seq_elapsed_ms
            );
            for r in p.runs {
                eprintln!(
                    "  threads {} (effective {}): {:.1} ms, {:.2}x",
                    r.threads_requested, r.threads_effective, r.elapsed_ms, r.speedup
                );
            }
        }
        return;
    }
    let args = parse_args();
    let n = args.nodes;

    let topo = match args.topology.as_str() {
        "tree" => Topology::dary_tree(n, args.degree, 1),
        "grid" => {
            let w = (n as f64).sqrt().ceil() as usize;
            Topology::grid(w, n.div_ceil(w))
        }
        "geometric" => Topology::random_geometric(n, 0.25, args.seed),
        "smallworld" => Topology::small_world(n, 4, 0.15, args.seed),
        "scalefree" => Topology::scale_free(n, 2, args.seed),
        _ => usage(),
    };
    let n = topo.len(); // grid may round up
    let tree = if args.topology == "tree" {
        SpanningTree::balanced_dary(n, args.degree)
    } else {
        // Degree-bounded BFS keeps the paper's d parameter meaningful on
        // hub-heavy topologies.
        SpanningTree::bfs_bounded(&topo, NodeId(0), args.degree.max(2))
    };
    println!(
        "network: {} nodes, {} links | tree: height {}, degree {}",
        n,
        topo.edge_count(),
        tree.height(),
        tree.max_degree()
    );

    let exec = RandomExecution::builder(n)
        .intervals_per_process(args.rounds)
        .skip_prob(args.skip)
        .solo_prob(args.solo)
        .seed(args.seed)
        .build();
    println!(
        "workload: {} intervals in {} rounds ({} causal messages)",
        exec.total_intervals(),
        args.rounds,
        exec.messages
    );

    let sim = SimConfig {
        seed: args.seed,
        link: LinkModel {
            min_delay: SimTime(200),
            max_delay: SimTime(4_000),
            drop_prob: args.loss,
        },
    };
    let mut dep = Deployment::new(
        topo.clone(),
        tree,
        &exec,
        DeployConfig {
            sim,
            interval_spacing: SimTime::from_millis(10),
            monitor: MonitorConfig {
                heartbeat_period: Some(SimTime::from_millis(100)),
                retransmit_period: (args.loss > 0.0).then(|| SimTime::from_millis(25)),
                ..Default::default()
            },
            repair_delay: SimTime::from_millis(250),
            ..Default::default()
        },
    );
    for &(node, at_ms) in &args.crashes {
        dep.schedule_crash(ProcessId(node), SimTime::from_millis(at_ms));
        println!("scheduled crash: node {node} at {at_ms}ms");
    }
    dep.run();

    let dets = dep.detections();
    println!("\n=== hierarchical detections: {} ===", dets.len());
    let rows: Vec<Vec<String>> = dets
        .iter()
        .map(|d| {
            vec![
                d.time.to_string(),
                d.at_node.to_string(),
                d.covered_processes().len().to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["time", "root", "coverage"], &rows));
    println!(
        "cost: {} interval msgs | {} total sends | {} hop-msgs | {} lost | peak queue {}",
        dep.interval_messages(),
        dep.metrics().sends,
        dep.metrics().hop_messages,
        dep.metrics().lost,
        dep.peak_queue_len()
    );

    if args.baseline {
        let mut cent =
            CentralizedDeployment::new(topo, NodeId(0), &exec, sim, SimTime::from_millis(10));
        cent.run();
        println!(
            "\n=== centralized baseline: {} detections | {} hop-msgs | sink queue {} | sink cmp {} ===",
            cent.detections().len(),
            cent.metrics().hop_messages,
            cent.sink_stats().peak_resident,
            cent.sink_ops(),
        );
        if !args.crashes.is_empty() {
            println!("(note: baseline ran crash-free — it cannot survive its sink)");
        }
    }
}
