//! `ftscp_sim` — parameterized simulation runner.
//!
//! Runs the fault-tolerant hierarchical detector (and optionally the
//! centralized baseline) over a simulated network and prints detections
//! and cost metrics. All knobs via flags:
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin ftscp_sim -- \
//!     --nodes 31 --degree 2 --rounds 8 --skip 0.1 --seed 7 \
//!     --crash 5@200ms --crash 0@400ms --baseline --loss 0.1
//! ```

use ftscp_analysis::report::render_table;
use ftscp_baselines::centralized::CentralizedDeployment;
use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::monitor::MonitorConfig;
use ftscp_simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::RandomExecution;

#[derive(Debug)]
struct Args {
    nodes: usize,
    degree: usize,
    rounds: usize,
    skip: f64,
    solo: f64,
    seed: u64,
    loss: f64,
    crashes: Vec<(u32, u64)>, // (node, ms)
    baseline: bool,
    topology: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            nodes: 15,
            degree: 2,
            rounds: 6,
            skip: 0.0,
            solo: 0.0,
            seed: 0,
            loss: 0.0,
            crashes: Vec::new(),
            baseline: false,
            topology: "tree".to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ftscp_sim [--nodes N] [--degree D] [--rounds P] [--skip F] \
         [--solo F] [--seed S] [--loss F] [--crash NODE@MSms]... \
         [--topology tree|grid|geometric|smallworld|scalefree] [--baseline]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--nodes" => args.nodes = next().parse().unwrap_or_else(|_| usage()),
            "--degree" => args.degree = next().parse().unwrap_or_else(|_| usage()),
            "--rounds" => args.rounds = next().parse().unwrap_or_else(|_| usage()),
            "--skip" => args.skip = next().parse().unwrap_or_else(|_| usage()),
            "--solo" => args.solo = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = next().parse().unwrap_or_else(|_| usage()),
            "--loss" => args.loss = next().parse().unwrap_or_else(|_| usage()),
            "--topology" => args.topology = next(),
            "--baseline" => args.baseline = true,
            "--crash" => {
                let spec = next();
                let Some((node, at)) = spec.split_once('@') else {
                    usage()
                };
                let node: u32 = node.parse().unwrap_or_else(|_| usage());
                let at_ms: u64 = at
                    .trim_end_matches("ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.crashes.push((node, at_ms));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let n = args.nodes;

    let topo = match args.topology.as_str() {
        "tree" => Topology::dary_tree(n, args.degree, 1),
        "grid" => {
            let w = (n as f64).sqrt().ceil() as usize;
            Topology::grid(w, n.div_ceil(w))
        }
        "geometric" => Topology::random_geometric(n, 0.25, args.seed),
        "smallworld" => Topology::small_world(n, 4, 0.15, args.seed),
        "scalefree" => Topology::scale_free(n, 2, args.seed),
        _ => usage(),
    };
    let n = topo.len(); // grid may round up
    let tree = if args.topology == "tree" {
        SpanningTree::balanced_dary(n, args.degree)
    } else {
        // Degree-bounded BFS keeps the paper's d parameter meaningful on
        // hub-heavy topologies.
        SpanningTree::bfs_bounded(&topo, NodeId(0), args.degree.max(2))
    };
    println!(
        "network: {} nodes, {} links | tree: height {}, degree {}",
        n,
        topo.edge_count(),
        tree.height(),
        tree.max_degree()
    );

    let exec = RandomExecution::builder(n)
        .intervals_per_process(args.rounds)
        .skip_prob(args.skip)
        .solo_prob(args.solo)
        .seed(args.seed)
        .build();
    println!(
        "workload: {} intervals in {} rounds ({} causal messages)",
        exec.total_intervals(),
        args.rounds,
        exec.messages
    );

    let sim = SimConfig {
        seed: args.seed,
        link: LinkModel {
            min_delay: SimTime(200),
            max_delay: SimTime(4_000),
            drop_prob: args.loss,
        },
    };
    let mut dep = Deployment::new(
        topo.clone(),
        tree,
        &exec,
        DeployConfig {
            sim,
            interval_spacing: SimTime::from_millis(10),
            monitor: MonitorConfig {
                heartbeat_period: Some(SimTime::from_millis(100)),
                retransmit_period: (args.loss > 0.0).then(|| SimTime::from_millis(25)),
                ..Default::default()
            },
            repair_delay: SimTime::from_millis(250),
            ..Default::default()
        },
    );
    for &(node, at_ms) in &args.crashes {
        dep.schedule_crash(ProcessId(node), SimTime::from_millis(at_ms));
        println!("scheduled crash: node {node} at {at_ms}ms");
    }
    dep.run();

    let dets = dep.detections();
    println!("\n=== hierarchical detections: {} ===", dets.len());
    let rows: Vec<Vec<String>> = dets
        .iter()
        .map(|d| {
            vec![
                d.time.to_string(),
                d.at_node.to_string(),
                d.covered_processes().len().to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["time", "root", "coverage"], &rows));
    println!(
        "cost: {} interval msgs | {} total sends | {} hop-msgs | {} lost | peak queue {}",
        dep.interval_messages(),
        dep.metrics().sends,
        dep.metrics().hop_messages,
        dep.metrics().lost,
        dep.peak_queue_len()
    );

    if args.baseline {
        let mut cent =
            CentralizedDeployment::new(topo, NodeId(0), &exec, sim, SimTime::from_millis(10));
        cent.run();
        println!(
            "\n=== centralized baseline: {} detections | {} hop-msgs | sink queue {} | sink cmp {} ===",
            cent.detections().len(),
            cent.metrics().hop_messages,
            cent.sink_stats().peak_resident,
            cent.sink_ops(),
        );
        if !args.crashes.is_empty() {
            println!("(note: baseline ran crash-free — it cannot survive its sink)");
        }
    }
}
