//! `ftscp_sim` — parameterized simulation runner.
//!
//! Runs the fault-tolerant hierarchical detector (and optionally the
//! centralized baseline) over a simulated network and prints detections
//! and cost metrics. All knobs via flags:
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin ftscp_sim -- \
//!     --nodes 31 --degree 2 --rounds 8 --skip 0.1 --seed 7 \
//!     --crash 5@200ms --crash 0@400ms --baseline --loss 0.1
//! ```
//!
//! `--bench-json` instead runs the zero-copy data-plane measurement suite
//! (Figure 5 workload shape, full 4-ary trees at n ∈ {64, 256, 1024}) and
//! writes `BENCH_hotpath.json` at the repository root: overlap
//! comparisons full vs incremental sweep, logical vs deep clock clones,
//! and encoded bytes per interval dense vs delta.

use ftscp_analysis::report::render_table;
use ftscp_baselines::centralized::CentralizedDeployment;
use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::monitor::MonitorConfig;
use ftscp_simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::RandomExecution;

#[derive(Debug)]
struct Args {
    nodes: usize,
    degree: usize,
    rounds: usize,
    skip: f64,
    solo: f64,
    seed: u64,
    loss: f64,
    crashes: Vec<(u32, u64)>, // (node, ms)
    baseline: bool,
    topology: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            nodes: 15,
            degree: 2,
            rounds: 6,
            skip: 0.0,
            solo: 0.0,
            seed: 0,
            loss: 0.0,
            crashes: Vec::new(),
            baseline: false,
            topology: "tree".to_string(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ftscp_sim [--nodes N] [--degree D] [--rounds P] [--skip F] \
         [--solo F] [--seed S] [--loss F] [--crash NODE@MSms]... \
         [--topology tree|grid|geometric|smallworld|scalefree] [--baseline] \
         | --bench-json"
    );
    std::process::exit(2);
}

/// One measured size point of the `--bench-json` suite.
struct BenchPoint {
    n: usize,
    h: u32,
    skip: f64,
    solo: f64,
    intervals: usize,
    detections: usize,
    ops_full: u64,
    ops_incr: u64,
    clones_logical: u64,
    clones_deep: u64,
    dense_bytes: usize,
    standalone_bytes: usize,
    stateful_bytes: usize,
    elapsed_full_ms: u128,
    elapsed_incr_ms: u128,
}

fn pct_saved(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (before.saturating_sub(after)) as f64 / before as f64
    }
}

/// Runs one Figure 5 workload row (full `d = 4` tree, `p = 6`, seed 7)
/// at one height and measures the data-plane hot paths before/after
/// style: the full pairwise sweep and per-message dense encoding are what
/// the seed implementation paid; the incremental sweep and delta codec
/// are what this tree pays. The clean row (`skip = solo = 0`) makes the
/// conjunction hold repeatedly (solution emission + Eq. (10) prune
/// exercised); the sparse row (`skip = 0.3`, `solo = 0.2`) keeps heads
/// resident longer, which is where the verdict cache earns its keep.
fn bench_point(h: u32, skip: f64, solo: f64) -> BenchPoint {
    use ftscp_core::{ConnCodec, HierarchicalDetector};
    use ftscp_intervals::codec::{encoded_interval_delta_len, encoded_interval_len};
    use ftscp_intervals::{Interval, SweepMode};
    use std::collections::BTreeMap;
    use std::time::Instant;

    let n = 4usize.pow(h);
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .skip_prob(skip)
        .solo_prob(solo)
        .seed(7)
        .build();
    let intervals: Vec<Interval> = exec.intervals_interleaved().into_iter().cloned().collect();
    let tree = SpanningTree::balanced_dary(n, 4);

    // Before: every enqueue re-runs the full pairwise head sweep.
    let t0 = Instant::now();
    let mut full = HierarchicalDetector::new(&tree).with_sweep_mode(SweepMode::Full);
    for iv in &intervals {
        full.feed(iv.clone());
    }
    let elapsed_full_ms = t0.elapsed().as_millis();
    let ops_full = full.ops().get();

    // After: cached pairwise verdicts; also the run we charge the clone
    // counters to (logical = what a Vec-backed clock layout would deep
    // copy, deep = CoW breaks the pooled layout actually performs).
    ftscp_vclock::reset_clone_stats();
    let t0 = Instant::now();
    let mut incr = HierarchicalDetector::new(&tree).with_sweep_mode(SweepMode::Incremental);
    for iv in &intervals {
        incr.feed(iv.clone());
    }
    let elapsed_incr_ms = t0.elapsed().as_millis();
    let ops_incr = incr.ops().get();
    let (clones_logical, clones_deep) = ftscp_vclock::clone_stats();

    assert_eq!(
        ftscp_core::faultcheck::detection_fingerprint(full.root_solutions()),
        ftscp_core::faultcheck::detection_fingerprint(incr.root_solutions()),
        "sweep modes diverged on the bench workload"
    );
    assert!(
        ops_incr < ops_full,
        "incremental sweep must do strictly fewer comparisons ({ops_incr} >= {ops_full})"
    );

    // Wire sizes over the same interval stream: legacy dense, delta with
    // no base (retransmit/resync frames), and delta over per-source
    // connection state (the live stream).
    let mut dense_bytes = 0usize;
    let mut standalone_bytes = 0usize;
    let mut stateful_bytes = 0usize;
    let mut conns: BTreeMap<u32, ConnCodec> = BTreeMap::new();
    for iv in &intervals {
        dense_bytes += encoded_interval_len(iv);
        standalone_bytes += encoded_interval_delta_len(iv, None);
        let codec = conns.entry(iv.source.0).or_default();
        stateful_bytes += codec.stateful_len(iv);
        codec.note_sent(iv);
    }

    BenchPoint {
        n,
        h,
        skip,
        solo,
        intervals: intervals.len(),
        detections: incr.root_solutions().len(),
        ops_full,
        ops_incr,
        clones_logical,
        clones_deep,
        dense_bytes,
        standalone_bytes,
        stateful_bytes,
        elapsed_full_ms,
        elapsed_incr_ms,
    }
}

fn run_bench_json() {
    let mut points = Vec::new();
    for &(skip, solo) in &[(0.0f64, 0.0f64), (0.3, 0.2)] {
        for h in [3u32, 4, 5] {
            eprintln!(
                "measuring h = {h} (n = {}), skip = {skip}, solo = {solo} ...",
                4usize.pow(h)
            );
            points.push(bench_point(h, skip, solo));
        }
    }
    // Hand-formatted JSON: the build environment has no serde_json.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(
        "  \"workload\": {\"tree_degree\": 4, \"intervals_per_process\": 6, \"seed\": 7},\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let per_iv = |total: usize| total as f64 / p.intervals.max(1) as f64;
        out.push_str(&format!(
            "    {{\"n\": {}, \"h\": {}, \"skip_prob\": {:.1}, \"solo_prob\": {:.1}, \
             \"intervals\": {}, \"detections\": {},\n",
            p.n, p.h, p.skip, p.solo, p.intervals, p.detections
        ));
        out.push_str(&format!(
            "     \"overlap_comparisons\": {{\"full_sweep\": {}, \"incremental\": {}, \"saved_pct\": {:.1}}},\n",
            p.ops_full,
            p.ops_incr,
            pct_saved(p.ops_full, p.ops_incr)
        ));
        out.push_str(&format!(
            "     \"clock_clones\": {{\"logical\": {}, \"deep_copies\": {}, \"elided_pct\": {:.1}}},\n",
            p.clones_logical,
            p.clones_deep,
            pct_saved(p.clones_logical, p.clones_deep)
        ));
        out.push_str(&format!(
            "     \"bytes_per_interval\": {{\"dense\": {:.1}, \"delta_standalone\": {:.1}, \"delta_stateful\": {:.1}}},\n",
            per_iv(p.dense_bytes),
            per_iv(p.standalone_bytes),
            per_iv(p.stateful_bytes)
        ));
        out.push_str(&format!(
            "     \"elapsed_ms\": {{\"full\": {}, \"incremental\": {}}}}}{}\n",
            p.elapsed_full_ms,
            p.elapsed_incr_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &out).expect("write BENCH_hotpath.json");
    print!("{out}");
    eprintln!("written to {path}");

    let last = points.last().expect("three points");
    assert!(
        last.stateful_bytes < last.dense_bytes && last.standalone_bytes < last.dense_bytes,
        "delta encoding must beat dense at n = {}",
        last.n
    );
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--nodes" => args.nodes = next().parse().unwrap_or_else(|_| usage()),
            "--degree" => args.degree = next().parse().unwrap_or_else(|_| usage()),
            "--rounds" => args.rounds = next().parse().unwrap_or_else(|_| usage()),
            "--skip" => args.skip = next().parse().unwrap_or_else(|_| usage()),
            "--solo" => args.solo = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = next().parse().unwrap_or_else(|_| usage()),
            "--loss" => args.loss = next().parse().unwrap_or_else(|_| usage()),
            "--topology" => args.topology = next(),
            "--baseline" => args.baseline = true,
            "--crash" => {
                let spec = next();
                let Some((node, at)) = spec.split_once('@') else {
                    usage()
                };
                let node: u32 = node.parse().unwrap_or_else(|_| usage());
                let at_ms: u64 = at
                    .trim_end_matches("ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                args.crashes.push((node, at_ms));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() {
    if std::env::args().any(|a| a == "--bench-json") {
        run_bench_json();
        return;
    }
    let args = parse_args();
    let n = args.nodes;

    let topo = match args.topology.as_str() {
        "tree" => Topology::dary_tree(n, args.degree, 1),
        "grid" => {
            let w = (n as f64).sqrt().ceil() as usize;
            Topology::grid(w, n.div_ceil(w))
        }
        "geometric" => Topology::random_geometric(n, 0.25, args.seed),
        "smallworld" => Topology::small_world(n, 4, 0.15, args.seed),
        "scalefree" => Topology::scale_free(n, 2, args.seed),
        _ => usage(),
    };
    let n = topo.len(); // grid may round up
    let tree = if args.topology == "tree" {
        SpanningTree::balanced_dary(n, args.degree)
    } else {
        // Degree-bounded BFS keeps the paper's d parameter meaningful on
        // hub-heavy topologies.
        SpanningTree::bfs_bounded(&topo, NodeId(0), args.degree.max(2))
    };
    println!(
        "network: {} nodes, {} links | tree: height {}, degree {}",
        n,
        topo.edge_count(),
        tree.height(),
        tree.max_degree()
    );

    let exec = RandomExecution::builder(n)
        .intervals_per_process(args.rounds)
        .skip_prob(args.skip)
        .solo_prob(args.solo)
        .seed(args.seed)
        .build();
    println!(
        "workload: {} intervals in {} rounds ({} causal messages)",
        exec.total_intervals(),
        args.rounds,
        exec.messages
    );

    let sim = SimConfig {
        seed: args.seed,
        link: LinkModel {
            min_delay: SimTime(200),
            max_delay: SimTime(4_000),
            drop_prob: args.loss,
        },
    };
    let mut dep = Deployment::new(
        topo.clone(),
        tree,
        &exec,
        DeployConfig {
            sim,
            interval_spacing: SimTime::from_millis(10),
            monitor: MonitorConfig {
                heartbeat_period: Some(SimTime::from_millis(100)),
                retransmit_period: (args.loss > 0.0).then(|| SimTime::from_millis(25)),
                ..Default::default()
            },
            repair_delay: SimTime::from_millis(250),
            ..Default::default()
        },
    );
    for &(node, at_ms) in &args.crashes {
        dep.schedule_crash(ProcessId(node), SimTime::from_millis(at_ms));
        println!("scheduled crash: node {node} at {at_ms}ms");
    }
    dep.run();

    let dets = dep.detections();
    println!("\n=== hierarchical detections: {} ===", dets.len());
    let rows: Vec<Vec<String>> = dets
        .iter()
        .map(|d| {
            vec![
                d.time.to_string(),
                d.at_node.to_string(),
                d.covered_processes().len().to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["time", "root", "coverage"], &rows));
    println!(
        "cost: {} interval msgs | {} total sends | {} hop-msgs | {} lost | peak queue {}",
        dep.interval_messages(),
        dep.metrics().sends,
        dep.metrics().hop_messages,
        dep.metrics().lost,
        dep.peak_queue_len()
    );

    if args.baseline {
        let mut cent =
            CentralizedDeployment::new(topo, NodeId(0), &exec, sim, SimTime::from_millis(10));
        cent.run();
        println!(
            "\n=== centralized baseline: {} detections | {} hop-msgs | sink queue {} | sink cmp {} ===",
            cent.detections().len(),
            cent.metrics().hop_messages,
            cent.sink_stats().peak_resident,
            cent.sink_ops(),
        );
        if !args.crashes.is_empty() {
            println!("(note: baseline ran crash-free — it cannot survive its sink)");
        }
    }
}
