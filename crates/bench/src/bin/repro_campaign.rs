//! Full measurement campaign: sweeps tree degree × height × workload
//! noise, runs the hierarchical algorithm and the centralized baseline on
//! identical simulated networks (in parallel), and writes one CSV with
//! every quantity EXPERIMENTS.md discusses.
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_campaign
//! ```

use ftscp_analysis::complexity::{central_messages_eq14, hier_messages_eq11};
use ftscp_analysis::measure::{run_paired_many, ExperimentConfig};
use ftscp_analysis::report::{render_table, write_csv};

fn main() {
    // The grid: every (d, h) the simulator handles comfortably, at three
    // noise levels.
    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for &(d, hs) in &[(2usize, &[3u32, 4, 5, 6][..]), (3, &[3, 4]), (4, &[2, 3])] {
        for &h in hs {
            for &(skip, solo) in &[(0.0, 0.0), (0.1, 0.05), (0.3, 0.2)] {
                configs.push(ExperimentConfig {
                    d,
                    h,
                    p: 6,
                    skip_prob: skip,
                    solo_prob: solo,
                    seed: 42,
                });
                labels.push((d, h, skip, solo));
            }
        }
    }
    eprintln!("running {} paired experiments...", configs.len());
    let runs = run_paired_many(&configs);

    let headers = [
        "d",
        "h",
        "n",
        "skip",
        "solo",
        "alpha_hat",
        "detections",
        "msgs_hier",
        "msgs_cent_hop",
        "msg_ratio",
        "cmp_hier_total",
        "cmp_hier_max_node",
        "cmp_cent_sink",
        "cmp_ratio_max_node",
        "queue_hier_max",
        "queue_cent_sink",
        "link_hier_max",
        "link_cent_max",
        "eq11_alpha_hat",
        "eq14_corrected",
    ];
    let mut rows = Vec::new();
    for ((d, h, skip, solo), run) in labels.iter().zip(&runs) {
        let m = run.measurement;
        let eq11 = hier_messages_eq11(6, *d as u64, *h, m.empirical_alpha.clamp(0.0, 0.999));
        let eq14 = central_messages_eq14(6, *d as u64, *h);
        rows.push(vec![
            d.to_string(),
            h.to_string(),
            m.n.to_string(),
            format!("{skip:.2}"),
            format!("{solo:.2}"),
            format!("{:.3}", m.empirical_alpha),
            m.hier_detections.to_string(),
            m.hier_messages.to_string(),
            m.central_hop_messages.to_string(),
            format!(
                "{:.2}",
                m.central_hop_messages as f64 / m.hier_messages.max(1) as f64
            ),
            m.hier_comparisons.to_string(),
            m.hier_max_node_comparisons.to_string(),
            m.central_comparisons.to_string(),
            format!(
                "{:.1}",
                m.central_comparisons as f64 / m.hier_max_node_comparisons.max(1) as f64
            ),
            m.hier_max_node_resident.to_string(),
            m.central_resident.to_string(),
            m.hier_max_edge_load.to_string(),
            m.central_max_edge_load.to_string(),
            format!("{eq11:.0}"),
            format!("{eq14:.0}"),
        ]);
    }
    println!("{}", render_table(&headers, &rows));
    match write_csv("campaign", &headers, &rows) {
        Ok(path) => println!("\ncampaign written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // Summary: the paper's three claims, quantified over the campaign.
    let clean: Vec<_> = labels
        .iter()
        .zip(&runs)
        .filter(|((_, _, skip, _), _)| *skip == 0.0)
        .collect();
    let msg_ratios: Vec<f64> = clean
        .iter()
        .map(|(_, r)| {
            r.measurement.central_hop_messages as f64 / r.measurement.hier_messages.max(1) as f64
        })
        .collect();
    let cmp_ratios: Vec<f64> = clean
        .iter()
        .map(|(_, r)| {
            r.measurement.central_comparisons as f64
                / r.measurement.hier_max_node_comparisons.max(1) as f64
        })
        .collect();
    println!("\nclean-round summary over {} points:", clean.len());
    println!(
        "  message ratio (cent/hier): min {:.2}, max {:.2}",
        msg_ratios.iter().cloned().fold(f64::MAX, f64::min),
        msg_ratios.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "  sink-vs-busiest-node comparison ratio: min {:.1}, max {:.1}",
        cmp_ratios.iter().cloned().fold(f64::MAX, f64::min),
        cmp_ratios.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "  detections agree on every row: {}",
        runs.iter()
            .all(|r| r.measurement.hier_detections == r.measurement.central_detections)
    );
}
