//! Reproduces the paper's worked examples — **Figures 1, 2 and 3** — as
//! real executions, printing what each figure demonstrates.
//!
//! ```text
//! cargo run -p ftscp-bench --release --bin repro_examples
//! ```

use ftscp_core::HierarchicalDetector;
use ftscp_intervals::{aggregate, definitely_holds, overlap, Interval};
use ftscp_simnet::{NodeId, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::scenarios;

fn show(iv: &Interval, name: &str) {
    println!("    {name}: min = {:?}, max = {:?}", iv.lo, iv.hi);
}

fn figure1() {
    println!("== Figure 1: nested intervals (the special case [7] assumed) ==");
    let exec = scenarios::figure1_nested(4);
    let ivs: Vec<Interval> = (0..4)
        .map(|i| exec.intervals_of(ProcessId(i))[0].clone())
        .collect();
    for (i, iv) in ivs.iter().enumerate() {
        show(iv, &format!("x{}", i + 1));
    }
    println!("  mins ascend, maxes descend — a nested chain:");
    for w in ivs.windows(2) {
        assert!(w[0].lo.strictly_less(&w[1].lo) && w[1].hi.strictly_less(&w[0].hi));
    }
    println!("  Definitely(Φ) holds: {}", definitely_holds(&ivs));
    println!("  But nesting is NOT necessary for Definitely — see Figure 3.\n");
}

fn figure3() {
    println!("== Figure 3: aggregation ⊓ on a non-nested Definitely set ==");
    let exec = scenarios::figure3_style_overlap(4);
    let ivs: Vec<Interval> = (0..4)
        .map(|i| exec.intervals_of(ProcessId(i))[0].clone())
        .collect();
    for (i, iv) in ivs.iter().enumerate() {
        show(iv, &format!("ivl P{}", i + 1));
    }
    let x = vec![ivs[0].clone(), ivs[2].clone()];
    let y = vec![ivs[1].clone(), ivs[3].clone()];
    let ax = aggregate(&x, ProcessId(0), 0, 2);
    let ay = aggregate(&y, ProcessId(1), 0, 2);
    println!("  X = {{P1, P3}}: overlap(X) = {}", definitely_holds(&x));
    println!("  Y = {{P2, P4}}: overlap(Y) = {}", definitely_holds(&y));
    show(&ax, "⊓X (u = join of mins, r = meet of maxes)");
    show(&ay, "⊓Y");
    println!("  overlap(⊓X, ⊓Y) = {}", overlap(&ax, &ay));
    let mut z = x;
    z.extend(y);
    println!(
        "  ⇒ Theorem 1: overlap(X ∪ Y) = {} (Definitely for all 4 processes)\n",
        definitely_holds(&z)
    );
}

fn figure2() {
    println!("== Figure 2: repeated detection + failure resilience ==");
    let exec = scenarios::figure2();
    println!(
        "{}",
        ftscp_workload::diagram::render(
            &exec,
            &ftscp_workload::diagram::DiagramOptions {
                max_width: 72,
                highlight: vec![exec
                    .intervals
                    .iter()
                    .flatten()
                    .filter(|iv| {
                        // the winning solution {x1, x3, x4, x5}
                        !(iv.source == ProcessId(1) && iv.seq == 0)
                    })
                    .flat_map(|iv| iv.coverage.iter().copied())
                    .collect()],
            },
        )
    );
    let x = |p: usize, s: usize| exec.intervals[p][s].clone();
    let (x1, x2, x3, x4, x5) = (x(0, 0), x(1, 0), x(1, 1), x(2, 0), x(3, 0));
    println!(
        "  {{x1,x2}} Definitely: {}",
        definitely_holds(&[x1.clone(), x2.clone()])
    );
    println!(
        "  {{x1,x3}} Definitely: {}",
        definitely_holds(&[x1.clone(), x3.clone()])
    );
    println!(
        "  {{x1,x2,x4,x5}} Definitely: {}  ← one-shot detection at P2 would doom this",
        definitely_holds(&[x1.clone(), x2.clone(), x4.clone(), x5.clone()])
    );
    println!(
        "  {{x1,x3,x4,x5}} Definitely: {}  ← repeated detection saves it",
        definitely_holds(&[x1.clone(), x3.clone(), x4.clone(), x5.clone()])
    );
    println!(
        "  {{x1,x3,x5}}    Definitely: {}  ← survives P3's failure (Fig. 2c)",
        definitely_holds(&[x1.clone(), x3.clone(), x5.clone()])
    );

    // Run the hierarchical detector end to end, with the failure.
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
    let tree = SpanningTree::from_parents(vec![
        Some(NodeId(1)),
        Some(NodeId(2)),
        None,
        Some(NodeId(2)),
    ]);
    let mut det = HierarchicalDetector::new(&tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }
    println!("\n  Hierarchical run (no failure):");
    for d in det.root_solutions() {
        println!("    detected at {} covering {:?}", d.at_node, d.coverage);
    }

    let mut det = HierarchicalDetector::new(&tree);
    let all = exec.intervals_interleaved();
    let (x1_feed, rest): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|iv| iv.source == ProcessId(0));
    for iv in rest {
        det.feed(iv.clone());
    }
    det.fail_node(ProcessId(2), &topo);
    for iv in x1_feed {
        det.feed(iv.clone());
    }
    println!("  Hierarchical run (P3 crashes before x1 completes):");
    for d in det.root_solutions() {
        println!(
            "    detected at {} (new root) covering {:?}",
            d.at_node, d.coverage
        );
    }
    println!();
}

fn main() {
    figure1();
    figure3();
    figure2();
    println!("All worked examples reproduced.");
}
