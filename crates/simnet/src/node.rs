//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (= process) in the simulated network.
///
/// Node ids are dense `0 .. n-1`. The detection layers map them 1:1 onto
/// `ftscp_vclock::ProcessId`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All node ids of an `n`-node network.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node id exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_basics() {
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(NodeId::from(4usize), NodeId(4));
        assert_eq!(NodeId(4).to_string(), "N4");
        assert_eq!(NodeId::all(3).count(), 3);
    }
}
