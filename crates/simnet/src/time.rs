//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Millisecond count (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(10) + SimTime(5);
        assert_eq!(t, SimTime(15));
        assert_eq!(t - SimTime(5), SimTime(10));
        assert_eq!(SimTime(3).saturating_sub(SimTime(9)), SimTime::ZERO);
        let mut u = SimTime(1);
        u += SimTime(2);
        assert_eq!(u, SimTime(3));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime(500).to_string(), "500µs");
        assert_eq!(SimTime(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500s");
    }
}
