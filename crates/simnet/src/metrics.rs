//! Message/hop/byte accounting.
//!
//! The paper's message-complexity comparison (§IV-A) charges a message that
//! traverses `h` hops as `h` point-to-point messages, "since the
//! communication channels are occupied h times". [`NetMetrics`] therefore
//! tracks both the end-to-end send count and the hop-weighted count; the
//! latter is the series plotted in Figures 4–5.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-node accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Messages this node originated.
    pub sent: u64,
    /// Messages delivered to this node.
    pub received: u64,
    /// Payload bytes this node originated.
    pub bytes_sent: u64,
}

/// Whole-network accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    /// End-to-end sends.
    pub sends: u64,
    /// Hop-weighted message count (each hop of each message counts once) —
    /// the unit of the paper's Eq. (11)/(14) comparison.
    pub hop_messages: u64,
    /// Hop-weighted bytes.
    pub hop_bytes: u64,
    /// Deliveries that completed.
    pub delivered: u64,
    /// Sends dropped because no alive route existed.
    pub undeliverable: u64,
    /// Deliveries dropped because the destination died in flight.
    pub dropped_dead_dst: u64,
    /// Messages lost to per-hop link loss.
    pub lost: u64,
    /// Extra copies scheduled by fault-injected duplication.
    pub duplicated: u64,
    /// Per-node counters.
    pub per_node: Vec<NodeMetrics>,
    /// Per-link traffic: messages that traversed each undirected edge
    /// (keys canonicalized `(lo, hi)`). The paper's §IV-A charges each
    /// hop as one channel occupation; this map shows *where* those
    /// occupations concentrate — the centralized algorithm funnels
    /// everything through the links around the sink.
    pub edge_load: BTreeMap<(u32, u32), u64>,
}

impl NetMetrics {
    /// Fresh metrics for an `n`-node network.
    pub fn new(n: usize) -> Self {
        NetMetrics {
            per_node: vec![NodeMetrics::default(); n],
            ..Default::default()
        }
    }

    /// Records an end-to-end send over a `hops`-long route.
    pub fn record_send(&mut self, src: NodeId, hops: usize, bytes: usize) {
        self.sends += 1;
        self.hop_messages += hops as u64;
        self.hop_bytes += (hops * bytes) as u64;
        let nm = &mut self.per_node[src.index()];
        nm.sent += 1;
        nm.bytes_sent += bytes as u64;
    }

    /// Records a completed delivery.
    pub fn record_delivery(&mut self, dst: NodeId) {
        self.delivered += 1;
        self.per_node[dst.index()].received += 1;
    }

    /// Records a send with no usable route.
    pub fn record_undeliverable(&mut self) {
        self.undeliverable += 1;
    }

    /// Records an in-flight message whose destination died.
    pub fn record_dropped_dead(&mut self) {
        self.dropped_dead_dst += 1;
    }

    /// Records a message lost to link-level loss.
    pub fn record_lost(&mut self) {
        self.lost += 1;
    }

    /// Records an extra copy created by fault-injected duplication.
    pub fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    /// Records one traversal of the undirected edge `{a, b}`.
    pub fn record_hop(&mut self, a: NodeId, b: NodeId) {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        *self.edge_load.entry(key).or_insert(0) += 1;
    }

    /// The most-loaded link and its traversal count — the congestion
    /// hotspot.
    pub fn hottest_edge(&self) -> Option<((u32, u32), u64)> {
        self.edge_load
            .iter()
            .max_by_key(|&(_, &v)| v)
            .map(|(&k, &v)| (k, v))
    }

    /// Peak per-link load (0 if nothing was sent).
    pub fn max_edge_load(&self) -> u64 {
        self.edge_load.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_weighting() {
        let mut m = NetMetrics::new(3);
        m.record_send(NodeId(0), 3, 100);
        m.record_send(NodeId(1), 1, 50);
        assert_eq!(m.sends, 2);
        assert_eq!(m.hop_messages, 4);
        assert_eq!(m.hop_bytes, 350);
        assert_eq!(m.per_node[0].sent, 1);
        assert_eq!(m.per_node[0].bytes_sent, 100);
    }

    #[test]
    fn edge_load_is_canonicalized_and_maxed() {
        let mut m = NetMetrics::new(3);
        m.record_hop(NodeId(2), NodeId(1));
        m.record_hop(NodeId(1), NodeId(2));
        m.record_hop(NodeId(0), NodeId(1));
        assert_eq!(m.edge_load.get(&(1, 2)), Some(&2));
        assert_eq!(m.hottest_edge(), Some(((1, 2), 2)));
        assert_eq!(m.max_edge_load(), 2);
    }

    #[test]
    fn delivery_and_drop_counters() {
        let mut m = NetMetrics::new(2);
        m.record_delivery(NodeId(1));
        m.record_undeliverable();
        m.record_dropped_dead();
        assert_eq!(m.delivered, 1);
        assert_eq!(m.per_node[1].received, 1);
        assert_eq!(m.undeliverable, 1);
        assert_eq!(m.dropped_dead_dst, 1);
    }
}
