//! # ftscp-simnet — deterministic asynchronous network simulation
//!
//! The paper targets "large-scale networks such as WSNs and modular
//! robotics" — real deployments we substitute with a deterministic
//! discrete-event simulator that preserves the paper's system model
//! (§II-A):
//!
//! * processes communicate **asynchronously** by message passing;
//! * channels are **reliable but non-FIFO** — every message samples its own
//!   per-hop delay, so later messages routinely overtake earlier ones;
//! * the network is an arbitrary **multi-hop topology** (not a complete
//!   graph): a message between distant nodes occupies one channel per hop,
//!   which is exactly how the paper charges message complexity for the
//!   centralized baseline (§IV-A);
//! * nodes may **crash** (crash-stop) at scheduled times;
//! * richer failure scenarios — crash-restart, network partitions,
//!   message duplication, reordering bursts, timer skew — are scripted
//!   through a deterministic, replayable [`FaultPlan`] (see [`fault`]).
//!
//! Determinism: all randomness comes from one seeded RNG, and simultaneous
//! events tie-break on a monotone sequence number, so a `(topology, apps,
//! seed)` triple always replays the identical execution — the property the
//! test-suite leans on.
//!
//! The crate is application-agnostic: [`Application`] is the behaviour
//! interface (init / message / timer callbacks), [`Simulation`] the driver,
//! [`Topology`] the graph substrate, and [`NetMetrics`] the message/hop/byte
//! accounting used to reproduce Figures 4–5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod sim;
pub mod time;
pub mod topology;

pub use event::TimerToken;
pub use fault::{ActiveFaults, FaultOp, FaultPlan, FaultPlanParams};
pub use metrics::{NetMetrics, NodeMetrics};
pub use node::NodeId;
pub use sim::{Application, Ctx, LinkModel, SimConfig, Simulation};
pub use time::SimTime;
pub use topology::Topology;
