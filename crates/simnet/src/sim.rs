//! The discrete-event simulation driver.

use crate::event::{EventKind, EventQueue, TimerToken};
use crate::fault::{ActiveFaults, FaultOp, FaultPlan};
use crate::metrics::NetMetrics;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-hop link delay model: every hop of every message samples an
/// independent uniform delay in `[min_delay, max_delay]`. Independent
/// sampling is what makes channels non-FIFO (a later message can draw a
/// shorter delay and overtake).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkModel {
    /// Minimum per-hop delay.
    pub min_delay: SimTime,
    /// Maximum per-hop delay.
    pub max_delay: SimTime,
    /// Per-hop loss probability (a message over `k` hops survives with
    /// probability `(1 - drop_prob)^k`) — the WSN radio reality that makes
    /// the monitor's acknowledgement/retransmission layer necessary.
    pub drop_prob: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            min_delay: SimTime(500),
            max_delay: SimTime(5_000),
            drop_prob: 0.0,
        }
    }
}

impl LinkModel {
    fn sample(&self, rng: &mut StdRng) -> SimTime {
        SimTime(rng.gen_range(self.min_delay.0..=self.max_delay.0))
    }

    fn survives_hop(&self, rng: &mut StdRng) -> bool {
        self.drop_prob <= 0.0 || rng.gen::<f64>() >= self.drop_prob
    }
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed: same seed ⇒ identical execution.
    pub seed: u64,
    /// Link delay model.
    pub link: LinkModel,
}

/// Behaviour of one node. Implementations are deterministic state machines;
/// all effects go through the [`Ctx`].
pub trait Application {
    /// Message type exchanged between nodes.
    type Msg: Clone;

    /// Called once at simulation start (time 0).
    fn on_init(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Called when a message is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _token: TimerToken) {}

    /// Approximate wire size of a message, for byte accounting.
    fn msg_size(_msg: &Self::Msg) -> usize {
        16
    }
}

/// Effect interface handed to application callbacks.
pub struct Ctx<'a, M> {
    me: NodeId,
    now: SimTime,
    n: usize,
    neighbors: &'a [NodeId],
    outbox: Vec<(NodeId, M, Option<usize>)>,
    timers: Vec<(SimTime, TimerToken)>,
}

impl<'a, M> Ctx<'a, M> {
    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// This node's topology neighbors (alive or not — liveness is only
    /// observable through the application's own heartbeats).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Sends `msg` to `dst`; the network routes it over the shortest alive
    /// path and delivers it after per-hop random delays. Byte accounting
    /// charges [`Application::msg_size`].
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.outbox.push((dst, msg, None));
    }

    /// Like [`send`](Self::send), but charges `size` bytes instead of
    /// [`Application::msg_size`]. For applications whose on-the-wire
    /// encoding is stateful (e.g. a per-connection delta codec), where the
    /// size of a message depends on what the connection already carried —
    /// a static size function cannot express that.
    pub fn send_sized(&mut self, dst: NodeId, msg: M, size: usize) {
        self.outbox.push((dst, msg, Some(size)));
    }

    /// Arms a one-shot timer `delay` from now.
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.timers.push((self.now + delay, token));
    }
}

/// Test utilities: drive an [`Application`] callback directly, without a
/// full simulation, and observe the effects it queued.
pub mod testkit {
    use super::*;

    /// Effects captured from a single callback invocation.
    #[derive(Debug)]
    pub struct Effects<M> {
        /// Messages the app sent: `(dst, msg)`.
        pub sends: Vec<(NodeId, M)>,
        /// Per-send byte-size overrides, index-aligned with `sends`:
        /// `Some(bytes)` for [`Ctx::send_sized`], `None` for [`Ctx::send`].
        pub send_sizes: Vec<Option<usize>>,
        /// Timers armed: `(fire_at, token)`.
        pub timers: Vec<(SimTime, TimerToken)>,
    }

    /// Invokes `f` with a detached [`Ctx`] for node `me` at time `now` in
    /// an `n`-node network with the given neighbor list, returning what
    /// the app emitted. Intended for unit-testing applications.
    pub fn drive<M>(
        me: NodeId,
        now: SimTime,
        n: usize,
        neighbors: &[NodeId],
        f: impl FnOnce(&mut Ctx<'_, M>),
    ) -> Effects<M> {
        let mut ctx = Ctx {
            me,
            now,
            n,
            neighbors,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        f(&mut ctx);
        let (sends, send_sizes) = ctx
            .outbox
            .into_iter()
            .map(|(dst, msg, size)| ((dst, msg), size))
            .unzip();
        Effects {
            sends,
            send_sizes,
            timers: ctx.timers,
        }
    }
}

/// The simulation: topology + one application instance per node + event
/// queue + metrics.
pub struct Simulation<A: Application> {
    topology: Topology,
    apps: Vec<A>,
    alive: Vec<bool>,
    queue: EventQueue<A::Msg>,
    metrics: NetMetrics,
    rng: StdRng,
    now: SimTime,
    config: SimConfig,
    initialized: bool,
    events_processed: u64,
    /// Scripted fault operations not yet applied, in application order.
    plan_ops: Vec<(SimTime, FaultOp)>,
    /// Index of the next unapplied operation in `plan_ops`.
    next_op: usize,
    /// Live fault state (cuts, windows, skew) the run loops consult.
    faults: ActiveFaults,
}

impl<A: Application> Simulation<A> {
    /// Builds a simulation; `apps[i]` runs on node `i`.
    pub fn new(topology: Topology, apps: Vec<A>, config: SimConfig) -> Self {
        assert_eq!(topology.len(), apps.len(), "one app per node");
        let n = topology.len();
        Simulation {
            topology,
            apps,
            alive: vec![true; n],
            queue: EventQueue::new(),
            metrics: NetMetrics::new(n),
            rng: StdRng::seed_from_u64(config.seed),
            now: SimTime::ZERO,
            config,
            initialized: false,
            events_processed: 0,
            plan_ops: Vec::new(),
            next_op: 0,
            faults: ActiveFaults::default(),
        }
    }

    /// Schedules `node` to crash-stop at `time`.
    pub fn schedule_crash(&mut self, node: NodeId, time: SimTime) {
        self.queue.push(time, EventKind::Crash { node });
    }

    /// Installs a [`FaultPlan`]: its operations apply at their scheduled
    /// times as the run loops advance, interleaved deterministically with
    /// ordinary events (an operation at time `t` applies before any event
    /// with time ≥ `t`; ties between operations keep plan insertion order).
    ///
    /// May be called repeatedly; later plans merge with the unapplied
    /// remainder of earlier ones. A plan draws no randomness of its own,
    /// so `(topology, apps, seed, plan)` always replays identically — and
    /// an empty/absent plan leaves the RNG stream untouched, so fault-free
    /// runs are byte-identical to pre-fault-injection builds.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.plan_ops.extend(plan.sorted_ops());
        self.plan_ops[self.next_op..].sort_by_key(|&(t, _)| t);
    }

    /// Time of the next unapplied fault operation, if any.
    fn next_fault_time(&self) -> Option<SimTime> {
        self.plan_ops.get(self.next_op).map(|&(t, _)| t)
    }

    /// Applies the next fault operation, advancing `now` to its time.
    fn apply_next_fault(&mut self) {
        let (at, op) = self.plan_ops[self.next_op].clone();
        self.next_op += 1;
        if self.now < at {
            self.now = at;
        }
        let n = self.apps.len();
        self.faults.apply(&op, &mut self.alive, n);
    }

    /// The live fault state (for assertions in tests).
    pub fn active_faults(&self) -> &ActiveFaults {
        &self.faults
    }

    /// Revives a crashed node immediately (crash-*recovery* support): the
    /// node becomes reachable again and may send/receive from now on. The
    /// application instance's in-memory state is untouched — modelling a
    /// reboot is the application's job (e.g. restoring from a checkpoint
    /// when it next runs). Pending timers armed before the crash were
    /// dropped at fire time and do not resurrect; the application must
    /// re-arm what it needs.
    pub fn revive(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
    }

    /// Invokes a callback on `node`'s application with a live [`Ctx`], so
    /// out-of-band controllers (a deployment harness) can let an app react
    /// to management actions with sends/timers. No-op on dead nodes.
    pub fn with_app_ctx(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        if !self.alive[node.index()] {
            return;
        }
        self.with_ctx(node, f);
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    /// Network size.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True iff the simulation has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Immutable access to node `i`'s application.
    pub fn app(&self, node: NodeId) -> &A {
        &self.apps[node.index()]
    }

    /// Mutable access to node `i`'s application (for test instrumentation).
    pub fn app_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.apps[node.index()]
    }

    /// All applications.
    pub fn apps(&self) -> &[A] {
        &self.apps
    }

    /// Liveness flags.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// True iff `node` has not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Message accounting.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until the event queue drains or `deadline` passes, whichever is
    /// first. Returns the number of events processed by this call (fault
    /// operations are applied but not counted).
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.ensure_init();
        let mut processed = 0;
        loop {
            // A fault op due no later than the next event (and within the
            // deadline) applies first — ties go to the fault, so a crash
            // at `t` suppresses deliveries at `t`.
            match (self.queue.peek_time(), self.next_fault_time()) {
                (ev_t, Some(op_t)) if op_t <= deadline && ev_t.is_none_or(|t| op_t <= t) => {
                    self.apply_next_fault();
                }
                (Some(t), _) if t <= deadline => {
                    let ev = self.queue.pop().expect("peeked");
                    self.now = ev.time;
                    self.dispatch(ev.kind);
                    processed += 1;
                }
                _ => break,
            }
        }
        // Time always advances to the deadline even if the queue drained.
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_processed += processed;
        processed
    }

    /// Runs until the event queue is empty and no fault operations remain
    /// (quiescence). `max_events` bounds runaway applications.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.ensure_init();
        let mut processed = 0;
        while processed < max_events {
            match (self.queue.peek_time(), self.next_fault_time()) {
                (ev_t, Some(op_t)) if ev_t.is_none_or(|t| op_t <= t) => {
                    self.apply_next_fault();
                }
                (Some(_), _) => {
                    let ev = self.queue.pop().expect("peeked");
                    self.now = ev.time;
                    self.dispatch(ev.kind);
                    processed += 1;
                }
                // (None, Some) is absorbed by the first arm (its guard is
                // vacuously true with no event pending).
                _ => break,
            }
        }
        self.events_processed += processed;
        processed
    }

    /// Delivers an out-of-band message to `node` as if sent by `from` —
    /// used by drivers that inject external stimuli.
    pub fn inject(&mut self, at: SimTime, from: NodeId, dst: NodeId, msg: A::Msg) {
        self.queue.push(
            at,
            EventKind::Deliver {
                src: from,
                dst,
                msg,
            },
        );
    }

    fn ensure_init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        // Operations scheduled at time zero precede everything — including
        // `on_init` callbacks (which run at time zero): a skew or window
        // starting at zero covers a node's very first sends and timers.
        while self.next_fault_time() == Some(SimTime::ZERO) {
            self.apply_next_fault();
        }
        for i in 0..self.apps.len() {
            let node = NodeId(i as u32);
            self.with_ctx(node, |app, ctx| app.on_init(ctx));
        }
    }

    fn dispatch(&mut self, kind: EventKind<A::Msg>) {
        match kind {
            EventKind::Deliver { src, dst, msg } => {
                if !self.alive[dst.index()] {
                    self.metrics.record_dropped_dead();
                    return;
                }
                self.metrics.record_delivery(dst);
                self.with_ctx(dst, |app, ctx| app.on_message(ctx, src, msg));
            }
            EventKind::Timer { node, token } => {
                if !self.alive[node.index()] {
                    return;
                }
                self.with_ctx(node, |app, ctx| app.on_timer(ctx, token));
            }
            EventKind::Crash { node } => {
                self.alive[node.index()] = false;
            }
        }
    }

    fn with_ctx(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        let mut ctx = Ctx {
            me: node,
            now: self.now,
            n: self.apps.len(),
            neighbors: self.topology.neighbors(node),
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        // Split borrow: the app is taken out of the slice context via index.
        // `neighbors` borrows the topology, `apps[node]` the app vector —
        // disjoint fields, but the compiler cannot see that through &mut
        // self, so dispatch through raw indices on separate locals.
        let apps = &mut self.apps;
        f(&mut apps[node.index()], &mut ctx);
        let Ctx { outbox, timers, .. } = ctx;
        for (dst, msg, size) in outbox {
            self.route_and_schedule(node, dst, msg, size);
        }
        for (at, token) in timers {
            // Fault-injected clock skew stretches/shrinks this node's timer
            // delays (identity when no skew is installed).
            let at = self.now + self.faults.timer_delay(node, at - self.now);
            self.queue.push(at, EventKind::Timer { node, token });
        }
    }

    fn route_and_schedule(
        &mut self,
        src: NodeId,
        dst: NodeId,
        msg: A::Msg,
        size_override: Option<usize>,
    ) {
        let size = size_override.unwrap_or_else(|| A::msg_size(&msg));
        if src == dst {
            // Loopback: no channel occupied.
            self.metrics.record_send(src, 0, size);
            self.queue
                .push(self.now + SimTime(1), EventKind::Deliver { src, dst, msg });
            return;
        }
        // Partition cuts filter routing without mutating the topology; the
        // unfiltered path is the common case and takes the original code
        // path (no closure, no extra work).
        let path = if self.faults.has_cuts() {
            let faults = &self.faults;
            self.topology
                .shortest_path_filtered(src, dst, &self.alive, |a, b| faults.edge_blocked(a, b))
        } else {
            self.topology.shortest_path(src, dst, &self.alive)
        };
        match path {
            Some(path) => {
                let mut delay = SimTime::ZERO;
                let mut survived_hops = 0usize;
                let mut lost = false;
                for hop in path.windows(2) {
                    delay += self.config.link.sample(&mut self.rng);
                    survived_hops += 1;
                    self.metrics.record_hop(hop[0], hop[1]);
                    if !self.config.link.survives_hop(&mut self.rng) {
                        lost = true;
                        break;
                    }
                }
                // Channels are charged for every hop actually attempted.
                self.metrics.record_send(src, survived_hops, size);
                if lost {
                    self.metrics.record_lost();
                    return;
                }
                // Fault windows. Each draw below is gated on its window
                // being active, so an inactive plan consumes zero RNG and
                // fault-free runs replay pre-existing seeded streams.
                if self.faults.reorder_prob > 0.0
                    && self.rng.gen::<f64>() < self.faults.reorder_prob
                {
                    delay += SimTime(self.rng.gen_range(0..=self.faults.reorder_window.0));
                }
                if self.faults.duplicate_prob > 0.0
                    && self.rng.gen::<f64>() < self.faults.duplicate_prob
                {
                    let extra = self.config.link.sample(&mut self.rng);
                    self.metrics.record_duplicate();
                    self.queue.push(
                        self.now + delay + extra,
                        EventKind::Deliver {
                            src,
                            dst,
                            msg: msg.clone(),
                        },
                    );
                }
                self.queue
                    .push(self.now + delay, EventKind::Deliver { src, dst, msg });
            }
            None => {
                self.metrics.record_undeliverable();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood app: node 0 starts a token; every node forwards the first copy
    /// it sees to all neighbors, counting receptions.
    #[derive(Default, Clone)]
    struct Flood {
        seen: bool,
        receptions: u32,
    }

    impl Application for Flood {
        type Msg = u32;

        fn on_init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == NodeId(0) {
                self.seen = true;
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                for nb in neighbors {
                    ctx.send(nb, 1);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
            self.receptions += 1;
            if !self.seen {
                self.seen = true;
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                for nb in neighbors {
                    ctx.send(nb, msg + 1);
                }
            }
        }
    }

    fn flood_sim(seed: u64) -> Simulation<Flood> {
        let topo = Topology::grid(4, 4);
        let apps = vec![Flood::default(); 16];
        Simulation::new(
            topo,
            apps,
            SimConfig {
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn flood_reaches_every_node() {
        let mut sim = flood_sim(3);
        sim.run_to_quiescence(100_000);
        assert!(sim.apps().iter().all(|a| a.seen));
        assert!(sim.metrics().delivered > 0);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let mut a = flood_sim(11);
        let mut b = flood_sim(11);
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.time(), b.time());
        let ra: Vec<u32> = a.apps().iter().map(|x| x.receptions).collect();
        let rb: Vec<u32> = b.apps().iter().map(|x| x.receptions).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_seeds_usually_differ_in_timing() {
        let mut a = flood_sim(1);
        let mut b = flood_sim(2);
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        assert_ne!(a.time(), b.time(), "independent delay draws");
    }

    #[test]
    fn crash_stops_delivery_and_timers() {
        struct Pinger;
        impl Application for Pinger {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
                panic!("dead node must not receive");
            }
        }
        let topo = Topology::line(2);
        let mut sim = Simulation::new(topo, vec![Pinger, Pinger], SimConfig::default());
        sim.schedule_crash(NodeId(1), SimTime(0));
        sim.run_to_quiescence(1000);
        assert_eq!(sim.metrics().dropped_dead_dst, 1);
        assert!(!sim.is_alive(NodeId(1)));
    }

    #[test]
    fn unroutable_send_counts_undeliverable() {
        struct Lonely;
        impl Application for Lonely {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(1), ());
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        }
        let topo = Topology::empty(2); // no edges at all
        let mut sim = Simulation::new(topo, vec![Lonely, Lonely], SimConfig::default());
        sim.run_to_quiescence(1000);
        assert_eq!(sim.metrics().undeliverable, 1);
        assert_eq!(sim.metrics().delivered, 0);
    }

    #[test]
    fn multi_hop_messages_bill_hops() {
        struct EndToEnd;
        impl Application for EndToEnd {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(3), ());
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn msg_size(_: &()) -> usize {
                10
            }
        }
        let topo = Topology::line(4);
        let mut sim = Simulation::new(
            topo,
            vec![EndToEnd, EndToEnd, EndToEnd, EndToEnd],
            SimConfig::default(),
        );
        sim.run_to_quiescence(1000);
        assert_eq!(sim.metrics().sends, 1);
        assert_eq!(sim.metrics().hop_messages, 3, "3 hops end-to-end");
        assert_eq!(sim.metrics().hop_bytes, 30);
    }

    #[test]
    fn send_sized_overrides_byte_accounting() {
        struct SizedSender;
        impl Application for SizedSender {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(1), ()); // charged msg_size() = 10
                    ctx.send_sized(NodeId(1), (), 3); // charged 3
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn msg_size(_: &()) -> usize {
                10
            }
        }
        let topo = Topology::line(2);
        let mut sim = Simulation::new(topo, vec![SizedSender, SizedSender], SimConfig::default());
        sim.run_to_quiescence(1000);
        assert_eq!(sim.metrics().sends, 2);
        assert_eq!(sim.metrics().hop_bytes, 13, "10 default + 3 override");
        assert_eq!(sim.metrics().per_node[0].bytes_sent, 13);
    }

    #[test]
    fn testkit_surfaces_size_overrides() {
        let effects = testkit::drive::<u32>(NodeId(0), SimTime(0), 2, &[], |ctx| {
            ctx.send(NodeId(1), 7);
            ctx.send_sized(NodeId(1), 8, 42);
        });
        assert_eq!(effects.sends, vec![(NodeId(1), 7), (NodeId(1), 8)]);
        assert_eq!(effects.send_sizes, vec![None, Some(42)]);
    }

    #[test]
    fn timers_fire_in_order_and_after_crash_are_dropped() {
        #[derive(Default)]
        struct TimerApp {
            fired: Vec<TimerToken>,
        }
        impl Application for TimerApp {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime(10), 1);
                ctx.set_timer(SimTime(5), 2);
                ctx.set_timer(SimTime(20), 3);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, token: TimerToken) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulation::new(
            Topology::line(2),
            vec![TimerApp::default(), TimerApp::default()],
            SimConfig::default(),
        );
        sim.schedule_crash(NodeId(1), SimTime(7));
        sim.run_to_quiescence(100);
        assert_eq!(sim.app(NodeId(0)).fired, vec![2, 1, 3]);
        assert_eq!(
            sim.app(NodeId(1)).fired,
            vec![2],
            "only the pre-crash timer"
        );
    }

    #[test]
    fn run_until_advances_time_to_deadline() {
        let mut sim = flood_sim(5);
        sim.run_until(SimTime(100));
        assert_eq!(sim.time(), SimTime(100));
    }

    #[test]
    fn fault_plan_replays_identically() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new()
            .crash_at(SimTime(2_000), NodeId(5))
            .partition_at(SimTime(1_000), &[NodeId(0), NodeId(1), NodeId(4)])
            .heal_at(SimTime(6_000))
            .duplicate_between(SimTime::ZERO, SimTime(20_000), 0.3)
            .reorder_between(SimTime(500), SimTime(10_000), SimTime(4_000), 0.5)
            .restart_at(SimTime(9_000), NodeId(5))
            .skew_timers_at(SimTime::ZERO, NodeId(2), 3, 2);
        let run = |()| {
            let mut sim = flood_sim(77);
            sim.apply_fault_plan(&plan);
            sim.run_to_quiescence(100_000);
            (sim.metrics().clone(), sim.time())
        };
        assert_eq!(run(()), run(()), "same seed + same plan ⇒ same run");
    }

    #[test]
    fn fault_free_plan_does_not_perturb_seeded_streams() {
        // An installed-but-empty plan must leave the execution identical
        // to no plan at all (no extra RNG draws, no timing changes).
        use crate::fault::FaultPlan;
        let mut a = flood_sim(11);
        let mut b = flood_sim(11);
        b.apply_fault_plan(&FaultPlan::new());
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.time(), b.time());
    }

    #[test]
    fn partition_blocks_crossing_traffic_until_heal() {
        use crate::fault::FaultPlan;
        struct Repeater;
        impl Application for Repeater {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.set_timer(SimTime(1_000), 1);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.send(NodeId(1), ());
                ctx.set_timer(SimTime(1_000), 1);
            }
        }
        let mut sim = Simulation::new(
            Topology::line(2),
            vec![Repeater, Repeater],
            SimConfig::default(),
        );
        sim.apply_fault_plan(
            &FaultPlan::new()
                .partition_at(SimTime::ZERO, &[NodeId(0)])
                .heal_at(SimTime(10_500)),
        );
        sim.run_until(SimTime(10_000));
        assert_eq!(sim.metrics().delivered, 0, "cut blocks everything");
        assert_eq!(sim.metrics().undeliverable, 10);
        sim.run_until(SimTime(30_000));
        assert!(sim.metrics().delivered > 0, "heal restores the route");
    }

    #[test]
    fn duplication_window_schedules_extra_copies() {
        use crate::fault::FaultPlan;
        let mut sim = flood_sim(3);
        sim.apply_fault_plan(&FaultPlan::new().duplicate_between(
            SimTime::ZERO,
            SimTime::from_secs(100),
            1.0,
        ));
        sim.run_to_quiescence(100_000);
        let m = sim.metrics();
        assert_eq!(m.duplicated, m.sends, "every send duplicated");
        assert_eq!(m.delivered, m.sends + m.duplicated);
        assert!(sim.apps().iter().all(|a| a.seen));
    }

    #[test]
    fn plan_crash_suppresses_then_restart_restores_delivery() {
        use crate::fault::FaultPlan;
        struct Repeater;
        impl Application for Repeater {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == NodeId(0) {
                    ctx.set_timer(SimTime(1_000), 1);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                ctx.send(NodeId(1), ());
                ctx.set_timer(SimTime(1_000), 1);
            }
        }
        let mut sim = Simulation::new(
            Topology::line(2),
            vec![Repeater, Repeater],
            SimConfig::default(),
        );
        sim.apply_fault_plan(
            &FaultPlan::new()
                .crash_at(SimTime(500), NodeId(1))
                .restart_at(SimTime(10_500), NodeId(1)),
        );
        sim.run_until(SimTime(10_000));
        assert_eq!(sim.metrics().delivered, 0);
        assert!(!sim.is_alive(NodeId(1)));
        sim.run_until(SimTime(30_000));
        assert!(sim.is_alive(NodeId(1)));
        assert!(sim.metrics().delivered > 0, "restart restores delivery");
    }

    #[test]
    fn timer_skew_stretches_local_timers() {
        use crate::fault::FaultPlan;
        #[derive(Default)]
        struct OneShot {
            fired_at: Option<SimTime>,
        }
        impl Application for OneShot {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime(1_000), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerToken) {
                self.fired_at = Some(ctx.now());
            }
        }
        let mut sim = Simulation::new(
            Topology::line(2),
            vec![OneShot::default(), OneShot::default()],
            SimConfig::default(),
        );
        sim.apply_fault_plan(&FaultPlan::new().skew_timers_at(SimTime::ZERO, NodeId(1), 3, 1));
        sim.run_to_quiescence(100);
        assert_eq!(sim.app(NodeId(0)).fired_at, Some(SimTime(1_000)));
        assert_eq!(
            sim.app(NodeId(1)).fired_at,
            Some(SimTime(3_000)),
            "3x slow clock"
        );
    }

    #[test]
    fn inject_delivers_external_messages() {
        let topo = Topology::line(2);
        let mut sim = Simulation::new(
            topo,
            vec![Flood::default(), Flood::default()],
            SimConfig::default(),
        );
        // Node 1 is not node 0, so it would never see the flood token; the
        // injected message reaches it directly.
        sim.inject(SimTime(50), NodeId(0), NodeId(1), 9);
        sim.run_to_quiescence(1000);
        assert!(sim.app(NodeId(1)).receptions >= 1);
    }
}
