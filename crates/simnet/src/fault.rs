//! Deterministic, scriptable fault injection.
//!
//! A [`FaultPlan`] is a time-ordered script of fault operations applied to
//! a [`Simulation`](crate::Simulation) as simulated time advances: process
//! crashes and restarts, network partitions and heals, message-duplication
//! and reordering windows, and per-node timer skew. The plan is pure data —
//! it draws no randomness of its own — so a `(topology, apps, seed, plan)`
//! quadruple always replays the identical execution, extending the
//! simulator's determinism guarantee to faulty runs. Replaying a failure
//! scenario byte-for-byte is what makes the fault-tolerance tests (§III-F
//! of the paper) debuggable.
//!
//! The primitives map onto the paper's system model like so:
//!
//! * **Crash / restart** — crash-stop and crash-recovery of monitor nodes,
//!   the §III-F failure model.
//! * **Partition / heal** — a cut of the communication graph `(P, L)`;
//!   messages crossing the cut are undeliverable until healed. Recovery
//!   relies on the monitor layer's retransmission, not the network.
//! * **Duplication** — link-layer retransmit duplicates; the monitor's
//!   per-child sequence numbers must deduplicate them.
//! * **Reordering** — bursts of extra non-FIFO delay, stressing the
//!   reorder buffers that restore per-child FIFO order.
//! * **Timer skew** — clock-rate drift of one node's local timers,
//!   stressing heartbeat/timeout tuning.

use crate::node::NodeId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One fault primitive, applied instantaneously at its scheduled time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Crash-stop `node`: it processes no further events.
    Crash(NodeId),
    /// Revive `node`. Its in-memory state is untouched and its pre-crash
    /// timers stay dead; modelling a reboot (checkpoint restore, timer
    /// re-arm) is the application/deployment layer's job.
    Restart(NodeId),
    /// Install a cut isolating `side` from the complement: every topology
    /// edge with exactly one endpoint in `side` becomes untraversable.
    /// Cuts stack — each `Partition` adds one.
    Partition(Vec<NodeId>),
    /// Remove every installed cut.
    Heal,
    /// Begin duplicating each successfully routed message with probability
    /// `prob` (the copy arrives later by one extra link-delay sample).
    DuplicateOn {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop duplicating.
    DuplicateOff,
    /// Begin adding an extra uniform delay in `[0, window]` to each routed
    /// message with probability `prob` — bursts of aggravated non-FIFO
    /// reordering.
    ReorderOn {
        /// Maximum extra delay.
        window: SimTime,
        /// Per-message perturbation probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop perturbing delays.
    ReorderOff,
    /// Scale all timer delays subsequently armed by `node` by `num / den`
    /// (a slow clock has `num > den`). `num = den` removes the skew.
    TimerSkew {
        /// The affected node.
        node: NodeId,
        /// Numerator of the scale factor.
        num: u32,
        /// Denominator of the scale factor.
        den: u32,
    },
}

/// A deterministic, replayable script of timed fault operations.
///
/// Build with the chained `*_at` / `*_between` methods; apply with
/// [`Simulation::apply_fault_plan`](crate::Simulation::apply_fault_plan).
/// Operations scheduled at the same instant apply in insertion order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    ops: Vec<(SimTime, FaultOp)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a raw operation.
    pub fn op_at(mut self, at: SimTime, op: FaultOp) -> Self {
        self.ops.push((at, op));
        self
    }

    /// Crash-stops `node` at `at`.
    pub fn crash_at(self, at: SimTime, node: NodeId) -> Self {
        self.op_at(at, FaultOp::Crash(node))
    }

    /// Revives `node` at `at`.
    pub fn restart_at(self, at: SimTime, node: NodeId) -> Self {
        self.op_at(at, FaultOp::Restart(node))
    }

    /// Isolates `side` from the rest of the network at `at`.
    pub fn partition_at(self, at: SimTime, side: &[NodeId]) -> Self {
        self.op_at(at, FaultOp::Partition(side.to_vec()))
    }

    /// Removes every cut at `at`.
    pub fn heal_at(self, at: SimTime) -> Self {
        self.op_at(at, FaultOp::Heal)
    }

    /// Duplicates messages with probability `prob` during `[from, to)`.
    pub fn duplicate_between(self, from: SimTime, to: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob out of [0,1]");
        assert!(from < to, "empty duplication window");
        self.op_at(from, FaultOp::DuplicateOn { prob })
            .op_at(to, FaultOp::DuplicateOff)
    }

    /// Adds up to `window` extra delay (probability `prob` per message)
    /// during `[from, to)`.
    pub fn reorder_between(self, from: SimTime, to: SimTime, window: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob out of [0,1]");
        assert!(from < to, "empty reorder window");
        self.op_at(from, FaultOp::ReorderOn { window, prob })
            .op_at(to, FaultOp::ReorderOff)
    }

    /// Scales `node`'s timer delays by `num / den` from `at` on.
    pub fn skew_timers_at(self, at: SimTime, node: NodeId, num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "skew factor must be positive");
        self.op_at(at, FaultOp::TimerSkew { node, num, den })
    }

    /// The scheduled operations in application order (stable-sorted by
    /// time, ties by insertion order).
    pub fn sorted_ops(&self) -> Vec<(SimTime, FaultOp)> {
        let mut ops = self.ops.clone();
        ops.sort_by_key(|&(t, _)| t);
        ops
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All crash times per node — lets deployment layers pre-compute
    /// repair actions for a plan.
    pub fn crashes(&self) -> Vec<(SimTime, NodeId)> {
        let mut out: Vec<(SimTime, NodeId)> = self
            .ops
            .iter()
            .filter_map(|(t, op)| match op {
                FaultOp::Crash(n) => Some((*t, *n)),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Synthesizes a randomized plan from `seed` — the fuel of the DST
    /// campaign (`ftscp-dst`). The plan is a pure function of
    /// `(params, seed)`: the same pair always yields the identical plan,
    /// so a failing campaign seed replays byte-for-byte and shrinks
    /// deterministically. Randomization covers every fault primitive:
    ///
    /// * up to `max_crashes` crash-stops with distinct victims at
    ///   randomized times — collapsed onto one instant with probability
    ///   `storm_prob` (a k-simultaneous failure storm, the compound
    ///   scenario scripted suites never cover);
    /// * each victim restarts later with probability `restart_prob`
    ///   (crash-recovery; the deployment must have checkpointing for
    ///   state to survive);
    /// * up to `max_partitions` non-overlapping partition windows, each
    ///   cutting a random proper subset of the network and healing
    ///   before the next opens;
    /// * a message-duplication window and an extra-delay reordering
    ///   window, each present with its configured probability;
    /// * per-node timer skew with probability `skew_prob`.
    pub fn randomized(params: &FaultPlanParams, seed: u64) -> FaultPlan {
        assert!(params.n >= 2, "randomized plans need at least two nodes");
        assert!(params.horizon > SimTime::ZERO, "empty fault horizon");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let horizon = params.horizon.0;
        let mut plan = FaultPlan::new();

        // Crashes (possibly a simultaneous storm), then their restarts.
        let crash_cap = params.max_crashes.min(params.n.saturating_sub(2));
        let crashes = if crash_cap == 0 {
            0
        } else {
            rng.gen_range(0..=crash_cap)
        };
        let mut victims: Vec<u32> = (0..params.n as u32).collect();
        victims.shuffle(&mut rng);
        victims.truncate(crashes);
        let storm = crashes >= 2 && rng.gen_bool(params.storm_prob);
        let storm_at = rng.gen_range(1..=horizon);
        for &v in &victims {
            let at = if storm {
                storm_at
            } else {
                rng.gen_range(1..=horizon)
            };
            plan = plan.crash_at(SimTime(at), NodeId(v));
            if rng.gen_bool(params.restart_prob) {
                let back = rng.gen_range(at + 1..=horizon + horizon / 2 + 2);
                plan = plan.restart_at(SimTime(back), NodeId(v));
            }
        }

        // Non-overlapping partition windows (Heal clears every cut, so
        // overlapping windows would heal each other early).
        let partitions = if params.max_partitions == 0 {
            0
        } else {
            rng.gen_range(0..=params.max_partitions)
        };
        let mut cursor = 1u64;
        for _ in 0..partitions {
            if cursor + 2 > horizon {
                break;
            }
            let from = rng.gen_range(cursor..=horizon - 1);
            let to = rng.gen_range(from + 1..=horizon);
            let side_len = rng.gen_range(1..params.n);
            let mut side: Vec<u32> = (0..params.n as u32).collect();
            side.shuffle(&mut rng);
            side.truncate(side_len);
            let side: Vec<NodeId> = side.into_iter().map(NodeId).collect();
            plan = plan.partition_at(SimTime(from), &side).heal_at(SimTime(to));
            cursor = to + 1;
        }

        // Duplication and reordering windows.
        if rng.gen_bool(params.duplication_prob) {
            let from = rng.gen_range(0..horizon);
            let to = rng.gen_range(from + 1..=horizon);
            let prob = rng.gen_range(0.1..=1.0);
            plan = plan.duplicate_between(SimTime(from), SimTime(to), prob);
        }
        if rng.gen_bool(params.reorder_prob) {
            let from = rng.gen_range(0..horizon);
            let to = rng.gen_range(from + 1..=horizon);
            let window = rng.gen_range(1..=horizon / 4 + 1);
            let prob = rng.gen_range(0.1..=1.0);
            plan = plan.reorder_between(SimTime(from), SimTime(to), SimTime(window), prob);
        }

        // Timer skew: one node's clock runs fast or slow.
        if rng.gen_bool(params.skew_prob) {
            let node = NodeId(rng.gen_range(0..params.n as u32));
            let &(num, den) = [(5u32, 4u32), (3, 2), (2, 1), (4, 5), (2, 3)]
                .choose(&mut rng)
                .expect("non-empty");
            plan = plan.skew_timers_at(SimTime(rng.gen_range(0..horizon)), node, num, den);
        }
        plan
    }

    /// All restart times per node.
    pub fn restarts(&self) -> Vec<(SimTime, NodeId)> {
        let mut out: Vec<(SimTime, NodeId)> = self
            .ops
            .iter()
            .filter_map(|(t, op)| match op {
                FaultOp::Restart(n) => Some((*t, *n)),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }
}

/// Knobs of [`FaultPlan::randomized`]: the network size, the time window
/// faults may land in, and per-primitive intensity. The defaults from
/// [`FaultPlanParams::for_network`] exercise every primitive with enough
/// probability that a few hundred seeds cover all combinations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlanParams {
    /// Network size (victims and partition sides are drawn from `0..n`).
    pub n: usize,
    /// Latest injection time; restarts may land up to 50% past it so a
    /// crash near the horizon still gets its recovery.
    pub horizon: SimTime,
    /// Cap on crash-stops per plan (further capped at `n - 2` so at
    /// least two nodes always survive).
    pub max_crashes: usize,
    /// Probability that a crashed node restarts later.
    pub restart_prob: f64,
    /// Probability that a multi-crash plan collapses all crash times
    /// onto one instant — a k-simultaneous failure storm.
    pub storm_prob: f64,
    /// Cap on partition/heal windows per plan.
    pub max_partitions: usize,
    /// Probability of a message-duplication window.
    pub duplication_prob: f64,
    /// Probability of a reordering (extra-delay) window.
    pub reorder_prob: f64,
    /// Probability of a timer-skew operation.
    pub skew_prob: f64,
}

impl FaultPlanParams {
    /// Default intensities for an `n`-node network with faults injected
    /// across `horizon`.
    pub fn for_network(n: usize, horizon: SimTime) -> Self {
        FaultPlanParams {
            n,
            horizon,
            max_crashes: 3,
            restart_prob: 0.4,
            storm_prob: 0.3,
            max_partitions: 2,
            duplication_prob: 0.4,
            reorder_prob: 0.5,
            skew_prob: 0.3,
        }
    }

    /// Restricts the plan to crash/restart faults only (no partitions,
    /// duplication, reordering, or skew) — used by campaign modes whose
    /// remaining fault coverage is tracked as a known-open ROADMAP item.
    pub fn crash_only(mut self) -> Self {
        self.max_partitions = 0;
        self.duplication_prob = 0.0;
        self.reorder_prob = 0.0;
        self.skew_prob = 0.0;
        self
    }
}

/// The live fault state a simulation consults while routing and timing.
/// Mutated only by [`FaultOp`] application; holds no randomness.
#[derive(Clone, Debug, Default)]
pub struct ActiveFaults {
    /// Installed cuts: per-cut membership flags (`true` = in `side`).
    cuts: Vec<Vec<bool>>,
    /// Current duplication probability (0 = off).
    pub duplicate_prob: f64,
    /// Current reorder window (irrelevant when `reorder_prob` is 0).
    pub reorder_window: SimTime,
    /// Current reorder probability (0 = off).
    pub reorder_prob: f64,
    /// Per-node timer scale factors (absent = no skew).
    skew: BTreeMap<u32, (u32, u32)>,
}

impl ActiveFaults {
    /// True iff any cut is installed (fast path for routing).
    pub fn has_cuts(&self) -> bool {
        !self.cuts.is_empty()
    }

    /// True iff the undirected edge `{a, b}` crosses an installed cut.
    pub fn edge_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.cuts
            .iter()
            .any(|side| side[a.index()] != side[b.index()])
    }

    /// Applies `node`'s current clock skew to a timer delay.
    ///
    /// Rounds up: a fast clock (`num < den`) must never scale a
    /// positive delay to zero, or an application that re-arms a timer
    /// for the remaining time to a fixed deadline (the monitor's
    /// interval schedule does) spins forever at one instant — the
    /// skewed timer keeps firing "early" at the same simulated time.
    pub fn timer_delay(&self, node: NodeId, delay: SimTime) -> SimTime {
        match self.skew.get(&node.0) {
            Some(&(num, den)) => SimTime((delay.0 * u64::from(num)).div_ceil(u64::from(den))),
            None => delay,
        }
    }

    /// Applies one operation. `alive` is the simulation's liveness vector;
    /// `n` the network size (for building cut membership).
    pub fn apply(&mut self, op: &FaultOp, alive: &mut [bool], n: usize) {
        match op {
            FaultOp::Crash(node) => alive[node.index()] = false,
            FaultOp::Restart(node) => alive[node.index()] = true,
            FaultOp::Partition(side) => {
                let mut member = vec![false; n];
                for v in side {
                    member[v.index()] = true;
                }
                self.cuts.push(member);
            }
            FaultOp::Heal => self.cuts.clear(),
            FaultOp::DuplicateOn { prob } => self.duplicate_prob = *prob,
            FaultOp::DuplicateOff => self.duplicate_prob = 0.0,
            FaultOp::ReorderOn { window, prob } => {
                self.reorder_window = *window;
                self.reorder_prob = *prob;
            }
            FaultOp::ReorderOff => {
                self.reorder_window = SimTime::ZERO;
                self.reorder_prob = 0.0;
            }
            FaultOp::TimerSkew { node, num, den } => {
                if num == den {
                    self.skew.remove(&node.0);
                } else {
                    self.skew.insert(node.0, (*num, *den));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .crash_at(SimTime(50), NodeId(2))
            .heal_at(SimTime(10))
            .restart_at(SimTime(50), NodeId(2));
        let ops = plan.sorted_ops();
        assert_eq!(ops[0].0, SimTime(10));
        assert_eq!(ops[1], (SimTime(50), FaultOp::Crash(NodeId(2))));
        assert_eq!(ops[2], (SimTime(50), FaultOp::Restart(NodeId(2))));
        assert_eq!(plan.crashes(), vec![(SimTime(50), NodeId(2))]);
        assert_eq!(plan.restarts(), vec![(SimTime(50), NodeId(2))]);
    }

    #[test]
    fn cuts_block_exactly_crossing_edges() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 4];
        af.apply(
            &FaultOp::Partition(vec![NodeId(0), NodeId(1)]),
            &mut alive,
            4,
        );
        assert!(af.has_cuts());
        assert!(af.edge_blocked(NodeId(1), NodeId(2)), "crossing");
        assert!(!af.edge_blocked(NodeId(0), NodeId(1)), "inside side");
        assert!(!af.edge_blocked(NodeId(2), NodeId(3)), "outside side");
        af.apply(&FaultOp::Heal, &mut alive, 4);
        assert!(!af.has_cuts());
        assert!(!af.edge_blocked(NodeId(1), NodeId(2)));
    }

    #[test]
    fn crash_and_restart_toggle_liveness() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 2];
        af.apply(&FaultOp::Crash(NodeId(1)), &mut alive, 2);
        assert!(!alive[1]);
        af.apply(&FaultOp::Restart(NodeId(1)), &mut alive, 2);
        assert!(alive[1]);
    }

    #[test]
    fn timer_skew_scales_and_clears() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 2];
        af.apply(
            &FaultOp::TimerSkew {
                node: NodeId(0),
                num: 3,
                den: 2,
            },
            &mut alive,
            2,
        );
        assert_eq!(af.timer_delay(NodeId(0), SimTime(100)), SimTime(150));
        assert_eq!(af.timer_delay(NodeId(1), SimTime(100)), SimTime(100));
        af.apply(
            &FaultOp::TimerSkew {
                node: NodeId(0),
                num: 1,
                den: 1,
            },
            &mut alive,
            2,
        );
        assert_eq!(af.timer_delay(NodeId(0), SimTime(100)), SimTime(100));
    }

    #[test]
    fn windows_toggle_knobs() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 1];
        af.apply(&FaultOp::DuplicateOn { prob: 0.5 }, &mut alive, 1);
        assert_eq!(af.duplicate_prob, 0.5);
        af.apply(&FaultOp::DuplicateOff, &mut alive, 1);
        assert_eq!(af.duplicate_prob, 0.0);
        af.apply(
            &FaultOp::ReorderOn {
                window: SimTime(9),
                prob: 1.0,
            },
            &mut alive,
            1,
        );
        assert_eq!(af.reorder_window, SimTime(9));
        af.apply(&FaultOp::ReorderOff, &mut alive, 1);
        assert_eq!(af.reorder_prob, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty duplication window")]
    fn degenerate_windows_rejected() {
        let _ = FaultPlan::new().duplicate_between(SimTime(5), SimTime(5), 0.1);
    }

    #[test]
    fn randomized_plans_are_pure_functions_of_seed() {
        let params = FaultPlanParams::for_network(9, SimTime::from_millis(500));
        for seed in 0..64 {
            assert_eq!(
                FaultPlan::randomized(&params, seed),
                FaultPlan::randomized(&params, seed),
                "seed {seed} must replay identically"
            );
        }
        // Sensitivity: across a window of seeds the plans are not all
        // equal (any single pair may collide on an empty plan).
        let distinct: std::collections::BTreeSet<usize> = (0..64)
            .map(|s| FaultPlan::randomized(&params, s).len())
            .collect();
        assert!(distinct.len() > 1, "seeds must actually vary the plan");
    }

    #[test]
    fn randomized_plans_respect_caps() {
        let horizon = SimTime::from_millis(300);
        let params = FaultPlanParams::for_network(5, horizon);
        for seed in 0..256 {
            let plan = FaultPlan::randomized(&params, seed);
            let crashes = plan.crashes();
            assert!(crashes.len() <= 3, "seed {seed}: crash cap is n - 2");
            let victims: std::collections::BTreeSet<u32> =
                crashes.iter().map(|&(_, n)| n.0).collect();
            assert_eq!(victims.len(), crashes.len(), "victims are distinct");
            for (t, op) in plan.sorted_ops() {
                assert!(
                    t <= SimTime(horizon.0 + horizon.0 / 2 + 2),
                    "seed {seed}: op beyond the horizon"
                );
                if let FaultOp::Partition(side) = op {
                    assert!(!side.is_empty() && side.len() < 5, "proper subset");
                }
            }
        }
    }

    #[test]
    fn storms_produce_simultaneous_crashes() {
        let params = FaultPlanParams {
            storm_prob: 1.0,
            max_crashes: 3,
            ..FaultPlanParams::for_network(8, SimTime::from_millis(200))
        };
        let storm_seed = (0..200)
            .find(|&s| FaultPlan::randomized(&params, s).crashes().len() >= 2)
            .expect("some seed yields a multi-crash plan");
        let crashes = FaultPlan::randomized(&params, storm_seed).crashes();
        let t0 = crashes[0].0;
        assert!(
            crashes.iter().all(|&(t, _)| t == t0),
            "storm collapses all crash times onto one instant"
        );
    }

    #[test]
    fn fast_clock_skew_never_scales_a_delay_to_zero() {
        // Regression: campaign seed 30 livelocked because a 2/3 clock
        // truncated a 1µs re-armed delay to 0, so the monitor's
        // deadline-chasing interval timer re-fired at the same instant
        // forever. The skew must round up.
        let mut faults = ActiveFaults::default();
        let mut alive = vec![true; 2];
        faults.apply(
            &FaultOp::TimerSkew {
                node: NodeId(1),
                num: 2,
                den: 3,
            },
            &mut alive,
            2,
        );
        assert_eq!(faults.timer_delay(NodeId(1), SimTime(1)), SimTime(1));
        assert_eq!(faults.timer_delay(NodeId(1), SimTime(3)), SimTime(2));
        assert_eq!(faults.timer_delay(NodeId(1), SimTime(0)), SimTime(0));
        // Exact multiples are untouched by the rounding.
        assert_eq!(faults.timer_delay(NodeId(1), SimTime(300)), SimTime(200));
    }

    #[test]
    fn crash_only_plans_carry_no_other_primitives() {
        let params = FaultPlanParams::for_network(6, SimTime::from_millis(200)).crash_only();
        for seed in 0..128 {
            for (_, op) in FaultPlan::randomized(&params, seed).sorted_ops() {
                assert!(
                    matches!(op, FaultOp::Crash(_) | FaultOp::Restart(_)),
                    "seed {seed}: unexpected op {op:?}"
                );
            }
        }
    }
}
