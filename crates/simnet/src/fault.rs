//! Deterministic, scriptable fault injection.
//!
//! A [`FaultPlan`] is a time-ordered script of fault operations applied to
//! a [`Simulation`](crate::Simulation) as simulated time advances: process
//! crashes and restarts, network partitions and heals, message-duplication
//! and reordering windows, and per-node timer skew. The plan is pure data —
//! it draws no randomness of its own — so a `(topology, apps, seed, plan)`
//! quadruple always replays the identical execution, extending the
//! simulator's determinism guarantee to faulty runs. Replaying a failure
//! scenario byte-for-byte is what makes the fault-tolerance tests (§III-F
//! of the paper) debuggable.
//!
//! The primitives map onto the paper's system model like so:
//!
//! * **Crash / restart** — crash-stop and crash-recovery of monitor nodes,
//!   the §III-F failure model.
//! * **Partition / heal** — a cut of the communication graph `(P, L)`;
//!   messages crossing the cut are undeliverable until healed. Recovery
//!   relies on the monitor layer's retransmission, not the network.
//! * **Duplication** — link-layer retransmit duplicates; the monitor's
//!   per-child sequence numbers must deduplicate them.
//! * **Reordering** — bursts of extra non-FIFO delay, stressing the
//!   reorder buffers that restore per-child FIFO order.
//! * **Timer skew** — clock-rate drift of one node's local timers,
//!   stressing heartbeat/timeout tuning.

use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One fault primitive, applied instantaneously at its scheduled time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Crash-stop `node`: it processes no further events.
    Crash(NodeId),
    /// Revive `node`. Its in-memory state is untouched and its pre-crash
    /// timers stay dead; modelling a reboot (checkpoint restore, timer
    /// re-arm) is the application/deployment layer's job.
    Restart(NodeId),
    /// Install a cut isolating `side` from the complement: every topology
    /// edge with exactly one endpoint in `side` becomes untraversable.
    /// Cuts stack — each `Partition` adds one.
    Partition(Vec<NodeId>),
    /// Remove every installed cut.
    Heal,
    /// Begin duplicating each successfully routed message with probability
    /// `prob` (the copy arrives later by one extra link-delay sample).
    DuplicateOn {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop duplicating.
    DuplicateOff,
    /// Begin adding an extra uniform delay in `[0, window]` to each routed
    /// message with probability `prob` — bursts of aggravated non-FIFO
    /// reordering.
    ReorderOn {
        /// Maximum extra delay.
        window: SimTime,
        /// Per-message perturbation probability in `[0, 1]`.
        prob: f64,
    },
    /// Stop perturbing delays.
    ReorderOff,
    /// Scale all timer delays subsequently armed by `node` by `num / den`
    /// (a slow clock has `num > den`). `num = den` removes the skew.
    TimerSkew {
        /// The affected node.
        node: NodeId,
        /// Numerator of the scale factor.
        num: u32,
        /// Denominator of the scale factor.
        den: u32,
    },
}

/// A deterministic, replayable script of timed fault operations.
///
/// Build with the chained `*_at` / `*_between` methods; apply with
/// [`Simulation::apply_fault_plan`](crate::Simulation::apply_fault_plan).
/// Operations scheduled at the same instant apply in insertion order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    ops: Vec<(SimTime, FaultOp)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a raw operation.
    pub fn op_at(mut self, at: SimTime, op: FaultOp) -> Self {
        self.ops.push((at, op));
        self
    }

    /// Crash-stops `node` at `at`.
    pub fn crash_at(self, at: SimTime, node: NodeId) -> Self {
        self.op_at(at, FaultOp::Crash(node))
    }

    /// Revives `node` at `at`.
    pub fn restart_at(self, at: SimTime, node: NodeId) -> Self {
        self.op_at(at, FaultOp::Restart(node))
    }

    /// Isolates `side` from the rest of the network at `at`.
    pub fn partition_at(self, at: SimTime, side: &[NodeId]) -> Self {
        self.op_at(at, FaultOp::Partition(side.to_vec()))
    }

    /// Removes every cut at `at`.
    pub fn heal_at(self, at: SimTime) -> Self {
        self.op_at(at, FaultOp::Heal)
    }

    /// Duplicates messages with probability `prob` during `[from, to)`.
    pub fn duplicate_between(self, from: SimTime, to: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob out of [0,1]");
        assert!(from < to, "empty duplication window");
        self.op_at(from, FaultOp::DuplicateOn { prob })
            .op_at(to, FaultOp::DuplicateOff)
    }

    /// Adds up to `window` extra delay (probability `prob` per message)
    /// during `[from, to)`.
    pub fn reorder_between(self, from: SimTime, to: SimTime, window: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob out of [0,1]");
        assert!(from < to, "empty reorder window");
        self.op_at(from, FaultOp::ReorderOn { window, prob })
            .op_at(to, FaultOp::ReorderOff)
    }

    /// Scales `node`'s timer delays by `num / den` from `at` on.
    pub fn skew_timers_at(self, at: SimTime, node: NodeId, num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "skew factor must be positive");
        self.op_at(at, FaultOp::TimerSkew { node, num, den })
    }

    /// The scheduled operations in application order (stable-sorted by
    /// time, ties by insertion order).
    pub fn sorted_ops(&self) -> Vec<(SimTime, FaultOp)> {
        let mut ops = self.ops.clone();
        ops.sort_by_key(|&(t, _)| t);
        ops
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All crash times per node — lets deployment layers pre-compute
    /// repair actions for a plan.
    pub fn crashes(&self) -> Vec<(SimTime, NodeId)> {
        let mut out: Vec<(SimTime, NodeId)> = self
            .ops
            .iter()
            .filter_map(|(t, op)| match op {
                FaultOp::Crash(n) => Some((*t, *n)),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// All restart times per node.
    pub fn restarts(&self) -> Vec<(SimTime, NodeId)> {
        let mut out: Vec<(SimTime, NodeId)> = self
            .ops
            .iter()
            .filter_map(|(t, op)| match op {
                FaultOp::Restart(n) => Some((*t, *n)),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }
}

/// The live fault state a simulation consults while routing and timing.
/// Mutated only by [`FaultOp`] application; holds no randomness.
#[derive(Clone, Debug, Default)]
pub struct ActiveFaults {
    /// Installed cuts: per-cut membership flags (`true` = in `side`).
    cuts: Vec<Vec<bool>>,
    /// Current duplication probability (0 = off).
    pub duplicate_prob: f64,
    /// Current reorder window (irrelevant when `reorder_prob` is 0).
    pub reorder_window: SimTime,
    /// Current reorder probability (0 = off).
    pub reorder_prob: f64,
    /// Per-node timer scale factors (absent = no skew).
    skew: BTreeMap<u32, (u32, u32)>,
}

impl ActiveFaults {
    /// True iff any cut is installed (fast path for routing).
    pub fn has_cuts(&self) -> bool {
        !self.cuts.is_empty()
    }

    /// True iff the undirected edge `{a, b}` crosses an installed cut.
    pub fn edge_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.cuts
            .iter()
            .any(|side| side[a.index()] != side[b.index()])
    }

    /// Applies `node`'s current clock skew to a timer delay.
    pub fn timer_delay(&self, node: NodeId, delay: SimTime) -> SimTime {
        match self.skew.get(&node.0) {
            Some(&(num, den)) => SimTime(delay.0 * u64::from(num) / u64::from(den)),
            None => delay,
        }
    }

    /// Applies one operation. `alive` is the simulation's liveness vector;
    /// `n` the network size (for building cut membership).
    pub fn apply(&mut self, op: &FaultOp, alive: &mut [bool], n: usize) {
        match op {
            FaultOp::Crash(node) => alive[node.index()] = false,
            FaultOp::Restart(node) => alive[node.index()] = true,
            FaultOp::Partition(side) => {
                let mut member = vec![false; n];
                for v in side {
                    member[v.index()] = true;
                }
                self.cuts.push(member);
            }
            FaultOp::Heal => self.cuts.clear(),
            FaultOp::DuplicateOn { prob } => self.duplicate_prob = *prob,
            FaultOp::DuplicateOff => self.duplicate_prob = 0.0,
            FaultOp::ReorderOn { window, prob } => {
                self.reorder_window = *window;
                self.reorder_prob = *prob;
            }
            FaultOp::ReorderOff => {
                self.reorder_window = SimTime::ZERO;
                self.reorder_prob = 0.0;
            }
            FaultOp::TimerSkew { node, num, den } => {
                if num == den {
                    self.skew.remove(&node.0);
                } else {
                    self.skew.insert(node.0, (*num, *den));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .crash_at(SimTime(50), NodeId(2))
            .heal_at(SimTime(10))
            .restart_at(SimTime(50), NodeId(2));
        let ops = plan.sorted_ops();
        assert_eq!(ops[0].0, SimTime(10));
        assert_eq!(ops[1], (SimTime(50), FaultOp::Crash(NodeId(2))));
        assert_eq!(ops[2], (SimTime(50), FaultOp::Restart(NodeId(2))));
        assert_eq!(plan.crashes(), vec![(SimTime(50), NodeId(2))]);
        assert_eq!(plan.restarts(), vec![(SimTime(50), NodeId(2))]);
    }

    #[test]
    fn cuts_block_exactly_crossing_edges() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 4];
        af.apply(
            &FaultOp::Partition(vec![NodeId(0), NodeId(1)]),
            &mut alive,
            4,
        );
        assert!(af.has_cuts());
        assert!(af.edge_blocked(NodeId(1), NodeId(2)), "crossing");
        assert!(!af.edge_blocked(NodeId(0), NodeId(1)), "inside side");
        assert!(!af.edge_blocked(NodeId(2), NodeId(3)), "outside side");
        af.apply(&FaultOp::Heal, &mut alive, 4);
        assert!(!af.has_cuts());
        assert!(!af.edge_blocked(NodeId(1), NodeId(2)));
    }

    #[test]
    fn crash_and_restart_toggle_liveness() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 2];
        af.apply(&FaultOp::Crash(NodeId(1)), &mut alive, 2);
        assert!(!alive[1]);
        af.apply(&FaultOp::Restart(NodeId(1)), &mut alive, 2);
        assert!(alive[1]);
    }

    #[test]
    fn timer_skew_scales_and_clears() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 2];
        af.apply(
            &FaultOp::TimerSkew {
                node: NodeId(0),
                num: 3,
                den: 2,
            },
            &mut alive,
            2,
        );
        assert_eq!(af.timer_delay(NodeId(0), SimTime(100)), SimTime(150));
        assert_eq!(af.timer_delay(NodeId(1), SimTime(100)), SimTime(100));
        af.apply(
            &FaultOp::TimerSkew {
                node: NodeId(0),
                num: 1,
                den: 1,
            },
            &mut alive,
            2,
        );
        assert_eq!(af.timer_delay(NodeId(0), SimTime(100)), SimTime(100));
    }

    #[test]
    fn windows_toggle_knobs() {
        let mut af = ActiveFaults::default();
        let mut alive = vec![true; 1];
        af.apply(&FaultOp::DuplicateOn { prob: 0.5 }, &mut alive, 1);
        assert_eq!(af.duplicate_prob, 0.5);
        af.apply(&FaultOp::DuplicateOff, &mut alive, 1);
        assert_eq!(af.duplicate_prob, 0.0);
        af.apply(
            &FaultOp::ReorderOn {
                window: SimTime(9),
                prob: 1.0,
            },
            &mut alive,
            1,
        );
        assert_eq!(af.reorder_window, SimTime(9));
        af.apply(&FaultOp::ReorderOff, &mut alive, 1);
        assert_eq!(af.reorder_prob, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty duplication window")]
    fn degenerate_windows_rejected() {
        let _ = FaultPlan::new().duplicate_between(SimTime(5), SimTime(5), 0.1);
    }
}
