//! Network topologies: generators and graph queries.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected communication graph `(P, L)` (§II-A of the paper).
///
/// In a wireless network a node can talk only to nodes within range, so the
/// graph is generally *not* complete and messages traverse multiple hops —
/// the premise of the paper's message-complexity comparison.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// An edgeless graph of `n` nodes.
    pub fn empty(n: usize) -> Topology {
        Topology {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds from an undirected edge list. Duplicate edges and self-loops
    /// are ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Topology {
        let mut t = Topology::empty(n);
        for &(a, b) in edges {
            t.add_edge(NodeId(a), NodeId(b));
        }
        t
    }

    /// Adds the undirected edge `{a, b}` (no-op for self-loops/duplicates).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        if !self.adj[a.index()].contains(&b) {
            self.adj[a.index()].push(b);
            self.adj[b.index()].push(a);
        }
    }

    /// Complete graph on `n` nodes.
    pub fn complete(n: usize) -> Topology {
        let mut t = Topology::empty(n);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                t.add_edge(NodeId(a), NodeId(b));
            }
        }
        t
    }

    /// Path graph `0 – 1 – … – n-1`.
    pub fn line(n: usize) -> Topology {
        let mut t = Topology::empty(n);
        for i in 1..n as u32 {
            t.add_edge(NodeId(i - 1), NodeId(i));
        }
        t
    }

    /// Cycle graph.
    pub fn ring(n: usize) -> Topology {
        let mut t = Topology::line(n);
        if n > 2 {
            t.add_edge(NodeId(0), NodeId(n as u32 - 1));
        }
        t
    }

    /// `w × h` grid (4-neighborhood), nodes numbered row-major — the shape
    /// of a modular-robot lattice.
    pub fn grid(w: usize, h: usize) -> Topology {
        let mut t = Topology::empty(w * h);
        let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.add_edge(id(x, y), id(x + 1, y));
                }
                if y + 1 < h {
                    t.add_edge(id(x, y), id(x, y + 1));
                }
            }
        }
        t
    }

    /// Complete `d`-ary tree topology on `n` nodes (node 0 the root, node
    /// `i`'s children are `i*d+1 ..= i*d+d`), **plus** sibling cross-links
    /// every `crosslink_every`-th node pair so that failure-time
    /// reconnection (§III-F) has neighbors to fall back on. Pass
    /// `crosslink_every = 0` for the bare tree.
    pub fn dary_tree(n: usize, d: usize, crosslink_every: usize) -> Topology {
        assert!(d >= 1, "degree must be positive");
        let mut t = Topology::empty(n);
        for i in 1..n {
            let parent = (i - 1) / d;
            t.add_edge(NodeId(parent as u32), NodeId(i as u32));
        }
        if crosslink_every > 0 {
            // Link node i to its successor at the same depth, periodically,
            // and every node to its grandparent: gives orphaned subtrees an
            // escape route when a parent dies.
            for i in (1..n).step_by(crosslink_every) {
                if i + 1 < n && !is_ancestor(i, i + 1, d) && !is_ancestor(i + 1, i, d) {
                    t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1));
                }
            }
            for i in 1..n {
                let parent = (i - 1) / d;
                if parent > 0 {
                    let grandparent = (parent - 1) / d;
                    t.add_edge(NodeId(i as u32), NodeId(grandparent as u32));
                }
            }
        }
        t
    }

    /// Random geometric graph: `n` points uniform in the unit square,
    /// linked when within `radius`. The classic WSN model. If the result is
    /// disconnected, the nearest nodes of different components are linked
    /// (so simulations always have a connected network).
    pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let mut t = Topology::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let (dx, dy) = (pts[a].0 - pts[b].0, pts[a].1 - pts[b].1);
                if (dx * dx + dy * dy).sqrt() <= radius {
                    t.add_edge(NodeId(a as u32), NodeId(b as u32));
                }
            }
        }
        // Stitch components together through closest pairs.
        loop {
            let comps = t.components(&vec![true; n]);
            if comps.len() <= 1 {
                break;
            }
            let (mut best, mut pair) = (f64::MAX, (0usize, 0usize));
            for &a in &comps[0] {
                for comp in &comps[1..] {
                    for &b in comp {
                        let (dx, dy) = (
                            pts[a.index()].0 - pts[b.index()].0,
                            pts[a.index()].1 - pts[b.index()].1,
                        );
                        let dist = (dx * dx + dy * dy).sqrt();
                        if dist < best {
                            best = dist;
                            pair = (a.index(), b.index());
                        }
                    }
                }
            }
            t.add_edge(NodeId(pair.0 as u32), NodeId(pair.1 as u32));
        }
        t
    }

    /// Watts–Strogatz small-world graph: a ring lattice where each node
    /// links to its `k/2` nearest neighbors on each side, with each edge
    /// rewired to a random endpoint with probability `beta`. Connectivity
    /// is restored by component stitching if rewiring disconnects it.
    pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
        assert!(k < n, "k must be < n");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::empty(n);
        for i in 0..n {
            for j in 1..=(k / 2) {
                let mut dst = (i + j) % n;
                if rng.gen::<f64>() < beta {
                    // Rewire to a random non-self target.
                    for _ in 0..8 {
                        let cand = rng.gen_range(0..n);
                        if cand != i {
                            dst = cand;
                            break;
                        }
                    }
                }
                t.add_edge(NodeId(i as u32), NodeId(dst as u32));
            }
        }
        t.stitch_components(&mut rng);
        t
    }

    /// Barabási–Albert preferential-attachment graph: nodes join one at a
    /// time, each linking to `m` existing nodes chosen proportionally to
    /// their degree — the heavy-tailed "hub" topology of many real
    /// networks.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Topology {
        assert!(m >= 1 && n > m, "need n > m ≥ 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Topology::empty(n);
        // Seed clique of m+1 nodes.
        for a in 0..=(m as u32) {
            for b in (a + 1)..=(m as u32) {
                t.add_edge(NodeId(a), NodeId(b));
            }
        }
        // Degree-weighted target list (each edge contributes both ends).
        let mut targets: Vec<usize> = Vec::new();
        for i in 0..=m {
            for _ in 0..t.neighbors(NodeId(i as u32)).len() {
                targets.push(i);
            }
        }
        for i in (m + 1)..n {
            let mut chosen = Vec::new();
            let mut guard = 0;
            while chosen.len() < m && guard < 64 * m {
                guard += 1;
                let pick = targets[rng.gen_range(0..targets.len())];
                if pick != i && !chosen.contains(&pick) {
                    chosen.push(pick);
                }
            }
            for &c in &chosen {
                t.add_edge(NodeId(i as u32), NodeId(c as u32));
                targets.push(c);
                targets.push(i);
            }
        }
        t
    }

    /// Links the nearest pair across components until connected (used by
    /// the random generators; "nearest" is just lowest-id here since not
    /// all generators have coordinates).
    fn stitch_components(&mut self, _rng: &mut StdRng) {
        loop {
            let comps = self.components(&vec![true; self.len()]);
            if comps.len() <= 1 {
                break;
            }
            let a = comps[0][0];
            let b = comps[1][0];
            self.add_edge(a, b);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum::<usize>() / 2
    }

    /// BFS shortest path from `src` to `dst` through nodes for which
    /// `alive` is true (endpoints must be alive). Returns the full node
    /// sequence including both endpoints, or `None` if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId, alive: &[bool]) -> Option<Vec<NodeId>> {
        self.shortest_path_filtered(src, dst, alive, |_, _| false)
    }

    /// [`shortest_path`](Self::shortest_path) with an additional edge
    /// filter: an edge `{u, v}` for which `blocked(u, v)` returns true is
    /// untraversable. Fault injection uses this to realize network
    /// partitions without mutating the topology.
    pub fn shortest_path_filtered(
        &self,
        src: NodeId,
        dst: NodeId,
        alive: &[bool],
        mut blocked: impl FnMut(NodeId, NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        if !alive[src.index()] || !alive[dst.index()] {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.adj.len();
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[src.index()] = true;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &v in &self.adj[u.index()] {
                if !seen[v.index()] && alive[v.index()] && !blocked(u, v) {
                    seen[v.index()] = true;
                    prev[v.index()] = Some(u);
                    if v == dst {
                        let mut path = vec![v];
                        let mut cur = v;
                        while let Some(p) = prev[cur.index()] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Hop distance between two alive nodes, if connected.
    pub fn distance(&self, src: NodeId, dst: NodeId, alive: &[bool]) -> Option<usize> {
        self.shortest_path(src, dst, alive).map(|p| p.len() - 1)
    }

    /// Connected components among alive nodes.
    pub fn components(&self, alive: &[bool]) -> Vec<Vec<NodeId>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if seen[s] || !alive[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::from([NodeId(s as u32)]);
            seen[s] = true;
            while let Some(u) = q.pop_front() {
                comp.push(u);
                for &v in &self.adj[u.index()] {
                    if !seen[v.index()] && alive[v.index()] {
                        seen[v.index()] = true;
                        q.push_back(v);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// True iff all alive nodes are mutually reachable.
    pub fn is_connected(&self, alive: &[bool]) -> bool {
        self.components(alive).len() <= 1
    }
}

/// True iff `a` is a (proper) ancestor of `b` in the implicit d-ary tree.
fn is_ancestor(a: usize, b: usize, d: usize) -> bool {
    let mut cur = b;
    while cur > 0 {
        cur = (cur - 1) / d;
        if cur == a {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_shapes() {
        let line = Topology::line(4);
        assert_eq!(line.edge_count(), 3);
        assert_eq!(line.neighbors(NodeId(0)), &[NodeId(1)]);
        let ring = Topology::ring(4);
        assert_eq!(ring.edge_count(), 4);
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let t = Topology::complete(5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.neighbors(NodeId(2)).len(), 4);
    }

    #[test]
    fn grid_neighborhoods() {
        let t = Topology::grid(3, 2);
        assert_eq!(t.len(), 6);
        // Corner has 2 neighbors, middle of the top row has 3.
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId(1)).len(), 3);
    }

    #[test]
    fn dary_tree_structure() {
        let t = Topology::dary_tree(7, 2, 0);
        // Root 0 children 1,2; node 1 children 3,4; node 2 children 5,6.
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.edge_count(), 6);
    }

    #[test]
    fn dary_tree_crosslinks_add_redundancy() {
        let bare = Topology::dary_tree(15, 2, 0);
        let linked = Topology::dary_tree(15, 2, 1);
        assert!(linked.edge_count() > bare.edge_count());
        // Killing node 1 disconnects the bare tree but not the cross-linked.
        let mut alive = vec![true; 15];
        alive[1] = false;
        assert!(!bare.is_connected(&alive));
        assert!(linked.is_connected(&alive));
    }

    #[test]
    fn shortest_path_respects_aliveness() {
        let t = Topology::line(5);
        let alive = vec![true; 5];
        let p = t.shortest_path(NodeId(0), NodeId(4), &alive).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(t.distance(NodeId(0), NodeId(4), &alive), Some(4));
        let mut broken = alive.clone();
        broken[2] = false;
        assert!(t.shortest_path(NodeId(0), NodeId(4), &broken).is_none());
    }

    #[test]
    fn path_to_self_is_trivial() {
        let t = Topology::line(3);
        let alive = vec![true; 3];
        assert_eq!(
            t.shortest_path(NodeId(1), NodeId(1), &alive).unwrap(),
            vec![NodeId(1)]
        );
        assert_eq!(t.distance(NodeId(1), NodeId(1), &alive), Some(0));
    }

    #[test]
    fn components_split_on_failures() {
        let t = Topology::line(5);
        let mut alive = vec![true; 5];
        alive[2] = false;
        let comps = t.components(&alive);
        assert_eq!(comps.len(), 2);
        assert!(!t.is_connected(&alive));
    }

    #[test]
    fn random_geometric_is_connected_and_deterministic() {
        let a = Topology::random_geometric(40, 0.18, 7);
        let b = Topology::random_geometric(40, 0.18, 7);
        assert_eq!(a, b, "same seed, same graph");
        assert!(a.is_connected(&[true; 40]));
    }

    #[test]
    fn small_world_is_connected_and_deterministic() {
        let a = Topology::small_world(30, 4, 0.2, 5);
        let b = Topology::small_world(30, 4, 0.2, 5);
        assert_eq!(a, b);
        assert!(a.is_connected(&[true; 30]));
        // Average degree ≈ k.
        let avg = 2.0 * a.edge_count() as f64 / 30.0;
        assert!((3.0..=4.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn small_world_beta_zero_is_ring_lattice() {
        let t = Topology::small_world(12, 4, 0.0, 1);
        // Every node has exactly k = 4 neighbors.
        for i in 0..12u32 {
            assert_eq!(t.neighbors(NodeId(i)).len(), 4);
        }
    }

    #[test]
    fn scale_free_has_hubs() {
        let t = Topology::scale_free(60, 2, 7);
        assert!(t.is_connected(&[true; 60]));
        let max_deg = (0..60u32)
            .map(|i| t.neighbors(NodeId(i)).len())
            .max()
            .unwrap();
        let min_deg = (0..60u32)
            .map(|i| t.neighbors(NodeId(i)).len())
            .min()
            .unwrap();
        assert!(
            max_deg >= 8,
            "preferential attachment grows hubs (max {max_deg})"
        );
        assert!(min_deg >= 2, "every late node brings m = 2 links");
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut t = Topology::empty(3);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(1), NodeId(0));
        t.add_edge(NodeId(2), NodeId(2));
        assert_eq!(t.edge_count(), 1);
    }
}
