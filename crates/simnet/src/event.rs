//! The event queue of the discrete-event core.

use crate::node::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque token identifying an application timer.
pub type TimerToken = u64;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// End-to-end delivery of an application message at `dst`.
    Deliver {
        /// Originating node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Application payload.
        msg: M,
    },
    /// An application timer fires at `node`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Token passed back to the application.
        token: TimerToken,
    },
    /// `node` crash-stops.
    Crash {
        /// The failing node.
        node: NodeId,
    },
}

/// A scheduled event. Ordered by `(time, seq)`; `seq` is a global monotone
/// counter that makes simultaneous events deterministic.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub time: SimTime,
    /// Determinism tie-breaker.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of events with a monotone sequence counter.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(
            SimTime(30),
            EventKind::Timer {
                node: NodeId(0),
                token: 3,
            },
        );
        q.push(
            SimTime(10),
            EventKind::Timer {
                node: NodeId(0),
                token: 1,
            },
        );
        q.push(
            SimTime(20),
            EventKind::Timer {
                node: NodeId(0),
                token: 2,
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo_by_seq() {
        let mut q: EventQueue<()> = EventQueue::new();
        for token in 0..5 {
            q.push(
                SimTime(7),
                EventKind::Timer {
                    node: NodeId(0),
                    token,
                },
            );
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "insertion order preserved");
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(9), EventKind::Crash { node: NodeId(1) });
        q.push(SimTime(4), EventKind::Crash { node: NodeId(2) });
        assert_eq!(q.peek_time(), Some(SimTime(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
