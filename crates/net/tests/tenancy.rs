//! Multi-tenant differential over real sockets: a registry served behind
//! TCP with predicate-tagged batch frames must detect, per tenant,
//! exactly what the in-memory registry detects on the same execution —
//! and the batched uplink must cost fewer bytes than per-predicate
//! framing of the same routed traffic.

use ftscp_core::registry::{PredicateRegistry, TenantSpec};
use ftscp_core::PredicateId;
use ftscp_net::sockets_available;
use ftscp_net::tenancy::{run_tenancy, TenancyConfig};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::RandomExecution;

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::full(PredicateId(0)),
        TenantSpec::restricted(PredicateId(1), vec![ProcessId(3), ProcessId(10)]),
        TenantSpec::restricted(
            PredicateId(2),
            vec![ProcessId(1), ProcessId(5), ProcessId(6)],
        ),
        TenantSpec::restricted(PredicateId(7), vec![ProcessId(4)]),
    ]
}

#[test]
fn socket_tenancy_matches_in_memory_registry() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this sandbox");
        return;
    }
    let n = 13;
    let tree = SpanningTree::balanced_dary(n, 3);
    let specs = specs();
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(41)
        .build();

    let report = run_tenancy(&tree, &specs, &exec, &TenancyConfig::default())
        .expect("tenancy run over loopback");

    // Reference: the same registry fed in memory through the relevance
    // filter, in canonical interleaved order.
    let mut reference = PredicateRegistry::new(&tree, &specs);
    for iv in exec.intervals_interleaved() {
        reference.ingest(iv.clone());
    }

    assert!(report.total_detections > 0, "the run must detect something");
    assert_eq!(report.solution_sequences.len(), specs.len());
    for (id, seq) in &report.solution_sequences {
        assert_eq!(
            seq,
            &reference.tenant(*id).solution_sequence(),
            "tenant {id:?} diverged socket-vs-memory"
        );
    }

    // The whole point of the batch frame: cheaper than per-predicate
    // uplinks carrying the same routed intervals.
    assert!(
        report.batched_bytes < report.naive_bytes,
        "batched uplink ({}) must beat per-predicate framing ({})",
        report.batched_bytes,
        report.naive_bytes
    );
    assert_eq!(report.events_sent, (n as u64) * 6);
}

#[test]
fn socket_tenancy_single_tenant_degenerates_cleanly() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this sandbox");
        return;
    }
    let n = 7;
    let tree = SpanningTree::balanced_dary(n, 2);
    let specs = vec![TenantSpec::full(PredicateId(0))];
    let exec = RandomExecution::builder(n)
        .intervals_per_process(4)
        .seed(5)
        .build();
    let report = run_tenancy(&tree, &specs, &exec, &TenancyConfig::default())
        .expect("tenancy run over loopback");
    let mut reference = PredicateRegistry::new(&tree, &specs);
    for iv in exec.intervals_interleaved() {
        reference.ingest(iv.clone());
    }
    assert_eq!(
        report.solution_sequences[0].1,
        reference.tenant(PredicateId(0)).solution_sequence()
    );
    assert_eq!(report.total_detections, 4);
}
