//! Whole-node crash recovery over real sockets, differentially verified.
//!
//! The decentralized repair path (heartbeat suspicion → grandparent
//! adoption → re-reports, `ftscp_core::membership`) runs on two
//! backends: the deterministic simulator in `RepairMode::HeartbeatDriven`
//! and the TCP runtime on loopback. These tests kill real nodes mid-run
//! and assert the survivors converge to the same solution sequence on
//! both — the repaired tree must be an implementation detail invisible
//! in *what* is detected.
//!
//! Determinism caveat the tests are built around: an interval that the
//! dead parent already acknowledged dies with the parent's queues (the
//! reliability layer only re-sends *unacked* state after adoption). So a
//! bit-identical cross-backend comparison needs a crash schedule where
//! the doomed node never holds subtree data: the crashed process
//! contributes no intervals of its own, and it dies before the first
//! interval of its subtree exists on either backend. Everything after
//! that is covered by the delivery-order-invariance guarantee.

use ftscp_core::deploy::{DeployConfig, Deployment as SimDeployment, RepairMode};
use ftscp_core::faultcheck::solution_fingerprint;
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::report::GlobalDetection;
use ftscp_net::loopback::{sockets_available, Deployment, LoopbackConfig};
use ftscp_simnet::{LinkModel, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{Execution, ExecutionBuilder, RandomExecution};
use std::thread::sleep;
use std::time::Duration;

fn coverages(dets: &[GlobalDetection]) -> Vec<Vec<(u32, u64)>> {
    dets.iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

/// `rounds` gossip rounds over every process except `excluded`: one
/// guaranteed global solution per round among the participants, zero
/// intervals on the excluded process (see the module doc for why).
fn rounds_without(n: usize, excluded: ProcessId, rounds: usize) -> Execution {
    rounds_without_set(n, &[excluded], rounds)
}

/// As [`rounds_without`], excluding a whole set of processes.
fn rounds_without_set(n: usize, excluded: &[ProcessId], rounds: usize) -> Execution {
    let mut b = ExecutionBuilder::new(n);
    let procs: Vec<ProcessId> = ProcessId::all(n)
        .filter(|p| !excluded.contains(p))
        .collect();
    for round in 0..rounds {
        for &p in &procs {
            b.begin_interval(p);
        }
        // Coordinator gossip: everyone meets the coordinator inside the
        // interval, so all participant intervals pairwise overlap.
        let coord = procs[round % procs.len()];
        let mut inbound = Vec::new();
        for &p in &procs {
            if p != coord {
                inbound.push(b.send(p, coord));
            }
        }
        for m in inbound {
            b.recv(coord, m);
        }
        let mut outbound = Vec::new();
        for &p in &procs {
            if p != coord {
                outbound.push((p, b.send(coord, p)));
            }
        }
        for (p, m) in outbound {
            b.recv(p, m);
        }
        for &p in &procs {
            b.end_interval(p);
        }
    }
    b.finish()
}

/// The acceptance-criteria run. A height-1 internal node (node 1:
/// parent of leaves 3 and 4 in the 7-node binary tree) is crashed on
/// both backends:
///
/// * simnet: `RepairMode::HeartbeatDriven` — the protocol, not the
///   harness, notices the silence and repairs (fast heartbeats, crash
///   scheduled after the grandparent hint circulated but before the
///   first interval exists);
/// * TCP: `Deployment::crash_node` kills the node's threads outright;
///   the root times out the dead child, the orphaned leaves dial the
///   grandparent learned from `Uplink` hint frames and run the
///   adoption handshake over real sockets.
///
/// Post-repair, both must detect the identical solution sequence.
#[test]
fn crashed_internal_node_matches_simnet_heartbeat_repair() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let n = 7;
    let rounds = 6;
    let dead = ProcessId(1);
    let exec = rounds_without(n, dead, rounds);
    let tree = SpanningTree::balanced_dary(n, 2);

    // Simnet reference: heartbeats every 2ms (sim time), suspicion
    // timeout 12ms — wide enough that the 0.2–4ms link jitter can never
    // fake a silence. The crash at 7ms lands after three heartbeat
    // rounds (hints + liveness evidence in place) and before the first
    // interval at 10ms.
    let sim_cfg = DeployConfig {
        sim: SimConfig {
            seed: 11,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        monitor: MonitorConfig {
            heartbeat_period: Some(SimTime::from_millis(2)),
            ..Default::default()
        },
        repair_delay: SimTime::from_millis(12),
        repair_mode: RepairMode::HeartbeatDriven,
        ..Default::default()
    };
    let topo = Topology::dary_tree(n, 2, 1);
    let mut sim = SimDeployment::new(topo, tree.clone(), &exec, sim_cfg);
    sim.schedule_crash(dead, SimTime::from_millis(7));
    sim.run();
    let sim_dets = sim.detections();
    assert_eq!(
        sim_dets.len(),
        rounds,
        "reference run must detect every survivor round"
    );
    assert!(
        sim_dets
            .iter()
            .all(|d| d.covered_processes().len() == n - 1),
        "reference detections cover exactly the six survivors"
    );

    // TCP run: two heartbeat rounds circulate the hints, then the node
    // dies for real. No harness repair exists on this backend at all.
    // The repair must settle before intervals flow (as it does on the
    // simnet schedule above): suspicion is per-node, so the root could
    // otherwise prune the dead child and match already-queued survivor
    // data a few milliseconds before the orphans' adoption lands.
    let config = LoopbackConfig {
        heartbeat_timeout: SimTime::from_millis(200),
        event_pacing: Duration::from_millis(1),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    sleep(Duration::from_millis(150));
    let crash_report = dep.crash_node(dead).expect("node 1 was running");
    assert!(
        crash_report.detections.is_empty(),
        "non-root detects nothing"
    );
    // Worst-case detection is 1.5× the timeout; the handshake adds a few
    // round-trips. 800ms leaves a wide margin on a loaded machine.
    sleep(Duration::from_millis(800));
    dep.feed_execution(&exec, config.event_pacing);
    let report = dep.finish(&config).expect("loopback run failed");

    assert!(!report.timed_out, "survivors failed to repair and drain");
    assert_eq!(
        coverages(&sim_dets),
        coverages(&report.detections),
        "post-repair solution sequences diverge across backends"
    );
    assert_eq!(
        solution_fingerprint(&sim_dets),
        solution_fingerprint(&report.detections),
        "post-repair fingerprints diverge across backends"
    );
}

/// The dead-grandparent storm over real sockets: node 3 (parent of
/// leaves 7 and 8 in the 15-node binary tree) and node 1 (its parent —
/// the orphans' freshest adoption hint) are killed together. Nodes 7
/// and 8 dial the dead grandparent, burn through the bounded knock
/// budget (`core::membership::ADOPT_ATTEMPT_CAP`), write it off, and
/// climb one more rung: the root, whose *address* arrived with node 3's
/// relayed `Uplink` ancestor chain (proto v4). They re-join there, just
/// as the simulated backend's `simultaneous_internal_crash_storm_*`
/// tests in `ftscp-core` pin for the id-only ladder. Before the chain
/// carried addresses, the rung was known but undialable and the pair
/// stayed stranded; before the budget existed, they re-dialed the
/// corpse forever.
///
/// The deployment-level contract under the storm: the run finishes, the
/// root prunes the dead branch, node 4 re-adopts under the root with
/// its leaves re-reported, the orphaned pair climbs to the root — and
/// every emitted solution covers exactly the thirteen survivors, never
/// the dead pair.
#[test]
fn dead_grandparent_storm_exhausts_knock_budget_and_still_finishes() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let n = 15;
    let rounds = 4;
    let dead = [ProcessId(1), ProcessId(3)];
    let exec = rounds_without_set(n, &dead, rounds);
    let tree = SpanningTree::balanced_dary(n, 2);

    let config = LoopbackConfig {
        heartbeat_timeout: SimTime::from_millis(200),
        event_pacing: Duration::from_millis(1),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    // Let hints circulate two relay hops: 7/8 need grandparent 1 from
    // node 3's uplink frames *and* the root's address, which node 3 can
    // only relay after node 1's hints delivered it. Then kill both
    // levels at once.
    sleep(Duration::from_millis(250));
    dep.crash_node(ProcessId(3)).expect("node 3 was running");
    dep.crash_node(ProcessId(1)).expect("node 1 was running");
    // Settle the whole cascade before data flows: suspicion (1.5× the
    // 200ms timeout worst-case), node 4's adoption handshake, the
    // orphans' four knocks at dead node 1 on 100ms suspicion ticks, the
    // write-off, and their second adoption handshake at the root.
    sleep(Duration::from_millis(2_000));
    dep.feed_execution(&exec, config.event_pacing);
    let report = dep.finish(&config).expect("loopback run failed");

    assert!(
        !report.timed_out,
        "recovering orphans must not gate the root's drain"
    );
    let survivors: Vec<u32> = vec![0, 2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];
    assert_eq!(report.detections.len(), rounds, "one solution per round");
    for d in &report.detections {
        let covered: Vec<u32> = d.covered_processes().iter().map(|p| p.0).collect();
        assert_eq!(
            covered, survivors,
            "solutions cover all thirteen survivors — the orphaned pair \
             climbed the addressed ladder to the root"
        );
    }
}

/// A crashed root cannot be repaired around (no grandparent exists) —
/// the deployment must halt immediately and gracefully instead of
/// hanging until the run timeout.
#[test]
fn crashed_root_halts_gracefully() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(4)
        .seed(5)
        .build();
    let tree = SpanningTree::balanced_dary(n, 2);
    let config = LoopbackConfig {
        run_timeout: Duration::from_secs(20),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    dep.feed_execution(&exec, config.event_pacing);
    // Let the whole execution drain into the root, then kill it.
    sleep(Duration::from_millis(800));
    let crash_report = dep.crash_node(ProcessId(0)).expect("root was running");
    let report = dep.finish(&config).expect("teardown failed");

    assert!(!report.timed_out, "a dead root must not burn the timeout");
    assert!(
        report.elapsed < config.run_timeout,
        "halt was not graceful: {:?}",
        report.elapsed
    );
    assert_eq!(
        coverages(&report.detections),
        coverages(&crash_report.detections),
        "the final report preserves the root's crash-time detections"
    );
    assert!(
        !crash_report.detections.is_empty(),
        "the root detected the drained rounds before dying"
    );
}

/// Crash-restart over real sockets: a leaf killed before any of its
/// data flowed is restarted as a fresh incarnation on a new port and
/// rejoins through the adoption handshake (fresh epoch, no pre-crash
/// state). With zero data lost, the run must detect exactly what a
/// fault-free simulated run detects.
#[test]
fn restarted_leaf_rejoins_and_restores_full_detection() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(5)
        .seed(9)
        .build();
    let tree = SpanningTree::balanced_dary(n, 2);

    // Fault-free reference on the simulator.
    let topo = Topology::dary_tree(n, 2, 1);
    let sim_cfg = DeployConfig {
        sim: SimConfig {
            seed: 9,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        ..Default::default()
    };
    let mut sim = SimDeployment::new(topo, tree.clone(), &exec, sim_cfg);
    sim.run();
    let sim_dets = sim.detections();
    assert!(!sim_dets.is_empty());

    let config = LoopbackConfig {
        event_pacing: Duration::from_millis(1),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    sleep(Duration::from_millis(120));
    let leaf = ProcessId(5);
    dep.crash_node(leaf).expect("leaf was running");
    dep.restart_node(leaf, ProcessId(2), &config)
        .expect("restart failed");
    sleep(Duration::from_millis(100));
    dep.feed_execution(&exec, config.event_pacing);
    let report = dep.finish(&config).expect("loopback run failed");

    assert!(!report.timed_out, "rejoin did not converge");
    assert_eq!(
        coverages(&sim_dets),
        coverages(&report.detections),
        "a clean crash-restart must lose nothing"
    );
}
