//! The differential guarantee: the same execution pushed through the
//! simulated network and through real TCP on loopback must produce the
//! same detections.
//!
//! Why this must hold (and is therefore worth asserting): the exhaustive
//! interleaving tests in `ftscp-intervals` prove the detector's solution
//! sequence is invariant under any delivery order that preserves
//! per-queue FIFO. TCP gives per-connection FIFO, the connection codecs
//! advance in lockstep with the byte stream, and the reorder buffer
//! absorbs retransmit duplicates — so thread scheduling, socket timing,
//! and even a severed-and-reconnected uplink must not change *what* is
//! detected, only *when*.

use ftscp_core::deploy::{DeployConfig, Deployment as SimDeployment};
use ftscp_core::faultcheck::solution_fingerprint;
use ftscp_core::report::GlobalDetection;
use ftscp_net::loopback::{run_execution, sockets_available, Deployment, LoopbackConfig};
use ftscp_simnet::{LinkModel, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{scenarios, Execution, RandomExecution};
use std::time::Duration;

/// Solution sequence as explicit coverage lists — the strongest
/// cross-backend comparison (order-sensitive, time-blind).
fn coverages(dets: &[GlobalDetection]) -> Vec<Vec<(u32, u64)>> {
    dets.iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

/// Reference run on the deterministic simulated network.
fn simnet_detections(tree: &SpanningTree, exec: &Execution, seed: u64) -> Vec<GlobalDetection> {
    let topo = Topology::dary_tree(exec.n, 2, 1);
    let config = DeployConfig {
        sim: SimConfig {
            seed,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        ..Default::default()
    };
    let mut dep = SimDeployment::new(topo, tree.clone(), exec, config);
    dep.run();
    dep.detections()
}

fn assert_same_detections(sim: &[GlobalDetection], net: &[GlobalDetection], what: &str) {
    assert_eq!(
        coverages(sim),
        coverages(net),
        "{what}: solution sequences diverge"
    );
    assert_eq!(
        solution_fingerprint(sim),
        solution_fingerprint(net),
        "{what}: fingerprints diverge"
    );
}

#[test]
fn loopback_matches_simnet() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let mut total_detections = 0;
    for seed in [1u64, 2, 3] {
        let n = 7;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(5)
            .skip_prob(0.15)
            .seed(seed)
            .build();
        let tree = SpanningTree::balanced_dary(n, 2);

        let sim = simnet_detections(&tree, &exec, seed);
        total_detections += sim.len();
        let report =
            run_execution(&tree, &exec, &LoopbackConfig::default()).expect("loopback run failed");
        assert!(!report.timed_out, "seed {seed}: loopback run timed out");
        assert_same_detections(&sim, &report.detections, &format!("seed {seed}"));
        assert!(report.bytes_on_wire() > 0);
        assert!(report.interval_frames() >= report.standalone_frames());
    }
    assert!(
        total_detections > 0,
        "degenerate seed set: nothing detected"
    );
}

/// The paper's Figure 2 scenario, end to end over TCP.
#[test]
fn loopback_matches_simnet_on_figure2() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let exec = scenarios::figure2();
    let tree = SpanningTree::balanced_dary(exec.n, 2);
    let sim = simnet_detections(&tree, &exec, 42);
    let report =
        run_execution(&tree, &exec, &LoopbackConfig::default()).expect("loopback run failed");
    assert!(!report.timed_out);
    assert_same_detections(&sim, &report.detections, "figure2");
}

/// The acceptance-criteria run: an uplink is severed (twice) while events
/// are in flight; the reconnect-with-resync machinery must recover and
/// the detections must STILL equal the simulator's.
#[test]
fn loopback_matches_simnet_across_forced_reconnects() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let n = 7;
    let seed = 7u64;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(8)
        .skip_prob(0.1)
        .seed(seed)
        .build();
    let tree = SpanningTree::balanced_dary(n, 2);
    let sim = simnet_detections(&tree, &exec, seed);

    let config = LoopbackConfig {
        // Pace the feeds so the drops land on live traffic.
        event_pacing: Duration::from_millis(3),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    dep.feed_execution(&exec, config.event_pacing);
    // Sever two uplinks mid-run: an internal node (relays its whole
    // subtree) and a leaf.
    std::thread::sleep(Duration::from_millis(6));
    dep.drop_uplink(ProcessId(1));
    std::thread::sleep(Duration::from_millis(10));
    dep.drop_uplink(ProcessId(5));
    let report = dep.finish(&config).expect("loopback run failed");

    assert!(!report.timed_out, "run did not recover from the drops");
    assert!(
        report.reconnects() >= 2,
        "expected both severed uplinks to reconnect, saw {}",
        report.reconnects()
    );
    assert_same_detections(&sim, &report.detections, "forced reconnect");
}
