//! ConnCodec resync over real sockets: a mid-stream disconnect leaves the
//! receiving side with a cold decoder, and the first interval frame on
//! the replacement connection must be standalone (cold-decodable) or the
//! stream is lost. These tests force that path on both stream kinds —
//! the child→parent report uplink and the client→node event feed.

use ftscp_core::deploy::{DeployConfig, Deployment as SimDeployment};
use ftscp_core::report::GlobalDetection;
use ftscp_net::client::EventClient;
use ftscp_net::loopback::{sockets_available, Deployment, LoopbackConfig};
use ftscp_simnet::{LinkModel, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{Execution, RandomExecution};
use std::time::Duration;

fn coverages(dets: &[GlobalDetection]) -> Vec<Vec<(u32, u64)>> {
    dets.iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

fn simnet_detections(tree: &SpanningTree, exec: &Execution, seed: u64) -> Vec<GlobalDetection> {
    let topo = Topology::dary_tree(exec.n, 2, 1);
    let config = DeployConfig {
        sim: SimConfig {
            seed,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        ..Default::default()
    };
    let mut dep = SimDeployment::new(topo, tree.clone(), exec, config);
    dep.run();
    dep.detections()
}

/// Severing the report uplink mid-stream: the leaf reconnects, its tx
/// codec restarts cold, and the frame counters prove the resync actually
/// used a standalone frame on the new connection (while the bulk of the
/// stream stayed on the cheaper stateful encoding).
#[test]
fn uplink_resyncs_with_standalone_frame_after_disconnect() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let exec = RandomExecution::builder(2)
        .intervals_per_process(8)
        .skip_prob(0.0)
        .seed(11)
        .build();
    let tree = SpanningTree::balanced_dary(2, 2); // root 0 — leaf 1
    let sim = simnet_detections(&tree, &exec, 11);

    let config = LoopbackConfig {
        event_pacing: Duration::from_millis(4),
        ..Default::default()
    };
    let mut dep = Deployment::launch(&tree, &config).expect("launch failed");
    dep.feed_execution(&exec, config.event_pacing);
    std::thread::sleep(Duration::from_millis(12));
    dep.drop_uplink(ProcessId(1));
    let report = dep.finish(&config).expect("loopback run failed");
    assert!(!report.timed_out, "run did not recover from the drop");

    let leaf = &report.node_reports[1];
    assert!(leaf.reconnects >= 1, "uplink never reconnected");
    assert!(
        leaf.standalone_frames_sent >= 2,
        "expected a standalone frame per connection (initial + resync), saw {}",
        leaf.standalone_frames_sent
    );
    assert!(
        leaf.interval_frames_sent > leaf.standalone_frames_sent,
        "the steady state should use stateful delta frames \
         ({} interval frames, {} standalone)",
        leaf.interval_frames_sent,
        leaf.standalone_frames_sent
    );
    assert_eq!(coverages(&sim), coverages(&report.detections));
}

/// Severing the event feed mid-stream: the replacement client starts a
/// fresh tx codec against the node's fresh per-connection rx codec. If
/// either side wrongly carried delta state across the reconnect, the
/// first frame would fail to decode, the connection would be killed, and
/// the detections below would be missing.
#[test]
fn event_feed_resumes_on_a_fresh_connection() {
    if !sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this environment");
        return;
    }
    let exec = RandomExecution::builder(2)
        .intervals_per_process(6)
        .skip_prob(0.0)
        .seed(13)
        .build();
    let tree = SpanningTree::balanced_dary(2, 2);
    let sim = simnet_detections(&tree, &exec, 13);

    let config = LoopbackConfig::default();
    let dep = Deployment::launch(&tree, &config).expect("launch failed");

    // Process 0 feeds normally.
    let p0 = ProcessId(0);
    let mut c0 = EventClient::connect(dep.addr(p0), p0).expect("connect p0");
    for iv in exec.intervals_of(p0) {
        c0.send_event(iv).expect("send p0");
    }
    c0.fin().expect("fin p0");

    // Process 1's feed dies mid-stream (connection dropped WITHOUT Fin,
    // mid-delta-stream) and resumes on a brand-new connection.
    let p1 = ProcessId(1);
    let intervals = exec.intervals_of(p1);
    let (first_half, second_half) = intervals.split_at(intervals.len() / 2);
    let mut c1 = EventClient::connect(dep.addr(p1), p1).expect("connect p1");
    for iv in first_half {
        c1.send_event(iv).expect("send p1 first half");
    }
    drop(c1); // orderly TCP close delivers what was written, then EOF
              // Give the node time to drain the dead connection before the
              // replacement starts, so events stay in per-process order.
    std::thread::sleep(Duration::from_millis(150));
    let mut c1 = EventClient::connect(dep.addr(p1), p1).expect("reconnect p1");
    for iv in second_half {
        c1.send_event(iv).expect("send p1 second half");
    }
    c1.fin().expect("fin p1");

    let report = dep.finish(&config).expect("loopback run failed");
    assert!(!report.timed_out, "run did not complete after feed resume");
    assert_eq!(coverages(&sim), coverages(&report.detections));
}
