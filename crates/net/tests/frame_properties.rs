//! Property tests for the length-prefixed framer: any valid stream
//! reassembles exactly under arbitrary chunking, any truncation is merely
//! pending, and hostile length prefixes fail closed without panicking or
//! allocating. The `fill_*` tests drive the reactor's readiness-polled
//! read path ([`fill`]/[`FillStatus`]) the way epoll does: one `fill`
//! call per readable event, each delivering whatever the "socket"
//! happens to have buffered — one byte, a frame fragment, or many
//! coalesced frames.

use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_intervals::Interval;
use ftscp_net::frame::{fill, frame_bytes, FillStatus, FrameBuffer, MAX_FRAME_LEN};
use ftscp_net::wire::{decode_msg, encode_msg, NetMsg};
use ftscp_vclock::{ProcessId, VectorClock};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{self, Read};

/// A fake nonblocking socket: each readable "event" yields one queued
/// chunk, then `WouldBlock` (the drained-kernel-buffer signal that makes
/// [`fill`] return [`FillStatus::Open`]); an empty queue reads as EOF.
struct ChunkedReader {
    chunks: VecDeque<Vec<u8>>,
    gap: bool,
}

impl ChunkedReader {
    fn new(chunks: impl IntoIterator<Item = Vec<u8>>) -> Self {
        ChunkedReader {
            chunks: chunks.into_iter().collect(),
            gap: false,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.gap {
            self.gap = false;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let Some(chunk) = self.chunks.front() else {
            return Ok(0);
        };
        assert!(buf.len() >= chunk.len(), "test chunks fit one read");
        buf[..chunk.len()].copy_from_slice(chunk);
        let n = chunk.len();
        self.chunks.pop_front();
        self.gap = true;
        Ok(n)
    }
}

/// A stream of predicate-tagged batch messages as one warm connection
/// would send them: same clock width throughout, 1–5 groups per frame,
/// each group addressed to 1–4 tenants. Clock components stay small so
/// consecutive frames exercise genuinely tight deltas.
fn batch_msgs_strategy() -> impl Strategy<Value = Vec<NetMsg>> {
    let width = 5usize;
    let clock = move || {
        proptest::collection::vec(0u32..5_000, width).prop_map(VectorClock::from_components)
    };
    proptest::collection::vec(
        proptest::collection::vec(
            (
                proptest::collection::vec(0u32..10_000, 1..5),
                (0u32..8, proptest::num::u64::ANY, clock(), clock())
                    .prop_map(|(p, seq, lo, hi)| Interval::local(ProcessId(p), seq, lo, hi)),
            ),
            1..6,
        ),
        1..6,
    )
    .prop_map(|frames| {
        frames
            .into_iter()
            .map(|groups| {
                NetMsg::Detect(DetectMsg::IntervalBatch {
                    from: ProcessId(3),
                    groups,
                    resync: false,
                })
            })
            .collect()
    })
}

fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::num::u8::ANY, 0..200),
        0..12,
    )
}

/// Concatenates framed payloads into one wire stream.
fn stream_of(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for f in frames {
        stream.extend_from_slice(&frame_bytes(f));
    }
    stream
}

/// Drains every complete frame currently in the buffer.
fn drain(fb: &mut FrameBuffer) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(f) = fb.next_frame().expect("valid stream") {
        out.push(f);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TCP may split the byte stream anywhere; reassembly must be exact
    /// regardless. Chunk sizes are derived from a seeded LCG so failures
    /// reproduce.
    #[test]
    fn reassembles_exactly_under_any_chunking(
        frames in frames_strategy(),
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let stream = stream_of(&frames);
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        let mut rng = chunk_seed | 1;
        let mut pos = 0;
        while pos < stream.len() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = (1 + (rng >> 33) as usize % 16).min(stream.len() - pos);
            fb.push(&stream[pos..pos + take]);
            pos += take;
            out.extend(drain(&mut fb));
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(fb.pending_len(), 0);
    }

    /// Cutting a valid stream at ANY byte offset yields a prefix of the
    /// frames and a pending (never erroring) tail.
    #[test]
    fn any_truncation_is_pending_never_error(
        frames in frames_strategy(),
        cut_seed in proptest::num::u64::ANY,
    ) {
        let stream = stream_of(&frames);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut fb = FrameBuffer::new();
        fb.push(&stream[..cut]);
        let got = drain(&mut fb); // would panic on Err
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&got[..], &frames[..got.len()]);
        // The tail is pending, not an error.
        prop_assert_eq!(fb.next_frame(), Ok(None));
    }

    /// An oversized length prefix is rejected after any amount of valid
    /// preamble — and before any payload-sized allocation could happen.
    #[test]
    fn oversized_prefix_errors_after_any_preamble(
        frames in frames_strategy(),
        excess in proptest::num::u32::ANY,
    ) {
        let hostile_len = (MAX_FRAME_LEN as u32)
            .saturating_add(1)
            .saturating_add(excess % 1024);
        let mut stream = stream_of(&frames);
        stream.extend_from_slice(&hostile_len.to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.push(&stream);
        // All valid frames come out first...
        let mut got = 0;
        loop {
            match fb.next_frame() {
                Ok(Some(_)) => got += 1,
                Ok(None) => prop_assert!(false, "hostile header must error, not pend"),
                Err(_) => break, // ...then the hostile header fails closed.
            }
        }
        prop_assert_eq!(got, frames.len());
    }

    /// Arbitrary garbage never panics the reassembler: every outcome is a
    /// frame, a pending state, or a clean error.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        while let Ok(Some(_)) = fb.next_frame() {}
    }

    /// The slowest possible socket: every readable event carries exactly
    /// one byte. Each `fill` reports `Open { bytes: 1 }`, frames pop out
    /// exactly at their last byte, and the reassembly is exact.
    #[test]
    fn fill_byte_at_a_time_reassembles_exactly(frames in frames_strategy()) {
        let stream = stream_of(&frames);
        let mut r = ChunkedReader::new(stream.iter().map(|&b| vec![b]));
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        loop {
            match fill(&mut r, &mut fb).expect("in-memory reads never fail") {
                FillStatus::Open { bytes } => {
                    prop_assert_eq!(bytes, 1, "one byte per readable event");
                    out.extend(drain(&mut fb));
                }
                FillStatus::Eof => break,
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(fb.pending_len(), 0);
    }

    /// Splitting the stream into two reads at EVERY byte offset — in
    /// particular at every frame boundary and everywhere inside every
    /// length prefix — never loses, duplicates, or reorders a frame.
    #[test]
    fn fill_split_at_every_offset_is_exact(
        frames in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u8::ANY, 0..40),
            0..6,
        ),
    ) {
        let stream = stream_of(&frames);
        for cut in 0..=stream.len() {
            let chunks = [&stream[..cut], &stream[cut..]]
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| c.to_vec())
                .collect::<Vec<_>>();
            let mut r = ChunkedReader::new(chunks);
            let mut fb = FrameBuffer::new();
            let mut out = Vec::new();
            loop {
                match fill(&mut r, &mut fb).expect("in-memory reads never fail") {
                    FillStatus::Open { .. } => out.extend(drain(&mut fb)),
                    FillStatus::Eof => break,
                }
            }
            prop_assert_eq!(&out, &frames, "split at offset {}", cut);
            prop_assert_eq!(fb.pending_len(), 0);
        }
    }

    /// Predicate-tagged batch frames ride the same framer as everything
    /// else: a warm connection's stream of `IntervalBatch` messages —
    /// delta-chained across frames through the shared codec pair — must
    /// survive arbitrary TCP chunking byte-for-byte.
    #[test]
    fn tagged_batch_frames_survive_arbitrary_chunking(
        msgs in batch_msgs_strategy(),
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let mut tx = ConnCodec::new();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame_bytes(&encode_msg(m, &mut tx)));
        }
        let mut fb = FrameBuffer::new();
        let mut rx = ConnCodec::new();
        let mut got = Vec::new();
        let mut rng = chunk_seed | 1;
        let mut pos = 0;
        while pos < stream.len() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = (1 + (rng >> 33) as usize % 16).min(stream.len() - pos);
            fb.push(&stream[pos..pos + take]);
            pos += take;
            while let Some(f) = fb.next_frame().expect("valid stream") {
                got.push(decode_msg(&f, &mut rx).expect("valid batch frame"));
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(fb.pending_len(), 0);
    }

    /// A `resync: true` batch is always encoded standalone, so a decoder
    /// that missed the entire warm prefix (reconnect, late join) must
    /// still decode it from nothing but the frame itself.
    #[test]
    fn resync_batch_decodes_cold_after_warm_prefix(mut msgs in batch_msgs_strategy()) {
        let last = msgs.len() - 1;
        if let NetMsg::Detect(DetectMsg::IntervalBatch { resync, .. }) = &mut msgs[last] {
            *resync = true;
        }
        let mut tx = ConnCodec::new();
        let payloads: Vec<Vec<u8>> = msgs.iter().map(|m| encode_msg(m, &mut tx)).collect();
        // A cold codec sees only the final frame — no prefix, no base.
        let mut cold = ConnCodec::new();
        let decoded = decode_msg(&payloads[last], &mut cold)
            .expect("resync batch must decode standalone");
        prop_assert_eq!(&decoded, &msgs[last]);
        // And the warm receiver that did see the prefix agrees.
        let mut warm = ConnCodec::new();
        let mut got = Vec::new();
        for p in &payloads {
            got.push(decode_msg(p, &mut warm).expect("valid frame"));
        }
        prop_assert_eq!(got, msgs);
    }

    /// The fastest possible socket: every frame arrives coalesced into
    /// one readable event (Nagle, a burst, or the peer's write
    /// coalescing). A single `fill` buffers them all and one drain pass
    /// yields every frame.
    #[test]
    fn fill_coalesced_burst_drains_in_one_pass(frames in frames_strategy()) {
        let stream = stream_of(&frames);
        let mut r = ChunkedReader::new(if stream.is_empty() {
            vec![]
        } else {
            vec![stream.clone()]
        });
        let mut fb = FrameBuffer::new();
        match fill(&mut r, &mut fb).expect("in-memory reads never fail") {
            FillStatus::Open { bytes } => {
                prop_assert_eq!(bytes, stream.len(), "the whole burst in one event");
                prop_assert_eq!(drain(&mut fb), frames);
                prop_assert_eq!(fb.pending_len(), 0);
                prop_assert!(matches!(
                    fill(&mut r, &mut fb).expect("eof read"),
                    FillStatus::Eof
                ));
            }
            FillStatus::Eof => prop_assert!(stream.is_empty(), "EOF only on an empty stream"),
        }
    }
}
