//! Property tests for the length-prefixed framer: any valid stream
//! reassembles exactly under arbitrary chunking, any truncation is merely
//! pending, and hostile length prefixes fail closed without panicking or
//! allocating.

use ftscp_net::frame::{frame_bytes, FrameBuffer, MAX_FRAME_LEN};
use proptest::prelude::*;

fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::num::u8::ANY, 0..200),
        0..12,
    )
}

/// Concatenates framed payloads into one wire stream.
fn stream_of(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for f in frames {
        stream.extend_from_slice(&frame_bytes(f));
    }
    stream
}

/// Drains every complete frame currently in the buffer.
fn drain(fb: &mut FrameBuffer) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(f) = fb.next_frame().expect("valid stream") {
        out.push(f);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TCP may split the byte stream anywhere; reassembly must be exact
    /// regardless. Chunk sizes are derived from a seeded LCG so failures
    /// reproduce.
    #[test]
    fn reassembles_exactly_under_any_chunking(
        frames in frames_strategy(),
        chunk_seed in proptest::num::u64::ANY,
    ) {
        let stream = stream_of(&frames);
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        let mut rng = chunk_seed | 1;
        let mut pos = 0;
        while pos < stream.len() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = (1 + (rng >> 33) as usize % 16).min(stream.len() - pos);
            fb.push(&stream[pos..pos + take]);
            pos += take;
            out.extend(drain(&mut fb));
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(fb.pending_len(), 0);
    }

    /// Cutting a valid stream at ANY byte offset yields a prefix of the
    /// frames and a pending (never erroring) tail.
    #[test]
    fn any_truncation_is_pending_never_error(
        frames in frames_strategy(),
        cut_seed in proptest::num::u64::ANY,
    ) {
        let stream = stream_of(&frames);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut fb = FrameBuffer::new();
        fb.push(&stream[..cut]);
        let got = drain(&mut fb); // would panic on Err
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&got[..], &frames[..got.len()]);
        // The tail is pending, not an error.
        prop_assert_eq!(fb.next_frame(), Ok(None));
    }

    /// An oversized length prefix is rejected after any amount of valid
    /// preamble — and before any payload-sized allocation could happen.
    #[test]
    fn oversized_prefix_errors_after_any_preamble(
        frames in frames_strategy(),
        excess in proptest::num::u32::ANY,
    ) {
        let hostile_len = (MAX_FRAME_LEN as u32)
            .saturating_add(1)
            .saturating_add(excess % 1024);
        let mut stream = stream_of(&frames);
        stream.extend_from_slice(&hostile_len.to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.push(&stream);
        // All valid frames come out first...
        let mut got = 0;
        loop {
            match fb.next_frame() {
                Ok(Some(_)) => got += 1,
                Ok(None) => prop_assert!(false, "hostile header must error, not pend"),
                Err(_) => break, // ...then the hostile header fails closed.
            }
        }
        prop_assert_eq!(got, frames.len());
    }

    /// Arbitrary garbage never panics the reassembler: every outcome is a
    /// frame, a pending state, or a clean error.
    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        let mut fb = FrameBuffer::new();
        fb.push(&bytes);
        while let Ok(Some(_)) = fb.next_frame() {}
    }
}
