//! Reactor fan-in at scale: one node, one thread, one epoll set,
//! ≥512 concurrent child connections — the load the thread-per-connection
//! runtime could not host in a single process.

use ftscp_net::scale::run_scale;
use std::time::Duration;

const CHILDREN: usize = 512;
const ROUNDS: u64 = 3;

#[test]
fn reactor_sustains_512_concurrent_children() {
    let report = match run_scale(CHILDREN, ROUNDS, Duration::from_secs(120)) {
        Ok(Some(r)) => r,
        Ok(None) => {
            eprintln!("skipping: sockets unavailable or fd limit cannot cover the run");
            return;
        }
        Err(e) => panic!("scale run failed: {e}"),
    };

    assert_eq!(report.children, CHILDREN);
    // The workload yields exactly one global solution per round, each
    // covering every process (512 children + the root's own feed).
    assert_eq!(
        report.node.detections.len(),
        ROUNDS as usize,
        "one detection per round"
    );
    for d in &report.node.detections {
        assert_eq!(
            d.coverage.len(),
            CHILDREN + 1,
            "every detection must cover all processes"
        );
    }
    // All sessions survived: nothing reconnected. (Suspicion is not
    // meaningful here — the run disables heartbeats for determinism.)
    assert_eq!(report.node.reconnects, 0);
}
