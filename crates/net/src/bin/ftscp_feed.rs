//! Synthetic event feeder: streams deterministic overlapping intervals
//! into a running `ftscp_node`.
//!
//! One invocation feeds one process's intervals. Round `s` produces the
//! interval `lo = [2s+1; n]`, `hi = [2s+2; n]` (all vector-clock
//! components equal): every process's round-`s` interval carries
//! identical bounds, so the intervals of a round pairwise overlap — one
//! global solution per round — while consecutive rounds are strictly
//! ordered and never cross-match. That makes the expected detection
//! sequence of a multi-process run trivially predictable from the
//! command lines alone, which is what a shell-level smoke test needs:
//!
//! ```text
//! ftscp_feed --to 127.0.0.1:7410 --process 0 --n 3 --rounds 30 --pace-ms 100
//! ```
//!
//! With `--pace-ms` the stream stretches over wall-clock time, so faults
//! injected mid-run (a SIGKILLed node) land on live traffic.

use ftscp_intervals::Interval;
use ftscp_net::EventClient;
use ftscp_vclock::{ProcessId, VectorClock};
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: ftscp_feed --to <addr> --process <id> --n <width> --rounds <r> [--pace-ms <ms>]

  --to <addr>       listen address of the process's ftscp_node
  --process <id>    process id the intervals belong to
  --n <width>       number of processes (vector clock width)
  --rounds <r>      intervals to send (round s: lo=[2s+1;n], hi=[2s+2;n])
  --pace-ms <ms>    delay between intervals (default 0)
";

fn fail(msg: &str) -> ! {
    eprintln!("ftscp_feed: {msg}\n\n{USAGE}");
    exit(2);
}

fn take(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    args.remove(i);
    Some(args.remove(i))
}

fn req<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> T {
    let v = take(args, flag).unwrap_or_else(|| fail(&format!("{flag} is required")));
    v.parse()
        .unwrap_or_else(|_| fail(&format!("bad value for {flag}: {v}")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let to: SocketAddr = req(&mut args, "--to");
    let process = ProcessId(req(&mut args, "--process"));
    let n: usize = req(&mut args, "--n");
    let rounds: u64 = req(&mut args, "--rounds");
    let pace = Duration::from_millis(
        take(&mut args, "--pace-ms")
            .map(|v| v.parse().unwrap_or_else(|_| fail("bad --pace-ms")))
            .unwrap_or(0),
    );
    if !args.is_empty() {
        fail(&format!("unrecognized arguments: {args:?}"));
    }

    let mut client = EventClient::connect(to, process).unwrap_or_else(|e| {
        eprintln!("ftscp_feed: connect {to}: {e}");
        exit(1);
    });
    for s in 0..rounds {
        let lo = VectorClock::from_components(vec![(2 * s + 1) as u32; n]);
        let hi = VectorClock::from_components(vec![(2 * s + 2) as u32; n]);
        let iv = Interval::local(process, s, lo, hi);
        if let Err(e) = client.send_event(&iv) {
            eprintln!("ftscp_feed: send round {s}: {e}");
            exit(1);
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
    if let Err(e) = client.fin() {
        eprintln!("ftscp_feed: fin: {e}");
        exit(1);
    }
    eprintln!(
        "ftscp_feed: process {} fed {rounds} rounds to {to}",
        process.0
    );
}
