//! Standalone monitor node: one process in the detection hierarchy,
//! speaking the ftscp-net TCP protocol.
//!
//! A three-node chain on one machine looks like:
//!
//! ```text
//! ftscp_node --role root     --me 0 --listen 127.0.0.1:7100 --children 1 --level 3
//! ftscp_node --role internal --me 1 --listen 127.0.0.1:7101 \
//!            --parent 127.0.0.1:7100 --parent-id 0 --children 2 --level 2
//! ftscp_node --role leaf     --me 2 --listen 127.0.0.1:7102 \
//!            --parent 127.0.0.1:7101 --parent-id 1
//! ```
//!
//! Each node ingests its own process's intervals through the event
//! endpoint on `--listen` (see `ftscp_net::EventClient`); the run
//! terminates when every expected feed has sent `Fin` and the reports
//! have drained to the root, which then prints its detections.

use ftscp_net::node::{spawn, NodeConfig};
use ftscp_simnet::SimTime;
use ftscp_vclock::ProcessId;
use std::net::{SocketAddr, TcpListener};
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: ftscp_node --role root|internal|leaf --me <id> --listen <addr> [options]

required:
  --role root|internal|leaf   position in the monitor tree
  --me <id>                   this node's process id
  --listen <addr>             address for child/client connections

required unless --role root:
  --parent <addr>             parent node's listen address
  --parent-id <id>            parent node's process id

options:
  --children <id,id,...>      child process ids (internal/root)
  --level <n>                 tree level (leaves are 1; default: 1 for
                              leaf, otherwise children count + 1 heuristic
                              is NOT applied — set it explicitly)
  --expected-feeds <n>        event feeds to wait for before Fin (default 1)
  --feeds-none                expect no event feed on this node
  --heartbeat-ms <n>          heartbeat period (default 50, 0 disables)
  --heartbeat-timeout-ms <n>  suspicion timeout (default 500)
  --retransmit-ms <n>         retransmit period (default 25, 0 disables)
  --timeout-secs <n>          max run time before giving up (default 600)
";

fn fail(msg: &str) -> ! {
    eprintln!("ftscp_node: {msg}\n\n{USAGE}");
    exit(2);
}

struct Args(Vec<String>);

impl Args {
    fn take(&mut self, flag: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == flag)?;
        if i + 1 >= self.0.len() {
            fail(&format!("{flag} needs a value"));
        }
        self.0.remove(i);
        Some(self.0.remove(i))
    }

    fn take_flag(&mut self, flag: &str) -> bool {
        match self.0.iter().position(|a| a == flag) {
            Some(i) => {
                self.0.remove(i);
                true
            }
            None => false,
        }
    }
}

fn parse<T: std::str::FromStr>(flag: &str, v: String) -> T {
    v.parse()
        .unwrap_or_else(|_| fail(&format!("bad value for {flag}: {v}")))
}

fn main() {
    let mut args = Args(std::env::args().skip(1).collect());
    if args.take_flag("--help") || args.take_flag("-h") {
        println!("{USAGE}");
        return;
    }

    let role = args
        .take("--role")
        .unwrap_or_else(|| fail("--role is required"));
    if !matches!(role.as_str(), "root" | "internal" | "leaf") {
        fail(&format!("unknown role: {role}"));
    }
    let me = ProcessId(parse(
        "--me",
        args.take("--me")
            .unwrap_or_else(|| fail("--me is required")),
    ));
    let listen: SocketAddr = parse(
        "--listen",
        args.take("--listen")
            .unwrap_or_else(|| fail("--listen is required")),
    );

    let parent = if role == "root" {
        None
    } else {
        let addr: SocketAddr = parse(
            "--parent",
            args.take("--parent")
                .unwrap_or_else(|| fail("--parent is required for non-root nodes")),
        );
        let id = ProcessId(parse(
            "--parent-id",
            args.take("--parent-id")
                .unwrap_or_else(|| fail("--parent-id is required for non-root nodes")),
        ));
        Some((id, addr))
    };

    let mut config = NodeConfig::new(me, parent);
    if let Some(list) = args.take("--children") {
        config.children = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| ProcessId(parse("--children", s.to_string())))
            .collect();
    }
    if role != "leaf" && config.children.is_empty() {
        fail(&format!("--children is required for role {role}"));
    }
    config.level = args
        .take("--level")
        .map(|v| parse("--level", v))
        .unwrap_or(1);
    if role != "leaf" && config.level < 2 {
        fail("--level must be >= 2 for internal/root nodes");
    }
    config.expected_feeds = args
        .take("--expected-feeds")
        .map(|v| parse("--expected-feeds", v))
        .unwrap_or(1);
    if args.take_flag("--feeds-none") {
        config.expected_feeds = 0;
    }

    let hb_ms: u64 = args
        .take("--heartbeat-ms")
        .map(|v| parse("--heartbeat-ms", v))
        .unwrap_or(50);
    config.monitor.heartbeat_period = (hb_ms > 0).then(|| SimTime::from_millis(hb_ms));
    config.heartbeat_timeout = SimTime::from_millis(
        args.take("--heartbeat-timeout-ms")
            .map(|v| parse("--heartbeat-timeout-ms", v))
            .unwrap_or(500),
    );
    let rt_ms: u64 = args
        .take("--retransmit-ms")
        .map(|v| parse("--retransmit-ms", v))
        .unwrap_or(25);
    config.monitor.retransmit_period = (rt_ms > 0).then(|| SimTime::from_millis(rt_ms));
    let timeout = Duration::from_secs(
        args.take("--timeout-secs")
            .map(|v| parse("--timeout-secs", v))
            .unwrap_or(600),
    );

    if !args.0.is_empty() {
        fail(&format!("unrecognized arguments: {:?}", args.0));
    }

    let listener =
        TcpListener::bind(listen).unwrap_or_else(|e| fail(&format!("cannot bind {listen}: {e}")));
    eprintln!("ftscp_node: {role} node {} listening on {listen}", me.0);

    let handle = spawn(listener, config).unwrap_or_else(|e| {
        eprintln!("ftscp_node: spawn failed: {e}");
        exit(1);
    });
    let done = handle.wait_done(timeout);
    if done && role != "root" {
        // Linger briefly so a parent that reconnects right at the end can
        // still be served a re-Fin before this process exits.
        std::thread::sleep(Duration::from_millis(500));
    }
    let report = handle.finish();

    if !done {
        eprintln!("ftscp_node: timed out after {timeout:?} without draining");
    }
    eprintln!(
        "ftscp_node: node {} done — {} detections, {} interval msgs, \
         {} bytes sent, {} bytes received, {} reconnects",
        me.0,
        report.detections.len(),
        report.interval_msgs_sent,
        report.bytes_sent,
        report.bytes_received,
        report.reconnects,
    );
    for det in &report.detections {
        println!(
            "detected at={} index={} coverage={:?}",
            det.at_node.0,
            det.solution.index,
            det.coverage
                .iter()
                .map(|iv| (iv.process.0, iv.seq))
                .collect::<Vec<_>>(),
        );
    }
    exit(if done { 0 } else { 1 });
}
