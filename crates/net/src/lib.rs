//! ftscp-net: real TCP transport runtime for the monitor hierarchy.
//!
//! Everything below `ftscp-core`'s `MonitorCore` is swapped out: instead
//! of the deterministic simulated network (`ftscp-simnet`), each monitor
//! runs as a bundle of OS threads speaking length-prefixed frames over
//! `std::net` TCP sockets. The detection logic itself — Algorithm 1's
//! queue bank, the ⊓-aggregation, the reorder buffer, the cumulative-ack
//! reliability layer — is byte-for-byte the same code, reached through the
//! `ftscp_core::transport::Transport` trait.
//!
//! Layering, bottom-up:
//!
//! - [`frame`] — `u32`-length-prefixed framing with a hard size cap;
//!   hostile-input-safe reassembly ([`frame::FrameBuffer`]).
//! - [`wire`] — the session message set ([`wire::NetMsg`]): HELLO/role
//!   handshake, the embedded `DetectMsg` protocol (carrying the existing
//!   delta codec frames unchanged), event ingestion, and feed-complete
//!   `Fin` markers.
//! - [`node`] — one monitor node as a thread bundle: nonblocking
//!   listener, reader/writer pair per connection, reconnecting uplink,
//!   and a single main loop that owns the `MonitorCore`.
//! - [`client`] — the event-ingestion client used by monitored processes
//!   (and by test harnesses replaying recorded executions).
//! - [`loopback`] — whole-tree deployment on 127.0.0.1, the vehicle for
//!   the simnet-vs-TCP differential tests and the `net_loopback` bench.
//!
//! Why the differential guarantee holds: the exhaustive interleaving
//! tests in `ftscp-intervals` prove the detector's solution sequence is
//! invariant under any delivery order that preserves per-queue FIFO.
//! TCP gives exactly per-connection FIFO, the per-connection codec pairs
//! advance in lockstep with the byte stream, and the reorder buffer
//! absorbs retransmit-induced duplicates — so a loopback run must emit
//! the same solutions as the simulator, which `tests/loopback_differential.rs`
//! checks end to end (including across a severed-and-reconnected uplink).

pub mod client;
pub mod frame;
pub mod loopback;
pub mod node;
pub mod wire;

pub use client::EventClient;
pub use frame::{FrameBuffer, FrameError, MAX_FRAME_LEN};
pub use loopback::{sockets_available, Deployment, LoopbackConfig, LoopbackReport};
pub use node::{spawn, NodeConfig, NodeHandle, NodeReport};
pub use wire::{NetMsg, PeerKind, PROTO_VERSION};
