//! ftscp-net: real TCP transport runtime for the monitor hierarchy.
//!
//! Everything below `ftscp-core`'s `MonitorCore` is swapped out: instead
//! of the deterministic simulated network (`ftscp-simnet`), each monitor
//! runs as a **single-threaded, readiness-polled reactor** over `std::net`
//! TCP sockets (epoll on Linux via the vendored `polling` shim) speaking
//! length-prefixed frames. The detection logic itself — Algorithm 1's
//! queue bank, the ⊓-aggregation, the reorder buffer, the cumulative-ack
//! reliability layer — is byte-for-byte the same code, reached through the
//! `ftscp_core::transport::Transport` trait.
//!
//! Layering, bottom-up:
//!
//! - [`frame`] — `u32`-length-prefixed framing with a hard size cap;
//!   hostile-input-safe incremental reassembly ([`frame::FrameBuffer`])
//!   plus the nonblocking drain helper ([`frame::fill`]).
//! - [`wire`] — the session message set ([`wire::NetMsg`]): HELLO/role
//!   handshake, the embedded `DetectMsg` protocol (carrying the existing
//!   delta codec frames unchanged), event ingestion, and feed-complete
//!   `Fin` markers.
//! - [`reactor`] — shared reactor building blocks: the timer wheel and
//!   the nonblocking (`EINPROGRESS`-aware) TCP connect.
//! - [`node`] — one monitor node as one reactor thread: nonblocking
//!   listener, per-connection state machines (frame buffer + codec pair +
//!   coalescing write queue), an uplink connect/session state machine,
//!   and a timer wheel driving heartbeats, suspicion, retransmits, and
//!   reconnect backoff — all multiplexed over a single poller.
//! - [`client`] — the event-ingestion client used by monitored processes
//!   (and by test harnesses replaying recorded executions).
//! - [`loopback`] — whole-tree deployment on 127.0.0.1, the vehicle for
//!   the simnet-vs-TCP differential tests and the `net_loopback` bench.
//! - [`scale`] — synthetic many-children driver: one poller feeding
//!   hundreds of protocol children into one node, for the ≥512-connection
//!   smoke test and the `reactor` bench row.
//!
//! Why the differential guarantee holds: the exhaustive interleaving
//! tests in `ftscp-intervals` prove the detector's solution sequence is
//! invariant under any delivery order that preserves per-queue FIFO.
//! TCP gives exactly per-connection FIFO, the per-connection codec pairs
//! advance in lockstep with the byte stream, and the reorder buffer
//! absorbs retransmit-induced duplicates — so a loopback run must emit
//! the same solutions as the simulator, which `tests/loopback_differential.rs`
//! checks end to end (including across a severed-and-reconnected uplink).

pub mod client;
pub mod frame;
pub mod loopback;
pub mod node;
pub mod reactor;
pub mod scale;
pub mod tenancy;
pub mod wire;

pub use client::EventClient;
pub use frame::{FrameBuffer, FrameError, MAX_FRAME_LEN};
pub use loopback::{sockets_available, Deployment, LoopbackConfig, LoopbackReport};
pub use node::{spawn, NodeConfig, NodeHandle, NodeReport};
pub use tenancy::{run_tenancy, TenancyConfig, TenancyReport};
pub use wire::{NetMsg, PeerKind, PROTO_VERSION};
