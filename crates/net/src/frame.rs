//! Length-prefixed framing for the TCP transport.
//!
//! A frame on the wire is a little-endian `u32` length followed by that
//! many payload bytes. The payload is one session message
//! ([`crate::wire::NetMsg`]), whose interval payloads in turn carry the
//! existing `ftscp_intervals::codec` frames unchanged (version bytes
//! `0x00` / `0xD1` / `0xD2`).
//!
//! [`FrameBuffer`] is the receive half: a pure byte-stream reassembly
//! state machine with no socket anywhere in sight, so its hostile-input
//! behavior (oversized length prefixes, truncation at every offset,
//! arbitrary chunking) is testable with plain property tests. The caps
//! mirror the codec's `MAX_PROCESSES`/`MAX_COVERAGE` philosophy: validate
//! the header *before* allocating.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload length. The largest legitimate frame
/// is an aggregated interval at the root of a maximal tree — generously
/// below this; anything bigger is a corrupt or hostile peer and kills the
/// connection rather than the process.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Framing violation: the stream is unrecoverable and the connection
/// must be dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError(pub &'static str);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Reassembles length-prefixed frames from an arbitrarily chunked byte
/// stream.
///
/// Feed bytes with [`push`](Self::push) exactly as they come off the
/// socket; pull complete frames with [`next_frame`](Self::next_frame).
/// A partial header or partial payload is simply *pending* (returns
/// `Ok(None)`), never an error — TCP may split a frame anywhere. Only a
/// length prefix above [`MAX_FRAME_LEN`] is an error, reported before
/// any payload allocation.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Read cursor into `buf` (consumed bytes are compacted lazily).
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame's payload, `Ok(None)` if more
    /// bytes are needed, or an error if the stream is invalid (oversized
    /// length prefix).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError("frame length exceeds MAX_FRAME_LEN"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }
}

/// Prepends the length prefix to `payload` in a fresh buffer, ready for a
/// single `write_all`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — outbound frames are
/// produced by our own encoder, so an oversized one is a programming
/// error, not peer input.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "outbound frame exceeds MAX_FRAME_LEN"
    );
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (length prefix + payload, single syscall in
/// the common case).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(payload))
}

/// Result of one [`fill`] pass over a nonblocking source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillStatus {
    /// The source would block; `bytes` arrived before that (possibly 0).
    Open { bytes: usize },
    /// The source reached EOF. Bytes read before EOF are in the buffer.
    Eof,
}

/// Drains everything currently readable from a nonblocking `r` into
/// `fb` — the reactor's read path. Loops until the source reports
/// `WouldBlock` (→ [`FillStatus::Open`]) or EOF (→ [`FillStatus::Eof`]);
/// `Interrupted` is retried, every other error is returned. Frames are
/// *not* parsed here: call [`FrameBuffer::next_frame`] in a loop
/// afterwards, which also keeps hostile-framing detection independent of
/// socket behavior.
pub fn fill(r: &mut impl Read, fb: &mut FrameBuffer) -> io::Result<FillStatus> {
    let mut chunk = [0u8; 16 * 1024];
    let mut total = 0usize;
    loop {
        match r.read(&mut chunk) {
            Ok(0) => return Ok(FillStatus::Eof),
            Ok(n) => {
                fb.push(&chunk[..n]);
                total += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return Ok(FillStatus::Open { bytes: total })
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Blocking convenience: reads from `r` into `fb` until a full frame is
/// available, EOF (`Ok(None)`), or an I/O / framing error. Timeouts set
/// on the underlying socket surface as `io::Error` like any other.
pub fn read_frame(r: &mut impl Read, fb: &mut FrameBuffer) -> io::Result<Option<Vec<u8>>> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = fb
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            return Ok(Some(frame));
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Ok(None);
        }
        fb.push(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_arbitrary_chunking() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 5], vec![3; 4096]];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&frame_bytes(f));
        }
        // Feed one byte at a time — the worst possible chunking.
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        for b in stream {
            fb.push(&[b]);
            while let Some(f) = fb.next_frame().expect("valid stream") {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn truncated_frame_is_pending_not_error() {
        let mut fb = FrameBuffer::new();
        fb.push(&[3, 0, 0]); // half a header
        assert_eq!(fb.next_frame(), Ok(None));
        fb.push(&[0, 1, 2]); // header complete (len 3), payload short
        assert_eq!(fb.next_frame(), Ok(None));
        fb.push(&[3]);
        assert_eq!(fb.next_frame(), Ok(Some(vec![1, 2, 3])));
    }

    #[test]
    fn oversized_length_prefix_is_fatal_before_allocation() {
        let mut fb = FrameBuffer::new();
        fb.push(&u32::MAX.to_le_bytes());
        assert_eq!(
            fb.next_frame(),
            Err(FrameError("frame length exceeds MAX_FRAME_LEN"))
        );
    }

    #[test]
    #[should_panic(expected = "outbound frame exceeds MAX_FRAME_LEN")]
    fn outbound_oversize_panics() {
        frame_bytes(&vec![0; MAX_FRAME_LEN + 1]);
    }
}
