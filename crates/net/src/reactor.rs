//! Shared building blocks of the readiness-polled runtimes: the timer
//! wheel and the nonblocking TCP connect, used by the node reactor
//! ([`crate::node`]) and the multiplexed feed driver
//! ([`crate::client::FeedDriver`]).
//!
//! The poller itself is the vendored [`polling`] shim (epoll on Linux,
//! `poll(2)` elsewhere); this module holds the pieces `polling` does not
//! provide.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Deadline-ordered timer queue driving all time-based work in a
/// reactor: heartbeats, suspicion rounds, retransmit bursts, reconnect
/// backoff, connect timeouts. One-shot by construction — recurring
/// timers re-arm themselves from their own handler, which makes "stop
/// until further notice" (e.g. the retransmit timer with nothing
/// unacked) the default instead of a cancellation dance. Stale fires
/// are possible (a timer armed for a connection that died); handlers
/// guard on current state instead of the wheel supporting removal.
#[derive(Debug)]
pub struct TimerWheel<T> {
    heap: BinaryHeap<Reverse<(Instant, u64, T)>>,
    /// Arm-order tiebreaker: same-deadline timers fire in arm order.
    seq: u64,
}

impl<T: Ord> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `timer` to fire at `at`.
    pub fn arm(&mut self, at: Instant, timer: T) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, timer)));
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops the next timer due at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                let Reverse((_, _, timer)) = self.heap.pop().expect("peeked");
                Some(timer)
            }
            _ => None,
        }
    }
}

impl<T: Ord> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Starts a nonblocking TCP connect to `addr`. Returns the nonblocking
/// stream plus whether the connection is already established; when
/// `false`, the caller waits for *write* readiness and then checks
/// [`TcpStream::take_error`] for the outcome (the classic
/// `EINPROGRESS` → `EPOLLOUT` → `SO_ERROR` handshake).
///
/// On Linux/IPv4 this is a raw `socket(SOCK_NONBLOCK)` + `connect`
/// through self-declared libc prototypes (`std` exposes no in-progress
/// connect). Elsewhere — and for IPv6 — it falls back to a bounded
/// blocking `connect_timeout`, which keeps the reactor stalled for at
/// most [`CONNECT_FALLBACK_TIMEOUT`] per attempt.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<(TcpStream, bool)> {
    #[cfg(target_os = "linux")]
    if let SocketAddr::V4(v4) = addr {
        return sys::connect_v4_nonblocking(v4);
    }
    let stream = TcpStream::connect_timeout(&addr, CONNECT_FALLBACK_TIMEOUT)?;
    stream.set_nonblocking(true)?;
    Ok((stream, true))
}

/// Bound on the blocking fallback path of [`connect_nonblocking`].
pub const CONNECT_FALLBACK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(250);

#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::net::{SocketAddrV4, TcpStream};
    use std::os::fd::FromRawFd;

    // Matches `struct sockaddr_in` (netinet/in.h); port and address are
    // big-endian on the wire.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn connect(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const EINPROGRESS: i32 = 115;

    pub fn connect_v4_nonblocking(addr: SocketAddrV4) -> io::Result<(TcpStream, bool)> {
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let sa = SockAddrIn {
            family: AF_INET as u16,
            port: addr.port().to_be(),
            addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
            zero: [0; 8],
        };
        let ret = unsafe { connect(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) };
        if ret == 0 {
            let stream = unsafe { TcpStream::from_raw_fd(fd) };
            return Ok((stream, true));
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINPROGRESS) {
            let stream = unsafe { TcpStream::from_raw_fd(fd) };
            return Ok((stream, false));
        }
        unsafe { close(fd) };
        Err(err)
    }
}

/// `Read` adapter counting the syscalls it forwards — the reactor's
/// syscalls-per-interval accounting for the bench row.
pub struct CountedRead<'a, R> {
    pub inner: &'a mut R,
    pub calls: u64,
}

impl<R: Read> Read for CountedRead<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.calls += 1;
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn timer_wheel_fires_in_deadline_then_arm_order() {
        let mut wheel = TimerWheel::new();
        let t0 = Instant::now();
        wheel.arm(t0 + Duration::from_millis(20), "late");
        wheel.arm(t0 + Duration::from_millis(10), "early-first");
        wheel.arm(t0 + Duration::from_millis(10), "early-second");
        assert_eq!(wheel.next_deadline(), Some(t0 + Duration::from_millis(10)));

        let now = t0 + Duration::from_millis(15);
        assert_eq!(wheel.pop_due(now), Some("early-first"));
        assert_eq!(wheel.pop_due(now), Some("early-second"));
        assert_eq!(wheel.pop_due(now), None, "the late timer is not due yet");
        assert_eq!(wheel.pop_due(t0 + Duration::from_millis(25)), Some("late"));
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn nonblocking_connect_reaches_a_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (stream, established) = connect_nonblocking(addr).unwrap();
        if !established {
            // Wait for writability, then check the outcome.
            let poller = polling::Poller::new().unwrap();
            poller.add(&stream, polling::Event::writable(0)).unwrap();
            let mut events = polling::Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(!events.is_empty(), "connect must resolve");
        }
        assert!(stream.take_error().unwrap().is_none());
        let (_peer, _) = listener.accept().unwrap();
        assert_eq!(stream.peer_addr().unwrap(), addr);
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_refusal() {
        // Bind-then-drop yields a port nobody listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(addr) {
            Err(_) => {} // refused synchronously
            Ok((stream, _)) => {
                let poller = polling::Poller::new().unwrap();
                poller.add(&stream, polling::Event::writable(0)).unwrap();
                let mut events = polling::Events::new();
                poller
                    .wait(&mut events, Some(Duration::from_secs(2)))
                    .unwrap();
                assert!(
                    stream.take_error().unwrap().is_some() || stream.peer_addr().is_err(),
                    "refusal must be observable"
                );
            }
        }
    }
}
