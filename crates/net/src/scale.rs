//! Many-children scale driver: one real monitor node under hundreds of
//! concurrent child connections, all driven from a single poller in the
//! calling thread.
//!
//! The point is to exercise the reactor's fan-in — one epoll set, one
//! thread, ≥512 sockets — without paying for 512 full node threads.
//! Each synthetic child is a *real* leaf [`MonitorCore`] (so its report
//! stream, acks, and `Fin` gating are protocol-exact), but its socket is
//! multiplexed here instead of owning a reactor of its own. The node
//! under test is a completely ordinary [`crate::node::spawn`] root.
//!
//! Used by `tests/scale.rs` (the ≥512-connection smoke test) and by the
//! `reactor` row of the hot-path bench.

use crate::frame::{fill, frame_bytes, FillStatus, FrameBuffer};
use crate::node::{spawn, NodeConfig, NodeReport};
use crate::reactor::connect_nonblocking;
use crate::wire::{decode_msg, encode_msg, NetMsg, PeerKind, PROTO_VERSION};
use crate::EventClient;
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_core::transport::{MonitorCore, Transport};
use ftscp_intervals::Interval;
use ftscp_simnet::SimTime;
use ftscp_vclock::{ProcessId, VectorClock};
use polling::{Event as PollEvent, Events, Poller};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Outcome of one scale run.
#[derive(Debug)]
pub struct ScaleReport {
    /// Concurrent child connections sustained.
    pub children: usize,
    /// Interval rounds each feed produced.
    pub rounds: u64,
    /// The root node's report (detections, wire counters, syscalls).
    pub node: NodeReport,
    /// Wall-clock for the whole run (connect → last Fin → drained).
    pub elapsed: Duration,
}

/// File descriptors the run needs: both ends of every child connection
/// live in this process, plus the listener, two pollers, the feed
/// connection, and headroom for the test harness itself.
fn fd_budget(children: usize) -> u64 {
    (2 * children + 64) as u64
}

/// Runs a root node with `children` synthetic protocol children, each
/// streaming `rounds` overlapping interval reports (the `ftscp_feed`
/// pattern: round `s` is `lo=[2s+1;n]`, `hi=[2s+2;n]`, one global
/// solution per round), plus one ordinary event feed for the root's own
/// process. Returns `None` when the environment can't host the run
/// (sockets unavailable or the fd limit can't be raised); errors are
/// real failures.
pub fn run_scale(
    children: usize,
    rounds: u64,
    timeout: Duration,
) -> io::Result<Option<ScaleReport>> {
    if !crate::sockets_available() || !fdlimit::ensure(fd_budget(children)) {
        return Ok(None);
    }
    let deadline = Instant::now() + timeout;
    let started = Instant::now();
    let n = children + 1; // vector clock width: root's process + children

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let mut config = NodeConfig::new(ProcessId(0), None);
    config.children = (1..=children as u32).map(ProcessId).collect();
    config.level = 2;
    config.expected_feeds = 1;
    // Deterministic counters for the bench row: no heartbeats, no
    // retransmits — every frame on the wire is protocol payload.
    config.monitor = MonitorConfig {
        heartbeat_period: None,
        retransmit_period: None,
        ..MonitorConfig::default()
    };
    let node = spawn(listener, config)?;
    let addr = node.addr;

    // The root's own feed: one ordinary blocking event client.
    let mut feed = EventClient::connect(addr, ProcessId(0))?;
    for s in 0..rounds {
        feed.send_event(&round_interval(ProcessId(0), s, n))?;
    }
    feed.fin()?;

    // Synthetic children: real leaf cores, sockets multiplexed here.
    let poller = Poller::new()?;
    let mut kids = Vec::with_capacity(children);
    for i in 0..children {
        let me = ProcessId(1 + i as u32);
        let (stream, established) = connect_nonblocking(addr)?;
        let _ = stream.set_nodelay(true);
        let interest = if established {
            PollEvent::readable(i)
        } else {
            PollEvent::writable(i)
        };
        poller.add(&stream, interest)?;
        let mut kid = Child::new(me, stream);
        if established {
            kid.open(rounds, n);
        }
        kids.push(kid);
    }

    let mut events = Events::new();
    while kids.iter().any(|k| !k.finished()) {
        if Instant::now() >= deadline {
            drop(kids);
            let _ = node.finish();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "scale run deadline exceeded before all children finished",
            ));
        }
        poller.wait(&mut events, Some(Duration::from_millis(100)))?;
        for ev in events.iter() {
            let kid = &mut kids[ev.key];
            if !kid.established {
                if ev.writable && matches!(kid.stream.take_error(), Ok(None)) {
                    kid.established = true;
                    kid.open(rounds, n);
                } else if ev.writable {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "synthetic child connect failed",
                    ));
                }
                continue;
            }
            if ev.readable {
                kid.drain_readable(rounds)?;
            }
        }
        // Flush + keep write interest in sync, every iteration.
        for (i, kid) in kids.iter_mut().enumerate() {
            if !kid.established {
                continue;
            }
            let pending = kid.flush()?;
            if pending != kid.want_write {
                kid.want_write = pending;
                let interest = if pending {
                    PollEvent::all(i)
                } else {
                    PollEvent::readable(i)
                };
                poller.modify(&kid.stream, interest)?;
            }
        }
    }

    let remaining = deadline.saturating_duration_since(Instant::now());
    if !node.wait_done(remaining) {
        drop(kids);
        let _ = node.finish();
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "root did not drain within the deadline",
        ));
    }
    let report = node.finish();
    Ok(Some(ScaleReport {
        children,
        rounds,
        node: report,
        elapsed: started.elapsed(),
    }))
}

/// Round `s` of the deterministic overlapping workload (all components
/// equal ⇒ every process's round-`s` interval pairwise overlaps).
fn round_interval(p: ProcessId, s: u64, n: usize) -> Interval {
    let lo = VectorClock::from_components(vec![(2 * s + 1) as u32; n]);
    let hi = VectorClock::from_components(vec![(2 * s + 2) as u32; n]);
    Interval::local(p, s, lo, hi)
}

/// One synthetic child: a real leaf core plus the connection state the
/// node-side reactor would normally own for it.
struct Child {
    core: MonitorCore,
    stream: TcpStream,
    fb: FrameBuffer,
    rx: ConnCodec,
    tx: ConnCodec,
    out: Vec<u8>,
    out_pos: usize,
    start: Instant,
    established: bool,
    want_write: bool,
    rounds_sent: bool,
    fin_sent: bool,
}

struct ChildTransport {
    start: Instant,
    outbox: Vec<DetectMsg>,
}

impl Transport for ChildTransport {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }
    fn send(&mut self, _dst: ProcessId, msg: DetectMsg) {
        // A leaf has exactly one neighbor: its parent, our one socket.
        self.outbox.push(msg);
    }
    fn send_sized(&mut self, dst: ProcessId, msg: DetectMsg, _size: usize) {
        self.send(dst, msg);
    }
}

impl Child {
    fn new(me: ProcessId, stream: TcpStream) -> Child {
        Child {
            core: MonitorCore::new(
                me,
                Some(ProcessId(0)),
                &[],
                1,
                MonitorConfig {
                    heartbeat_period: None,
                    retransmit_period: None,
                    ..MonitorConfig::default()
                },
            ),
            stream,
            fb: FrameBuffer::new(),
            rx: ConnCodec::new(),
            tx: ConnCodec::new(),
            out: Vec::new(),
            out_pos: 0,
            start: Instant::now(),
            established: false,
            want_write: false,
            rounds_sent: false,
            fin_sent: false,
        }
    }

    fn finished(&self) -> bool {
        self.fin_sent && self.out_pos == self.out.len()
    }

    fn enqueue(&mut self, msg: &NetMsg) {
        let payload = encode_msg(msg, &mut self.tx);
        self.out.extend_from_slice(&frame_bytes(&payload));
    }

    fn with_core<R>(&mut self, f: impl FnOnce(&mut MonitorCore, &mut ChildTransport) -> R) -> R {
        let mut t = ChildTransport {
            start: self.start,
            outbox: Vec::new(),
        };
        let r = f(&mut self.core, &mut t);
        for msg in t.outbox {
            self.enqueue(&NetMsg::Detect(msg));
        }
        r
    }

    /// The connection is up: handshake, cold-start the report stream, and
    /// push every round. Acks stream back while later rounds flush out.
    fn open(&mut self, rounds: u64, n: usize) {
        self.established = true;
        let me = self.me();
        self.enqueue(&NetMsg::Hello {
            node: me,
            kind: PeerKind::Child,
            proto: PROTO_VERSION,
        });
        self.with_core(|core, t| core.resync_uplink(t));
        for s in 0..rounds {
            let iv = round_interval(me, s, n);
            self.with_core(|core, t| core.observe_local(iv, t));
        }
        self.rounds_sent = true;
        self.maybe_fin();
    }

    fn me(&self) -> ProcessId {
        self.core.engine().node()
    }

    fn maybe_fin(&mut self) {
        if !self.fin_sent && self.rounds_sent && self.core.unacked_count() == 0 {
            let me = self.me();
            self.enqueue(&NetMsg::Fin { from: me });
            self.fin_sent = true;
        }
    }

    fn drain_readable(&mut self, _rounds: u64) -> io::Result<()> {
        let status = fill(&mut self.stream, &mut self.fb)?;
        loop {
            match self.fb.next_frame() {
                Ok(Some(frame)) => {
                    let msg = decode_msg(&frame, &mut self.rx)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    // HelloAck / hints need no action here.
                    if let NetMsg::Detect(d) = msg {
                        self.with_core(|core, t| core.on_message(d, t));
                        self.maybe_fin();
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
        }
        if status == FillStatus::Eof && !self.finished() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "node closed a child connection mid-run",
            ));
        }
        Ok(())
    }

    /// Best-effort nonblocking flush; returns whether bytes remain.
    fn flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(k) => self.out_pos += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(self.out_pos < self.out.len())
    }
}

/// `RLIMIT_NOFILE` management: a 512-children run needs ~1100 fds, above
/// the common 1024 default soft limit.
mod fdlimit {
    /// Ensures the soft fd limit is at least `need`, raising it toward
    /// the hard limit if necessary. Returns whether the budget is met.
    #[cfg(target_os = "linux")]
    pub fn ensure(need: u64) -> bool {
        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }
        const RLIMIT_NOFILE: i32 = 7;
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return false;
        }
        if lim.cur >= need {
            return true;
        }
        if lim.max < need {
            return false;
        }
        lim.cur = need;
        unsafe { setrlimit(RLIMIT_NOFILE, &lim) == 0 }
    }

    /// Off Linux: trust the platform default and let socket errors
    /// surface if it was insufficient.
    #[cfg(not(target_os = "linux"))]
    pub fn ensure(_need: u64) -> bool {
        true
    }
}
