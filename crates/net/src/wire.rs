//! Session-layer messages and their binary encoding.
//!
//! One [`NetMsg`] per frame (see [`crate::frame`]). Interval payloads —
//! inside [`NetMsg::Detect`] reports and [`NetMsg::Event`] ingestions —
//! are encoded with the *connection's* [`ConnCodec`], so a long-lived
//! connection carries cheap stateful delta frames while the first
//! interval after a (re)connect is automatically standalone: a fresh
//! codec has no base, which is exactly the cold-decoder resync the codec
//! contract requires. Everything else is fixed-width little-endian.
//!
//! ```text
//! Frame payload := u8 tag, fields…
//!   1 Hello    := u32 node, u8 peer_kind (0 child / 1 client), u8 proto
//!   2 HelloAck := u32 node
//!   3 Detect   := u8 subtag, fields…
//!        0 Interval    := u32 from, u8 resync, interval frame (codec)
//!        1 Heartbeat   := u32 from, u64 epoch, u8 has_parent, [u32 parent],
//!                         u8 n_ancestors, n × u32 ancestor
//!        2 Ack         := u32 from, u64 upto
//!        3 SetParent   := u8 has_parent, [u32 parent]
//!        4 AddChild    := u32 child
//!        5 RemoveChild := u32 child
//!        6 PromoteRoot
//!        7 DemoteRoot
//!        8 Suspect     := u32 from, u32 suspect
//!        9 Adopt       := u32 child, u64 epoch, u8 has_dead, [u32 dead_parent]
//!       10 AdoptAck    := u32 from, u32 child, u64 epoch, u8 accepted
//!       11 ReReport    := u32 from, u64 epoch
//!       12 IntervalBatch := u32 from, u8 resync, tenant batch frame (codec)
//!   4 Event    := interval frame (codec)
//!   5 Fin      := u32 node
//!   6 Uplink   := u8 has_parent, [u32 parent, u16 addr_len, addr bytes],
//!                 u8 n_ancestors, n × (u32 id, u16 addr_len, addr bytes)
//! ```
//!
//! `Uplink` is the TCP-specific half of the grandparent hint: a parent
//! periodically tells each child where *its own* uplink points (process
//! id + listen address), plus the listen addresses of every higher rung
//! it has itself learned — so an orphaned child holds a dialable address
//! for the whole fallback-adopter ladder, not just the grandparent. The
//! chain propagates one edge per beacon (each node re-relays what its
//! own parent told it), mirroring how the id-only ladder rides on
//! `Heartbeat` on both backends.

use bytes::{Bytes, BytesMut};
use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_intervals::codec::{frame_kind, DecodeError, FrameKind};
use ftscp_intervals::Interval;
use ftscp_vclock::ProcessId;

/// Session protocol version carried in HELLO; a mismatch kills the
/// connection during the handshake instead of corrupting streams later.
/// v2 added the membership messages (epoch-carrying heartbeats, the
/// adoption handshake, and the `Uplink` grandparent hint); v3 extended
/// `Heartbeat` with the sender's ancestor chain (the fallback-adopter
/// ladder past the grandparent); v4 extended `Uplink` with the listen
/// addresses of that chain, so every ladder rung is dialable; v5 added
/// the predicate-tagged `IntervalBatch` (subtag 12) — the multi-tenant
/// uplink that coalesces every tenant's pending intervals into one
/// 0xD3 frame per connection flush.
pub const PROTO_VERSION: u8 = 5;

/// What a connecting peer is, declared in its HELLO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerKind {
    /// A monitor node connecting to its tree parent: its stream carries
    /// interval reports, heartbeats, and FIN.
    Child,
    /// An external event source feeding local-predicate intervals into a
    /// node's ingestion endpoint.
    Client,
}

/// One session-layer message (one frame on the wire).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    /// Handshake opener, first frame on every connection.
    Hello {
        /// The connecting peer's process id (clients use the id of the
        /// process whose intervals they feed).
        node: ProcessId,
        /// Declared role of the peer.
        kind: PeerKind,
        /// Must equal [`PROTO_VERSION`].
        proto: u8,
    },
    /// Handshake acceptance, first frame in the reverse direction.
    HelloAck {
        /// The accepting node's process id.
        node: ProcessId,
    },
    /// Monitor protocol traffic, carried verbatim from the simulated
    /// deployment's message set.
    Detect(DetectMsg),
    /// A completed local-predicate interval pushed by an event client.
    Event(Interval),
    /// End of stream: the sender has delivered everything it ever will
    /// (its feeds finished, its subtree finished, nothing unacked).
    Fin {
        /// The finishing peer.
        from: ProcessId,
    },
    /// Grandparent hint (parent → child, periodic): where the sender's
    /// own uplink points. `None` means the sender is the root.
    Uplink {
        /// The sender's parent and its listen address, if any.
        parent: Option<(ProcessId, String)>,
        /// Listen addresses of the rungs *above* the sender's parent, as
        /// far as the sender has learned them from its own parent's
        /// hints. Unordered address book entries — the adoption ladder's
        /// *order* comes from the heartbeat ancestor chain; these only
        /// make its targets dialable.
        ancestors: Vec<(ProcessId, String)>,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_addr(out: &mut Vec<u8>, addr: &str) {
    let bytes = addr.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_interval(out: &mut Vec<u8>, iv: &Interval, codec: &mut ConnCodec) {
    let mut buf = BytesMut::new();
    codec.encode(iv, &mut buf);
    out.extend_from_slice(buf.freeze().as_slice());
}

/// Encodes `msg` as one frame payload (no length prefix), advancing the
/// connection's `codec` if the message carries an interval.
pub fn encode_msg(msg: &NetMsg, codec: &mut ConnCodec) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match msg {
        NetMsg::Hello { node, kind, proto } => {
            out.push(1);
            put_u32(&mut out, node.0);
            out.push(match kind {
                PeerKind::Child => 0,
                PeerKind::Client => 1,
            });
            out.push(*proto);
        }
        NetMsg::HelloAck { node } => {
            out.push(2);
            put_u32(&mut out, node.0);
        }
        NetMsg::Detect(d) => {
            out.push(3);
            match d {
                DetectMsg::Interval {
                    from,
                    interval,
                    resync,
                } => {
                    out.push(0);
                    put_u32(&mut out, from.0);
                    out.push(u8::from(*resync));
                    put_interval(&mut out, interval, codec);
                }
                DetectMsg::Heartbeat {
                    from,
                    epoch,
                    parent,
                    ancestors,
                } => {
                    out.push(1);
                    put_u32(&mut out, from.0);
                    put_u64(&mut out, *epoch);
                    match parent {
                        Some(p) => {
                            out.push(1);
                            put_u32(&mut out, p.0);
                        }
                        None => out.push(0),
                    }
                    debug_assert!(ancestors.len() <= u8::MAX as usize);
                    out.push(ancestors.len() as u8);
                    for a in ancestors {
                        put_u32(&mut out, a.0);
                    }
                }
                DetectMsg::Ack { from, upto } => {
                    out.push(2);
                    put_u32(&mut out, from.0);
                    put_u64(&mut out, *upto);
                }
                DetectMsg::SetParent { parent } => {
                    out.push(3);
                    match parent {
                        Some(p) => {
                            out.push(1);
                            put_u32(&mut out, p.0);
                        }
                        None => out.push(0),
                    }
                }
                DetectMsg::AddChild { child } => {
                    out.push(4);
                    put_u32(&mut out, child.0);
                }
                DetectMsg::RemoveChild { child } => {
                    out.push(5);
                    put_u32(&mut out, child.0);
                }
                DetectMsg::PromoteRoot => out.push(6),
                DetectMsg::DemoteRoot => out.push(7),
                DetectMsg::Suspect { from, suspect } => {
                    out.push(8);
                    put_u32(&mut out, from.0);
                    put_u32(&mut out, suspect.0);
                }
                DetectMsg::Adopt {
                    child,
                    epoch,
                    dead_parent,
                } => {
                    out.push(9);
                    put_u32(&mut out, child.0);
                    put_u64(&mut out, *epoch);
                    match dead_parent {
                        Some(d) => {
                            out.push(1);
                            put_u32(&mut out, d.0);
                        }
                        None => out.push(0),
                    }
                }
                DetectMsg::AdoptAck {
                    from,
                    child,
                    epoch,
                    accepted,
                } => {
                    out.push(10);
                    put_u32(&mut out, from.0);
                    put_u32(&mut out, child.0);
                    put_u64(&mut out, *epoch);
                    out.push(u8::from(*accepted));
                }
                DetectMsg::ReReport { from, epoch } => {
                    out.push(11);
                    put_u32(&mut out, from.0);
                    put_u64(&mut out, *epoch);
                }
                DetectMsg::IntervalBatch {
                    from,
                    groups,
                    resync,
                } => {
                    out.push(12);
                    put_u32(&mut out, from.0);
                    out.push(u8::from(*resync));
                    let mut buf = BytesMut::new();
                    if *resync {
                        codec.encode_batch_standalone(groups, &mut buf);
                    } else {
                        codec.encode_batch(groups, &mut buf);
                    }
                    out.extend_from_slice(buf.freeze().as_slice());
                }
            }
        }
        NetMsg::Event(iv) => {
            out.push(4);
            put_interval(&mut out, iv, codec);
        }
        NetMsg::Fin { from } => {
            out.push(5);
            put_u32(&mut out, from.0);
        }
        NetMsg::Uplink { parent, ancestors } => {
            out.push(6);
            match parent {
                Some((p, addr)) => {
                    out.push(1);
                    put_u32(&mut out, p.0);
                    put_addr(&mut out, addr);
                }
                None => out.push(0),
            }
            debug_assert!(ancestors.len() <= u8::MAX as usize);
            out.push(ancestors.len() as u8);
            for (p, addr) in ancestors {
                put_u32(&mut out, p.0);
                put_addr(&mut out, addr);
            }
        }
    }
    out
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let (&b, rest) = self
            .0
            .split_first()
            .ok_or(DecodeError("message truncated"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        if self.0.len() < 4 {
            return Err(DecodeError("message truncated"));
        }
        let (head, rest) = self.0.split_at(4);
        self.0 = rest;
        Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        if self.0.len() < 2 {
            return Err(DecodeError("message truncated"));
        }
        let (head, rest) = self.0.split_at(2);
        self.0 = rest;
        Ok(u16::from_le_bytes(head.try_into().expect("2 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        if self.0.len() < 8 {
            return Err(DecodeError("message truncated"));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        if self.0.len() < len {
            return Err(DecodeError("message truncated"));
        }
        let (head, rest) = self.0.split_at(len);
        self.0 = rest;
        Ok(head)
    }

    fn addr(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let addr = self.bytes(len)?;
        std::str::from_utf8(addr)
            .map(str::to_owned)
            .map_err(|_| DecodeError("uplink addr not utf-8"))
    }

    fn interval(&mut self, codec: &mut ConnCodec) -> Result<Interval, DecodeError> {
        let mut bytes = Bytes::from(self.0.to_vec());
        let before = bytes.len();
        let iv = codec.decode(&mut bytes)?;
        let consumed = before - bytes.len();
        self.0 = &self.0[consumed..];
        Ok(iv)
    }

    fn batch(&mut self, codec: &mut ConnCodec) -> Result<Vec<(Vec<u32>, Interval)>, DecodeError> {
        let mut bytes = Bytes::from(self.0.to_vec());
        let before = bytes.len();
        let groups = codec.decode_batch(&mut bytes)?;
        let consumed = before - bytes.len();
        self.0 = &self.0[consumed..];
        Ok(groups)
    }
}

/// Decodes one frame payload, advancing the connection's `codec` if the
/// message carries an interval. Trailing garbage after a complete message
/// is rejected — frames are exact.
pub fn decode_msg(frame: &[u8], codec: &mut ConnCodec) -> Result<NetMsg, DecodeError> {
    let mut c = Cursor(frame);
    let msg = match c.u8()? {
        1 => {
            let node = ProcessId(c.u32()?);
            let kind = match c.u8()? {
                0 => PeerKind::Child,
                1 => PeerKind::Client,
                _ => return Err(DecodeError("unknown peer kind")),
            };
            let proto = c.u8()?;
            NetMsg::Hello { node, kind, proto }
        }
        2 => NetMsg::HelloAck {
            node: ProcessId(c.u32()?),
        },
        3 => {
            let d = match c.u8()? {
                0 => {
                    let from = ProcessId(c.u32()?);
                    let resync = match c.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(DecodeError("bad resync flag")),
                    };
                    let interval = c.interval(codec)?;
                    DetectMsg::Interval {
                        from,
                        interval,
                        resync,
                    }
                }
                1 => {
                    let from = ProcessId(c.u32()?);
                    let epoch = c.u64()?;
                    let parent = match c.u8()? {
                        0 => None,
                        1 => Some(ProcessId(c.u32()?)),
                        _ => return Err(DecodeError("bad parent flag")),
                    };
                    let n = c.u8()? as usize;
                    let mut ancestors = Vec::with_capacity(n);
                    for _ in 0..n {
                        ancestors.push(ProcessId(c.u32()?));
                    }
                    DetectMsg::Heartbeat {
                        from,
                        epoch,
                        parent,
                        ancestors,
                    }
                }
                2 => DetectMsg::Ack {
                    from: ProcessId(c.u32()?),
                    upto: c.u64()?,
                },
                3 => DetectMsg::SetParent {
                    parent: match c.u8()? {
                        0 => None,
                        1 => Some(ProcessId(c.u32()?)),
                        _ => return Err(DecodeError("bad parent flag")),
                    },
                },
                4 => DetectMsg::AddChild {
                    child: ProcessId(c.u32()?),
                },
                5 => DetectMsg::RemoveChild {
                    child: ProcessId(c.u32()?),
                },
                6 => DetectMsg::PromoteRoot,
                7 => DetectMsg::DemoteRoot,
                8 => DetectMsg::Suspect {
                    from: ProcessId(c.u32()?),
                    suspect: ProcessId(c.u32()?),
                },
                9 => DetectMsg::Adopt {
                    child: ProcessId(c.u32()?),
                    epoch: c.u64()?,
                    dead_parent: match c.u8()? {
                        0 => None,
                        1 => Some(ProcessId(c.u32()?)),
                        _ => return Err(DecodeError("bad dead-parent flag")),
                    },
                },
                10 => DetectMsg::AdoptAck {
                    from: ProcessId(c.u32()?),
                    child: ProcessId(c.u32()?),
                    epoch: c.u64()?,
                    accepted: match c.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(DecodeError("bad accepted flag")),
                    },
                },
                11 => DetectMsg::ReReport {
                    from: ProcessId(c.u32()?),
                    epoch: c.u64()?,
                },
                12 => {
                    let from = ProcessId(c.u32()?);
                    let resync = match c.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(DecodeError("bad resync flag")),
                    };
                    let groups = c.batch(codec)?;
                    DetectMsg::IntervalBatch {
                        from,
                        groups,
                        resync,
                    }
                }
                _ => return Err(DecodeError("unknown detect subtag")),
            };
            NetMsg::Detect(d)
        }
        4 => NetMsg::Event(c.interval(codec)?),
        5 => NetMsg::Fin {
            from: ProcessId(c.u32()?),
        },
        6 => {
            let parent = match c.u8()? {
                0 => None,
                1 => {
                    let p = ProcessId(c.u32()?);
                    Some((p, c.addr()?))
                }
                _ => return Err(DecodeError("bad parent flag")),
            };
            let n = c.u8()? as usize;
            let mut ancestors = Vec::with_capacity(n);
            for _ in 0..n {
                let p = ProcessId(c.u32()?);
                ancestors.push((p, c.addr()?));
            }
            NetMsg::Uplink { parent, ancestors }
        }
        _ => return Err(DecodeError("unknown message tag")),
    };
    if !c.0.is_empty() {
        return Err(DecodeError("trailing bytes after message"));
    }
    Ok(msg)
}

/// If `payload` (an encoded frame) carries an interval, classifies the
/// embedded codec frame ([`FrameKind`]) without decoding — transports use
/// this to count standalone resync frames on the wire.
pub fn interval_frame_kind(payload: &[u8]) -> Option<FrameKind> {
    let codec_frame = match payload.first()? {
        3 if payload.get(1) == Some(&0) => payload.get(2 + 4 + 1..)?,
        3 if payload.get(1) == Some(&12) => payload.get(2 + 4 + 1..)?,
        4 => payload.get(1..)?,
        _ => return None,
    };
    frame_kind(codec_frame).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_vclock::VectorClock;

    fn iv(seq: u64, lo: Vec<u32>, hi: Vec<u32>) -> Interval {
        Interval::local(
            ProcessId(2),
            seq,
            VectorClock::from_components(lo),
            VectorClock::from_components(hi),
        )
    }

    fn roundtrip(msg: &NetMsg) -> NetMsg {
        let mut tx = ConnCodec::new();
        let mut rx = ConnCodec::new();
        let payload = encode_msg(msg, &mut tx);
        decode_msg(&payload, &mut rx).expect("decodes")
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            NetMsg::Hello {
                node: ProcessId(7),
                kind: PeerKind::Child,
                proto: PROTO_VERSION,
            },
            NetMsg::Hello {
                node: ProcessId(8),
                kind: PeerKind::Client,
                proto: PROTO_VERSION,
            },
            NetMsg::HelloAck { node: ProcessId(1) },
            NetMsg::Detect(DetectMsg::Interval {
                from: ProcessId(3),
                interval: iv(0, vec![1, 2], vec![3, 4]),
                resync: true,
            }),
            NetMsg::Detect(DetectMsg::Heartbeat {
                from: ProcessId(3),
                epoch: 6,
                parent: Some(ProcessId(0)),
                ancestors: vec![],
            }),
            NetMsg::Detect(DetectMsg::Heartbeat {
                from: ProcessId(0),
                epoch: 0,
                parent: None,
                ancestors: vec![],
            }),
            NetMsg::Detect(DetectMsg::Heartbeat {
                from: ProcessId(9),
                epoch: 2,
                parent: Some(ProcessId(4)),
                ancestors: vec![ProcessId(1), ProcessId(0)],
            }),
            NetMsg::Detect(DetectMsg::Ack {
                from: ProcessId(1),
                upto: 42,
            }),
            NetMsg::Detect(DetectMsg::SetParent {
                parent: Some(ProcessId(5)),
            }),
            NetMsg::Detect(DetectMsg::SetParent { parent: None }),
            NetMsg::Detect(DetectMsg::AddChild {
                child: ProcessId(9),
            }),
            NetMsg::Detect(DetectMsg::RemoveChild {
                child: ProcessId(9),
            }),
            NetMsg::Detect(DetectMsg::PromoteRoot),
            NetMsg::Detect(DetectMsg::DemoteRoot),
            NetMsg::Detect(DetectMsg::Suspect {
                from: ProcessId(4),
                suspect: ProcessId(2),
            }),
            NetMsg::Detect(DetectMsg::Adopt {
                child: ProcessId(4),
                epoch: 3,
                dead_parent: Some(ProcessId(2)),
            }),
            NetMsg::Detect(DetectMsg::Adopt {
                child: ProcessId(4),
                epoch: 3,
                dead_parent: None,
            }),
            NetMsg::Detect(DetectMsg::AdoptAck {
                from: ProcessId(0),
                child: ProcessId(4),
                epoch: 3,
                accepted: true,
            }),
            NetMsg::Detect(DetectMsg::ReReport {
                from: ProcessId(4),
                epoch: 3,
            }),
            NetMsg::Detect(DetectMsg::IntervalBatch {
                from: ProcessId(6),
                groups: vec![
                    (vec![0, 17], iv(0, vec![1, 2], vec![3, 4])),
                    (vec![3], iv(1, vec![4, 4], vec![6, 5])),
                ],
                resync: false,
            }),
            NetMsg::Detect(DetectMsg::IntervalBatch {
                from: ProcessId(6),
                groups: vec![(vec![2], iv(5, vec![9, 9], vec![10, 10]))],
                resync: true,
            }),
            NetMsg::Event(iv(1, vec![2, 2], vec![5, 3])),
            NetMsg::Fin { from: ProcessId(4) },
            NetMsg::Uplink {
                parent: Some((ProcessId(0), "127.0.0.1:7400".to_owned())),
                ancestors: vec![],
            },
            NetMsg::Uplink {
                parent: Some((ProcessId(1), "127.0.0.1:7401".to_owned())),
                ancestors: vec![
                    (ProcessId(0), "127.0.0.1:7400".to_owned()),
                    (ProcessId(4), "[::1]:9000".to_owned()),
                ],
            },
            NetMsg::Uplink {
                parent: None,
                ancestors: vec![],
            },
        ];
        for msg in msgs {
            assert_eq!(roundtrip(&msg), msg, "{msg:?}");
        }
    }

    #[test]
    fn interval_stream_uses_connection_codec() {
        let mut tx = ConnCodec::new();
        let mut rx = ConnCodec::new();
        let stream = vec![
            iv(0, vec![1, 0], vec![4, 2]),
            iv(1, vec![5, 2], vec![7, 2]),
            iv(2, vec![8, 2], vec![9, 3]),
        ];
        let mut payloads = Vec::new();
        for (i, interval) in stream.iter().enumerate() {
            let msg = NetMsg::Detect(DetectMsg::Interval {
                from: ProcessId(2),
                interval: interval.clone(),
                resync: false,
            });
            let payload = encode_msg(&msg, &mut tx);
            let expect = if i == 0 {
                FrameKind::DeltaStandalone // cold codec: first frame resyncs
            } else {
                FrameKind::DeltaStateful
            };
            assert_eq!(interval_frame_kind(&payload), Some(expect));
            payloads.push(payload);
        }
        for (payload, interval) in payloads.iter().zip(&stream) {
            let NetMsg::Detect(DetectMsg::Interval { interval: got, .. }) =
                decode_msg(payload, &mut rx).expect("in-order decode")
            else {
                panic!("wrong variant");
            };
            assert_eq!(&got, interval);
        }
    }

    #[test]
    fn batch_stream_uses_connection_codec() {
        // Batches share the connection base with plain interval frames:
        // the first flush is standalone (cold codec), later ones chain.
        let mut tx = ConnCodec::new();
        let mut rx = ConnCodec::new();
        let flushes = vec![
            vec![
                (vec![0u32, 1], iv(0, vec![1, 0], vec![4, 2])),
                (vec![2u32], iv(1, vec![5, 2], vec![7, 2])),
            ],
            vec![(vec![0u32, 2], iv(2, vec![8, 2], vec![9, 3]))],
        ];
        let mut payloads = Vec::new();
        for (i, groups) in flushes.iter().enumerate() {
            let msg = NetMsg::Detect(DetectMsg::IntervalBatch {
                from: ProcessId(2),
                groups: groups.clone(),
                resync: false,
            });
            let payload = encode_msg(&msg, &mut tx);
            let expect = if i == 0 {
                FrameKind::DeltaStandalone
            } else {
                FrameKind::DeltaStateful
            };
            assert_eq!(interval_frame_kind(&payload), Some(expect));
            payloads.push(payload);
        }
        for (payload, groups) in payloads.iter().zip(&flushes) {
            let NetMsg::Detect(DetectMsg::IntervalBatch { groups: got, .. }) =
                decode_msg(payload, &mut rx).expect("in-order decode")
            else {
                panic!("wrong variant");
            };
            assert_eq!(&got, groups);
        }
    }

    #[test]
    fn resync_batch_is_standalone_despite_warm_codec() {
        let mut tx = ConnCodec::new();
        let warmup = NetMsg::Event(iv(0, vec![1, 1], vec![2, 2]));
        let _ = encode_msg(&warmup, &mut tx);
        let msg = NetMsg::Detect(DetectMsg::IntervalBatch {
            from: ProcessId(2),
            groups: vec![(vec![0], iv(1, vec![3, 2], vec![4, 3]))],
            resync: true,
        });
        let payload = encode_msg(&msg, &mut tx);
        assert_eq!(
            interval_frame_kind(&payload),
            Some(FrameKind::DeltaStandalone),
            "a re-report batch must be decodable by a cold parent"
        );
        let mut cold = ConnCodec::new();
        assert_eq!(decode_msg(&payload, &mut cold).expect("cold decode"), msg);
    }

    #[test]
    fn stateful_frame_on_cold_decoder_errors_cleanly() {
        let mut tx = ConnCodec::new();
        let warmup = NetMsg::Event(iv(0, vec![1, 1], vec![2, 2]));
        let _ = encode_msg(&warmup, &mut tx);
        let stateful = encode_msg(&NetMsg::Event(iv(1, vec![3, 2], vec![4, 3])), &mut tx);
        assert_eq!(
            interval_frame_kind(&stateful),
            Some(FrameKind::DeltaStateful)
        );
        let mut cold = ConnCodec::new();
        assert!(decode_msg(&stateful, &mut cold).is_err());
    }

    #[test]
    fn hostile_inputs_error_not_panic() {
        let mut rx = ConnCodec::new();
        for bad in [
            &[][..],
            &[9][..],
            &[1, 0][..],
            &[3, 0, 1, 0, 0, 0, 2][..],
            &[3, 9][..],
            &[4, 0xff, 0xff, 0xff, 0xff][..],
        ] {
            assert!(decode_msg(bad, &mut rx).is_err(), "{bad:?}");
        }
        // Trailing garbage after a valid message is rejected.
        let mut tx = ConnCodec::new();
        let mut payload = encode_msg(&NetMsg::Fin { from: ProcessId(1) }, &mut tx);
        payload.push(0);
        assert!(decode_msg(&payload, &mut rx).is_err());
    }
}
