//! In-process loopback deployment: a full monitor tree over real TCP on
//! 127.0.0.1.
//!
//! Same role as `ftscp_core::deploy::Deployment` plays for the simulated
//! transport, but every edge is a real socket and every node a bundle of
//! real threads. Used by the differential test (simnet vs TCP must
//! detect identically) and by the `net_loopback` benchmark row.
//!
//! Launch order matters only in one way: all listeners are bound *before*
//! any node spawns, so every uplink knows its parent's address even if
//! the parent's threads come up later (the uplink retries until the
//! parent accepts). Each node's local intervals are fed through a real
//! [`EventClient`](crate::client::EventClient) connection — the ingestion
//! endpoint is exercised on every node, not just leaves.
//!
//! Whole-node failures are first-class: [`Deployment::crash_node`] kills
//! a node's entire thread bundle mid-run, and the *survivors* repair the
//! tree themselves through the decentralized membership protocol
//! (heartbeat suspicion → grandparent adoption → re-reports; see
//! `ftscp_core::membership`) — no harness involvement.
//! [`Deployment::restart_node`] brings a crashed node back on a fresh
//! port, rejoining through the same adoption handshake.

use crate::client::EventClient;
use crate::node::{spawn, NodeConfig, NodeHandle, NodeReport};
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::pid;
use ftscp_core::report::GlobalDetection;
use ftscp_simnet::{NodeId, SimTime};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::Execution;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// True when the environment lets us bind loopback sockets — sandboxes
/// without network namespaces make the whole subsystem untestable, and
/// callers (tests, CI) skip gracefully instead of failing.
pub fn sockets_available() -> bool {
    TcpListener::bind(("127.0.0.1", 0)).is_ok()
}

/// Knobs for a loopback run.
#[derive(Clone, Debug)]
pub struct LoopbackConfig {
    /// Monitor protocol configuration applied to every node. `SimTime`
    /// periods are wall-clock microseconds here.
    pub monitor: MonitorConfig,
    /// Heartbeat suspicion timeout (wall-clock): peers silent longer
    /// than this are declared dead and repaired around.
    pub heartbeat_timeout: SimTime,
    /// Delay between consecutive events on each feed — zero blasts the
    /// stream; a small pacing stretches the run so mid-run fault
    /// injection lands on live traffic.
    pub event_pacing: Duration,
    /// Hard cap on how long [`Deployment::finish`] waits for the root.
    pub run_timeout: Duration,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            // Heartbeats on (50 ms wall), reliability layer on with a
            // generous period: TCP rarely needs retransmits, but a
            // severed-and-reconnected uplink recovers through them.
            monitor: MonitorConfig {
                heartbeat_period: Some(SimTime::from_millis(50)),
                retransmit_period: Some(SimTime::from_millis(25)),
                retransmit_burst: 64,
                retransmit_backoff_cap: 8,
                ..Default::default()
            },
            heartbeat_timeout: SimTime::from_millis(500),
            event_pacing: Duration::ZERO,
            run_timeout: Duration::from_secs(30),
        }
    }
}

/// Everything a loopback run produced.
#[derive(Clone, Debug)]
pub struct LoopbackReport {
    /// Detections at the root, in emission order.
    pub detections: Vec<GlobalDetection>,
    /// Per-node reports, indexed by process id (crashed nodes report
    /// what they had at crash time).
    pub node_reports: Vec<NodeReport>,
    /// Wall-clock duration from launch to root completion (or timeout).
    pub elapsed: Duration,
    /// True if the root never finished within the configured timeout.
    pub timed_out: bool,
    /// Local intervals fed into the tree.
    pub total_intervals: u64,
}

impl LoopbackReport {
    /// Total bytes written to sockets across all nodes (both directions
    /// of every edge are counted once, at the writer).
    pub fn bytes_on_wire(&self) -> u64 {
        self.node_reports.iter().map(|r| r.bytes_sent).sum()
    }

    /// Interval-carrying frames sent (reports + ingested events).
    pub fn interval_frames(&self) -> u64 {
        self.node_reports
            .iter()
            .map(|r| r.interval_frames_sent)
            .sum()
    }

    /// Standalone (cold-decodable) interval frames — stream resync points.
    pub fn standalone_frames(&self) -> u64 {
        self.node_reports
            .iter()
            .map(|r| r.standalone_frames_sent)
            .sum()
    }

    /// Uplink reconnects across the deployment.
    pub fn reconnects(&self) -> u64 {
        self.node_reports.iter().map(|r| r.reconnects).sum()
    }

    /// End-to-end ingestion throughput of the run.
    pub fn intervals_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_intervals as f64 / self.elapsed.as_secs_f64()
    }
}

/// A running loopback tree plus its event feeders.
pub struct Deployment {
    handles: Vec<Option<NodeHandle>>,
    /// Crash-time reports of nodes taken down by `crash_node`.
    crash_reports: Vec<Option<NodeReport>>,
    addrs: Vec<SocketAddr>,
    root: ProcessId,
    feeders: Vec<JoinHandle<io::Result<()>>>,
    started: Instant,
    total_intervals: u64,
    crashes_injected: bool,
}

impl Deployment {
    /// Binds one listener per tree node and spawns all nodes. The tree
    /// must contain every node in `0..capacity` at launch (failures come
    /// later, via [`crash_node`](Self::crash_node)).
    pub fn launch(tree: &SpanningTree, config: &LoopbackConfig) -> io::Result<Deployment> {
        let n = tree.capacity();
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let mut handles = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let node = NodeId(i as u32);
            assert!(tree.contains(node), "loopback trees must be full");
            let mut cfg = NodeConfig::new(
                pid(node),
                tree.parent(node).map(|p| (pid(p), addrs[p.index()])),
            );
            cfg.children = tree.children(node).iter().map(|&c| pid(c)).collect();
            cfg.level = tree.level(node) as u32;
            cfg.expected_feeds = 1; // every process feeds its own intervals
            cfg.monitor = config.monitor;
            cfg.heartbeat_timeout = config.heartbeat_timeout;
            handles.push(Some(spawn(listener, cfg)?));
        }
        Ok(Deployment {
            handles,
            crash_reports: (0..n).map(|_| None).collect(),
            addrs,
            root: pid(tree.root()),
            feeders: Vec::new(),
            started: Instant::now(),
            total_intervals: 0,
            crashes_injected: false,
        })
    }

    /// Address of node `p`'s listener (for external clients).
    pub fn addr(&self, p: ProcessId) -> SocketAddr {
        self.addrs[p.index()]
    }

    /// Starts one event-client thread per process, feeding that process's
    /// local intervals from `exec` in order (paced by `pacing`), then
    /// `Fin`ing. Returns immediately; [`finish`](Self::finish) joins.
    pub fn feed_execution(&mut self, exec: &Execution, pacing: Duration) {
        for p in 0..exec.n {
            let process = ProcessId(p as u32);
            let addr = self.addrs[p];
            let intervals: Vec<_> = exec.intervals_of(process).to_vec();
            self.total_intervals += intervals.len() as u64;
            self.feeders.push(thread::spawn(move || {
                let mut client = EventClient::connect(addr, process)?;
                for iv in &intervals {
                    client.send_event(iv)?;
                    if !pacing.is_zero() {
                        thread::sleep(pacing);
                    }
                }
                client.fin()
            }));
        }
    }

    /// Fault injection: severs `p`'s uplink mid-run (see
    /// [`NodeHandle::drop_uplink`]).
    pub fn drop_uplink(&self, p: ProcessId) {
        if let Some(h) = &self.handles[p.index()] {
            h.drop_uplink();
        }
    }

    /// Crash-stop failure: kills `p`'s entire thread bundle (listener,
    /// connections, main loop) mid-run. Peers observe dead sockets and
    /// silent heartbeats; the *survivors* repair the tree through the
    /// decentralized adoption protocol. Idempotent; returns the node's
    /// report as of crash time.
    pub fn crash_node(&mut self, p: ProcessId) -> Option<NodeReport> {
        let handle = self.handles[p.index()].take()?;
        self.crashes_injected = true;
        let report = handle.finish();
        self.crash_reports[p.index()] = Some(report.clone());
        Some(report)
    }

    /// Brings a crashed node back as a fresh incarnation on a new port,
    /// rejoining the tree as a leaf under `parent` through the adoption
    /// handshake (the node dials the parent and sends `Adopt` with a
    /// fresh epoch; no re-spawned node keeps any pre-crash state).
    /// Returns an error if the node is still running.
    pub fn restart_node(
        &mut self,
        p: ProcessId,
        parent: ProcessId,
        config: &LoopbackConfig,
    ) -> io::Result<()> {
        if self.handles[p.index()].is_some() {
            return Err(io::Error::other("node is still running"));
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        self.addrs[p.index()] = listener.local_addr()?;
        let mut cfg = NodeConfig::new(p, Some((parent, self.addrs[parent.index()])));
        cfg.level = 1;
        cfg.expected_feeds = 1; // same contract as launch: it feeds itself
        cfg.monitor = config.monitor;
        cfg.heartbeat_timeout = config.heartbeat_timeout;
        cfg.rejoin = true;
        self.handles[p.index()] = Some(spawn(listener, cfg)?);
        Ok(())
    }

    /// Waits for the root to drain (bounded by `run_timeout`), then tears
    /// everything down and reports. A crashed root cannot drain: the run
    /// halts immediately and gracefully instead of burning the timeout.
    pub fn finish(self, config: &LoopbackConfig) -> io::Result<LoopbackReport> {
        let timed_out = match &self.handles[self.root.index()] {
            Some(h) => !h.wait_done(config.run_timeout),
            None => false, // root crashed: nothing to wait for
        };
        let elapsed = self.started.elapsed();
        for feeder in self.feeders {
            match feeder.join() {
                // A feeder aimed at a crashed node dies with it — only
                // crash-free runs insist on clean feeds.
                Ok(res) => {
                    if !self.crashes_injected {
                        res?;
                    }
                }
                Err(_) => return Err(io::Error::other("feeder thread panicked")),
            }
        }
        let root = self.root;
        let crash_reports = self.crash_reports;
        let node_reports: Vec<NodeReport> = self
            .handles
            .into_iter()
            .zip(crash_reports)
            .map(|(h, crashed)| match h {
                Some(h) => h.finish(),
                None => crashed.unwrap_or_default(),
            })
            .collect();
        let detections = node_reports[root.index()].detections.clone();
        Ok(LoopbackReport {
            detections,
            node_reports,
            elapsed,
            timed_out,
            total_intervals: self.total_intervals,
        })
    }
}

/// Convenience: launch, feed the whole execution, finish.
pub fn run_execution(
    tree: &SpanningTree,
    exec: &Execution,
    config: &LoopbackConfig,
) -> io::Result<LoopbackReport> {
    let mut dep = Deployment::launch(tree, config)?;
    dep.feed_execution(exec, config.event_pacing);
    dep.finish(config)
}
