//! The TCP monitor node: a [`MonitorCore`] driven by real sockets.
//!
//! Runtime shape: **one reactor thread per node**, readiness-polled over
//! every socket the node owns (epoll via the vendored [`polling`] shim;
//! `poll(2)` off Linux):
//!
//! ```text
//!                    ┌────────────────────── reactor thread ───────────────────────┐
//!  children &  accept│  nonblocking listener                                       │
//!  clients ─────────▶│  per-connection state machines (FrameBuffer + rx/tx codec   │
//!                    │    + coalescing write queue)                                │
//!  parent ◀─────────▶│  uplink state machine (nonblocking connect → handshake →    │
//!                    │    session; reconnect backoff on the timer wheel)           │
//!                    │  timer wheel: heartbeats · suspicion · retransmit · redial  │
//!                    │  MonitorCore (owned exclusively by this thread)             │
//!                    └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! The reactor thread is the only thread: it accepts, reads, decodes,
//! drives the [`MonitorCore`], encodes, and writes. Each connection's
//! state machine owns its [`FrameBuffer`] (partial-read reassembly), its
//! rx/tx [`ConnCodec`] pair, and a coalescing write queue — outbound
//! messages append to the queue and the queue is flushed once per loop
//! iteration, so a heartbeat burst or an interval+ack pair leaves in one
//! `write` syscall. When a socket's send buffer fills, the residue stays
//! queued and the connection arms write-readiness interest; the frames
//! still hit the tx codec in queue order, which keeps the peer's rx
//! codec in lockstep (TCP is FIFO per connection).
//!
//! External control (the [`NodeHandle`]) never touches the reactor's
//! state directly: shutdown is a flag the loop polls between waits,
//! completion is a condvar the loop signals, and
//! [`NodeHandle::drop_uplink`] severs a `try_clone` of the uplink socket
//! — the reactor observes the EOF like any other peer death.
//!
//! ## Session layer
//!
//! * **Handshake**: a connecting peer's first frame is `Hello` (role +
//!   protocol version); the acceptor replies `HelloAck`. Version or role
//!   violations kill the connection.
//! * **Heartbeats**: `MonitorCore::send_heartbeats` fires on the
//!   configured period over the same connections; `suspects()` exposes
//!   peers silent past the configured timeout.
//! * **Reconnect-with-resync**: after any uplink loss the timer wheel
//!   re-dials with backoff (nonblocking connect: `EINPROGRESS` →
//!   write-readiness → `SO_ERROR`). Both sides start the new connection
//!   with cold codecs, and the reactor calls
//!   `MonitorCore::resync_uplink`, so the first interval frame is
//!   standalone (`base_flag = 0`) — the codec's cold-decoder path,
//!   unreachable on the simulated transport without fault injection, is
//!   the *normal* reconnect path here.
//! * **FIN / termination**: event clients `Fin` after their last event; a
//!   node `Fin`s its parent once all its feeds and children have finished
//!   and nothing is unacknowledged. The root signals completion to
//!   [`NodeHandle::wait_done`].

use crate::frame::{fill, frame_bytes, FillStatus, FrameBuffer};
use crate::reactor::{connect_nonblocking, CountedRead, TimerWheel};
use crate::wire::{decode_msg, encode_msg, interval_frame_kind, NetMsg, PeerKind, PROTO_VERSION};
use ftscp_core::membership::MembershipEvent;
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_core::report::GlobalDetection;
use ftscp_core::transport::{MonitorCore, Transport};
use ftscp_simnet::SimTime;
use ftscp_vclock::ProcessId;
use polling::{Event as PollEvent, Events, Poller};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Upper bound on one poller wait: how often the reactor re-checks the
/// shutdown flag when no timer is due sooner. Latency of an orderly
/// shutdown, nothing else.
const WAKE_POLL: Duration = Duration::from_millis(25);

/// Give a nonblocking connect this long to resolve before the attempt is
/// written off and the backoff timer re-dials.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Poller keys: the listener and the uplink are fixed; accepted
/// connections are keyed by `KEY_CONN_BASE + conn id`.
const KEY_LISTENER: usize = 0;
const KEY_UPLINK: usize = 1;
const KEY_CONN_BASE: usize = 2;

/// Connection id of the uplink in session-layer terms (`handle_msg`);
/// accepted connections count from 1.
const UPLINK_CONN: u64 = 0;

/// Configuration of one TCP monitor node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's process id.
    pub me: ProcessId,
    /// Parent's process id and address; `None` for the root.
    pub parent: Option<(ProcessId, SocketAddr)>,
    /// Children expected to connect (their `Fin`s gate this node's own).
    pub children: Vec<ProcessId>,
    /// Level in the paper's numbering (leaves 1, root = height).
    pub level: u32,
    /// Event clients expected on the ingestion endpoint (their `Fin`s
    /// gate this node's own). A pure relay node uses 0.
    pub expected_feeds: usize,
    /// Monitor protocol knobs (heartbeat period, reliability layer).
    /// `SimTime` values are interpreted as wall-clock microseconds.
    pub monitor: MonitorConfig,
    /// Peers silent for longer than this are reported as suspects.
    pub heartbeat_timeout: SimTime,
    /// Delay between uplink reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Fresh incarnation of a crashed node: instead of assuming the
    /// parent still knows it, the node joins through the adoption
    /// handshake (`Adopt` with a fresh epoch on first connect).
    pub rejoin: bool,
}

impl NodeConfig {
    /// A leaf/internal/root config with defaults for the timing knobs.
    pub fn new(me: ProcessId, parent: Option<(ProcessId, SocketAddr)>) -> Self {
        NodeConfig {
            me,
            parent,
            children: Vec::new(),
            level: 1,
            expected_feeds: 0,
            monitor: MonitorConfig::default(),
            heartbeat_timeout: SimTime::from_millis(500),
            reconnect_backoff: Duration::from_millis(20),
            rejoin: false,
        }
    }
}

/// Everything a node did, collected at shutdown.
#[derive(Clone, Debug, Default)]
pub struct NodeReport {
    /// Detections recorded at this node (non-empty only for roots), in
    /// emission order.
    pub detections: Vec<GlobalDetection>,
    /// Bytes written to all sockets (frames incl. length prefixes).
    pub bytes_sent: u64,
    /// Bytes read from all sockets.
    pub bytes_received: u64,
    /// Interval-carrying frames sent (reports + events).
    pub interval_frames_sent: u64,
    /// Of those, standalone (cold-decodable) codec frames — resync points.
    pub standalone_frames_sent: u64,
    /// Times the uplink was re-established after the initial connect.
    pub reconnects: u64,
    /// Interval messages the monitor originated (protocol accounting,
    /// same counter the simulated deployment reports).
    pub interval_msgs_sent: u64,
    /// Socket/poll syscalls the reactor issued (waits, accepts, reads,
    /// writes, connects) — the bench row's syscalls-per-interval
    /// numerator. Scheduling-dependent; never a regression gate.
    pub syscalls: u64,
    /// Peers suspected by the heartbeat failure detector at shutdown.
    pub suspects_at_exit: Vec<ProcessId>,
}

/// Wire/session counters shared with the [`NodeHandle`].
#[derive(Default)]
struct Counters {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    interval_frames_sent: AtomicU64,
    standalone_frames_sent: AtomicU64,
    reconnects: AtomicU64,
    syscalls: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    counters: Counters,
    /// Live uplink socket, kept for fault injection
    /// ([`NodeHandle::drop_uplink`]) — severing it from outside exercises
    /// the reconnect-with-resync path.
    uplink_stream: Mutex<Option<TcpStream>>,
    /// Where the reactor should dial its uplink. Re-targeted when the
    /// adoption handshake picks a new parent (the grandparent); re-read
    /// on every (re)connect attempt.
    uplink_target: Mutex<Option<(ProcessId, SocketAddr)>>,
}

/// Handle to a running node: poke it, wait for it, collect its report.
pub struct NodeHandle {
    me: ProcessId,
    shared: Arc<Shared>,
    main: Option<JoinHandle<NodeReport>>,
    /// Local address of the node's listener.
    pub addr: SocketAddr,
}

impl NodeHandle {
    /// This node's process id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Blocks until the node has drained every input stream and announced
    /// completion (a root: all feeds and subtrees finished; a non-root:
    /// `Fin` sent upward), or the timeout elapses. Returns whether it
    /// finished. The node keeps serving connections until
    /// [`finish`](Self::finish).
    pub fn wait_done(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut done = self.shared.done.lock().expect("done lock");
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .done_cv
                .wait_timeout(done, deadline - now)
                .expect("done wait");
            done = guard;
        }
        true
    }

    /// Fault injection: severs the current parent connection at the
    /// socket level. The reactor observes the EOF, backs off, reconnects,
    /// and the protocol resyncs — mid-run, with live traffic in flight.
    pub fn drop_uplink(&self) {
        let guard = self.shared.uplink_stream.lock().expect("uplink lock");
        if let Some(stream) = guard.as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Stops the node and collects its report. The reactor notices the
    /// shutdown flag within one poll wait and exits its loop.
    pub fn finish(mut self) -> NodeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        match self.main.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => NodeReport::default(),
        }
    }
}

/// Spawns a monitor node on `listener` (children and event clients
/// connect there). The listener must already be bound — binding before
/// spawning lets a deployment allocate all addresses first, so uplinks
/// can name parents that have not started yet.
pub fn spawn(listener: TcpListener, config: NodeConfig) -> io::Result<NodeHandle> {
    let addr = listener.local_addr()?;
    let me = config.me;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        counters: Counters::default(),
        uplink_stream: Mutex::new(None),
        uplink_target: Mutex::new(config.parent),
    });

    let main_shared = Arc::clone(&shared);
    let main = thread::Builder::new()
        .name(format!("ftscp-node-{}", me.0))
        .spawn(move || reactor_loop(listener, config, main_shared))?;

    Ok(NodeHandle {
        me,
        shared,
        main: Some(main),
        addr,
    })
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

/// One live connection: the socket plus everything whose state advances
/// in byte-stream order — partial-read reassembly, the rx/tx codec pair,
/// and the coalescing write queue.
struct Conn {
    stream: TcpStream,
    fb: FrameBuffer,
    rx: ConnCodec,
    tx: ConnCodec,
    /// Outbound bytes (already framed), `out[out_pos..]` unsent. Appends
    /// coalesce: everything queued in one loop iteration leaves in one
    /// `write` in the common case.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether write-readiness interest is currently registered.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            fb: FrameBuffer::new(),
            rx: ConnCodec::new(),
            tx: ConnCodec::new(),
            out: Vec::new(),
            out_pos: 0,
            want_write: false,
        }
    }

    /// Encodes `msg` through this connection's tx codec and appends the
    /// frame to the write queue. Counting happens here — at the codec —
    /// so frame-kind accounting matches what actually hits the wire.
    fn enqueue(&mut self, msg: &NetMsg, counters: &Counters) {
        let payload = encode_msg(msg, &mut self.tx);
        if let Some(kind) = interval_frame_kind(&payload) {
            counters
                .interval_frames_sent
                .fetch_add(1, Ordering::Relaxed);
            if kind.is_cold_decodable() {
                counters
                    .standalone_frames_sent
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        counters
            .bytes_sent
            .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
        self.out.extend_from_slice(&frame_bytes(&payload));
    }

    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Writes as much of the queue as the socket accepts. Returns whether
    /// bytes remain queued (→ the caller arms write interest), or an
    /// error if the connection is dead.
    fn flush(&mut self, counters: &Counters) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            counters.syscalls.fetch_add(1, Ordering::Relaxed);
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(self.pending_out())
    }
}

/// The uplink's connect/handshake state machine.
enum Uplink {
    /// No connection; the reconnect timer owns the next attempt.
    Idle,
    /// Nonblocking connect in flight — waiting for write readiness.
    Connecting {
        conn: Conn,
        peer: ProcessId,
        started: Instant,
    },
    /// Connected and `Hello` sent.
    Up { conn: Conn, peer: ProcessId },
}

// ---------------------------------------------------------------------------
// Transport seam
// ---------------------------------------------------------------------------

/// [`Transport`] over the node's live connections: `now` is wall-clock
/// microseconds since node start; sends are buffered into an outbox the
/// reactor routes to per-connection write queues immediately after the
/// core call returns (the reactor owns both the core and the sockets, so
/// the outbox is drained before anything else can interleave).
///
/// Routing is by the peer the uplink is *actually dialed at*, not by
/// `core.parent()`: during an adoption handshake the uplink already
/// points at the prospective parent while the core's parent pointer
/// still names the dead one, and the `Suspect`/`Adopt` frames must
/// reach the former. Frames addressed to an unreachable peer find no
/// route and drop — exactly the lossy-link model the core's reliability
/// layer (unacked + retransmit + resync) is built for.
struct NetTransport {
    start: Instant,
    outbox: Vec<(ProcessId, DetectMsg)>,
}

impl Transport for NetTransport {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    fn send(&mut self, dst: ProcessId, msg: DetectMsg) {
        self.outbox.push((dst, msg));
    }

    fn send_sized(&mut self, dst: ProcessId, msg: DetectMsg, _size: usize) {
        // The advisory size is the simulator's billing hook; the reactor
        // encodes real frames and bills real bytes at enqueue time.
        self.send(dst, msg);
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// Timers on the reactor wheel. Recurring ones re-arm from their own
/// handler; stale fires are guarded by state checks, not cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Timer {
    Heartbeat,
    Retransmit,
    Suspect,
    /// Dial (or re-dial) the uplink target.
    Reconnect,
    /// Write off a connect attempt that never resolved.
    ConnectTimeout,
}

struct ReactorState {
    core: MonitorCore,
    config: NodeConfig,
    start: Instant,
    poller: Poller,
    timers: TimerWheel<Timer>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    peer_conn: HashMap<ProcessId, u64>,
    uplink: Uplink,
    /// The first successful uplink connect is not a *re*connect.
    uplink_ever_up: bool,
    /// Address book built from the parent's `Uplink` frames: every
    /// ancestor ever hinted, by id. The core's membership ladder picks
    /// *which* ancestor to adopt toward (freshest hint first, written-off
    /// targets skipped); this map answers *where* to dial it — so a
    /// fallback target from an older hint is reachable even after the
    /// freshest one turned out to be dead.
    hint_addrs: BTreeMap<ProcessId, SocketAddr>,
    feeds_done: usize,
    child_fins: BTreeSet<ProcessId>,
    fin_sent: bool,
    shared: Arc<Shared>,
}

impl ReactorState {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    /// Runs `f` against the core with a buffering transport, then routes
    /// the outbox into the per-connection write queues (same order).
    fn with_core<R>(&mut self, f: impl FnOnce(&mut MonitorCore, &mut NetTransport) -> R) -> R {
        let mut t = NetTransport {
            start: self.start,
            outbox: Vec::new(),
        };
        let r = f(&mut self.core, &mut t);
        for (dst, msg) in t.outbox {
            self.route(dst, &NetMsg::Detect(msg));
        }
        r
    }

    /// Queues `msg` for `dst` on whichever connection reaches it (the
    /// uplink if dialed at `dst`, else the child's accepted connection);
    /// drops it if no route exists.
    fn route(&mut self, dst: ProcessId, msg: &NetMsg) {
        let counters = &self.shared.counters;
        if let Uplink::Up { conn, peer } = &mut self.uplink {
            if *peer == dst {
                conn.enqueue(msg, counters);
                return;
            }
        }
        if let Some(id) = self.peer_conn.get(&dst) {
            if let Some(conn) = self.conns.get_mut(id) {
                conn.enqueue(msg, counters);
            }
        }
    }

    /// True once every input stream this node will ever get has finished:
    /// all expected event feeds and all *current* children sent `Fin`,
    /// and nothing is waiting for an ack. Children are the engine's live
    /// set, not the static config: adoption adds children mid-run and a
    /// crashed child must not gate termination forever.
    fn drained(&self) -> bool {
        self.feeds_done >= self.config.expected_feeds
            && self
                .core
                .engine()
                .children()
                .iter()
                .all(|c| self.child_fins.contains(c))
            && self.core.unacked_count() == 0
    }

    /// Propagates completion: a root flips the done flag; anyone else
    /// `Fin`s its parent (re-sent after reconnects — receivers treat
    /// `Fin` as idempotent) and then also flips the flag, so
    /// [`NodeHandle::wait_done`] means "drained and announced" on every
    /// role. The node keeps running after the flag — it still answers
    /// reconnects and re-`Fin`s until [`NodeHandle::finish`].
    fn maybe_finish(&mut self) {
        if !self.drained() {
            return;
        }
        let mut announced = self.config.parent.is_none();
        if self.fin_sent {
            announced = true; // already told this parent connection
        } else if let (Some(_), Uplink::Up { conn, .. }) = (self.config.parent, &mut self.uplink) {
            let me = self.config.me;
            conn.enqueue(&NetMsg::Fin { from: me }, &self.shared.counters);
            self.fin_sent = true;
            announced = true;
        }
        if announced {
            let mut done = self.shared.done.lock().expect("done lock");
            if !*done {
                *done = true;
                self.shared.done_cv.notify_all();
            }
        }
    }

    // -- accepted connections ------------------------------------------------

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            self.shared
                .counters
                .syscalls
                .fetch_add(1, Ordering::Relaxed);
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = self.next_conn;
                    self.next_conn += 1;
                    let key = KEY_CONN_BASE + conn_id as usize;
                    if self.poller.add(&stream, PollEvent::readable(key)).is_err() {
                        continue;
                    }
                    self.conns.insert(conn_id, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn close_conn(&mut self, conn_id: u64) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            let _ = self.poller.delete(&conn.stream);
        }
        // Only unmap peers still pointing at this connection — a
        // replacement may have registered first.
        self.peer_conn.retain(|_, &mut c| c != conn_id);
    }

    /// Drains everything readable from an accepted connection, decoding
    /// and dispatching each complete frame. Closes the connection on
    /// EOF, I/O error, framing violation, or a corrupt peer.
    fn conn_readable(&mut self, conn_id: u64) {
        let status = {
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                return;
            };
            let mut counted = CountedRead {
                inner: &mut conn.stream,
                calls: 0,
            };
            let status = fill(&mut counted, &mut conn.fb);
            let calls = counted.calls;
            let counters = &self.shared.counters;
            counters.syscalls.fetch_add(calls, Ordering::Relaxed);
            if let Ok(FillStatus::Open { bytes }) = status {
                counters
                    .bytes_received
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            status
        };
        // Dispatch complete frames even when the peer already closed —
        // `Fin` immediately followed by EOF is the normal client exit.
        loop {
            let decoded = {
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return; // handler closed it
                };
                match conn.fb.next_frame() {
                    // A decode error is a corrupt peer: kill the connection.
                    Ok(Some(frame)) => decode_msg(&frame, &mut conn.rx).ok(),
                    Ok(None) => break,
                    Err(_) => None, // framing violation: kill the connection
                }
            };
            match decoded {
                Some(msg) => self.handle_msg(conn_id, msg),
                None => {
                    self.close_conn(conn_id);
                    return;
                }
            }
        }
        match status {
            Ok(FillStatus::Open { .. }) => {}
            Ok(FillStatus::Eof) | Err(_) => self.close_conn(conn_id),
        }
    }

    // -- uplink --------------------------------------------------------------

    /// Fires on the `Reconnect` timer: dial the current uplink target.
    fn uplink_dial(&mut self) {
        if !matches!(self.uplink, Uplink::Idle) {
            return; // stale timer
        }
        let Some((peer, addr)) = *self.shared.uplink_target.lock().expect("target lock") else {
            self.timers.arm(
                Instant::now() + self.config.reconnect_backoff,
                Timer::Reconnect,
            );
            return;
        };
        self.shared
            .counters
            .syscalls
            .fetch_add(1, Ordering::Relaxed);
        match connect_nonblocking(addr) {
            Ok((stream, established)) => {
                let _ = stream.set_nodelay(true);
                let interest = if established {
                    PollEvent::readable(KEY_UPLINK)
                } else {
                    PollEvent::writable(KEY_UPLINK)
                };
                if self.poller.add(&stream, interest).is_err() {
                    self.timers.arm(
                        Instant::now() + self.config.reconnect_backoff,
                        Timer::Reconnect,
                    );
                    return;
                }
                self.uplink = Uplink::Connecting {
                    conn: Conn::new(stream),
                    peer,
                    started: Instant::now(),
                };
                if established {
                    self.uplink_established();
                } else {
                    self.timers
                        .arm(Instant::now() + CONNECT_TIMEOUT, Timer::ConnectTimeout);
                }
            }
            Err(_) => {
                self.timers.arm(
                    Instant::now() + self.config.reconnect_backoff,
                    Timer::Reconnect,
                );
            }
        }
    }

    /// The in-flight connect resolved (write readiness): check `SO_ERROR`
    /// and either open the session or back off.
    fn uplink_connect_resolved(&mut self) {
        let failed = match &self.uplink {
            Uplink::Connecting { conn, .. } => !matches!(conn.stream.take_error(), Ok(None)),
            _ => return,
        };
        if failed {
            self.uplink_down();
        } else {
            self.uplink_established();
        }
    }

    /// Connect + handshake: publish the socket for fault injection, say
    /// `Hello`, and either knock (adopting) or resync the report stream.
    fn uplink_established(&mut self) {
        let Uplink::Connecting { mut conn, peer, .. } =
            std::mem::replace(&mut self.uplink, Uplink::Idle)
        else {
            return;
        };
        if self
            .poller
            .modify(&conn.stream, PollEvent::readable(KEY_UPLINK))
            .is_err()
        {
            self.timers.arm(
                Instant::now() + self.config.reconnect_backoff,
                Timer::Reconnect,
            );
            return;
        }
        if self.uplink_ever_up {
            self.shared
                .counters
                .reconnects
                .fetch_add(1, Ordering::Relaxed);
        }
        self.uplink_ever_up = true;
        *self.shared.uplink_stream.lock().expect("uplink lock") = conn.stream.try_clone().ok();
        conn.enqueue(
            &NetMsg::Hello {
                node: self.config.me,
                kind: PeerKind::Child,
                proto: PROTO_VERSION,
            },
            &self.shared.counters,
        );
        self.uplink = Uplink::Up { conn, peer };
        if self.core.membership().is_adopting() {
            // The uplink now points at the prospective parent: open (or
            // re-knock on) the adoption handshake. The resync happens
            // when the AdoptAck lands.
            self.with_core(|core, t| core.send_adoption_request(t));
        } else {
            // New connection, cold decoder on the other end: restart the
            // uplink stream from a standalone frame.
            self.with_core(|core, t| core.resync_uplink(t));
            self.maybe_finish(); // re-announce Fin if we were done
        }
    }

    /// The uplink died (EOF, error, failed connect, or severed for a
    /// retarget): tear the session down and arm the backoff re-dial.
    fn uplink_down(&mut self) {
        match std::mem::replace(&mut self.uplink, Uplink::Idle) {
            Uplink::Idle => return,
            Uplink::Connecting { conn, .. } | Uplink::Up { conn, .. } => {
                let _ = self.poller.delete(&conn.stream);
            }
        }
        *self.shared.uplink_stream.lock().expect("uplink lock") = None;
        // The next connection is a new session: a Fin already sent on the
        // dead one must be announced again.
        self.fin_sent = false;
        self.timers.arm(
            Instant::now() + self.config.reconnect_backoff,
            Timer::Reconnect,
        );
    }

    /// Readable on an established uplink: same read path as any
    /// connection, with `UPLINK_CONN` session semantics.
    fn uplink_readable(&mut self) {
        let status = {
            let Uplink::Up { conn, .. } = &mut self.uplink else {
                return;
            };
            let mut counted = CountedRead {
                inner: &mut conn.stream,
                calls: 0,
            };
            let status = fill(&mut counted, &mut conn.fb);
            let calls = counted.calls;
            let counters = &self.shared.counters;
            counters.syscalls.fetch_add(calls, Ordering::Relaxed);
            if let Ok(FillStatus::Open { bytes }) = status {
                counters
                    .bytes_received
                    .fetch_add(bytes as u64, Ordering::Relaxed);
            }
            status
        };
        loop {
            let decoded = {
                let Uplink::Up { conn, .. } = &mut self.uplink else {
                    return;
                };
                match conn.fb.next_frame() {
                    Ok(Some(frame)) => decode_msg(&frame, &mut conn.rx).ok(),
                    Ok(None) => break,
                    Err(_) => None,
                }
            };
            match decoded {
                Some(msg) => self.handle_msg(UPLINK_CONN, msg),
                None => {
                    self.uplink_down();
                    return;
                }
            }
        }
        match status {
            Ok(FillStatus::Open { .. }) => {}
            Ok(FillStatus::Eof) | Err(_) => self.uplink_down(),
        }
    }

    // -- timers --------------------------------------------------------------

    fn fire_timer(&mut self, timer: Timer) {
        match timer {
            Timer::Heartbeat => {
                if let Some(period) = self.config.monitor.heartbeat_period {
                    self.with_core(|core, t| core.send_heartbeats(t));
                    self.send_uplink_hints();
                    self.timers
                        .arm(Instant::now() + to_duration(period), Timer::Heartbeat);
                }
            }
            Timer::Retransmit => {
                let delay = self.with_core(|core, t| core.on_retransmit_due(t));
                if let Some(d) = delay {
                    self.timers
                        .arm(Instant::now() + to_duration(d), Timer::Retransmit);
                }
            }
            Timer::Suspect => {
                let timeout = self.config.heartbeat_timeout;
                self.membership_round(timeout);
                let period = Duration::from_micros((timeout.as_micros() / 2).max(1));
                self.timers.arm(Instant::now() + period, Timer::Suspect);
            }
            Timer::Reconnect => self.uplink_dial(),
            Timer::ConnectTimeout => {
                if let Uplink::Connecting { started, .. } = self.uplink {
                    if started.elapsed() >= CONNECT_TIMEOUT {
                        self.uplink_down();
                    }
                }
            }
        }
    }

    /// Sends the TCP half of the grandparent hint to every connected
    /// child: where this node's own uplink points (id + address), plus
    /// every higher rung this node has itself learned — its own address
    /// book, re-relayed one edge down. A child that loses this node dials
    /// the grandparent; a child that finds the grandparent dead too can
    /// climb the rest of the ladder, because each rung arrived with an
    /// address. The chain reaches depth-`k` descendants after `k` beacon
    /// periods.
    fn send_uplink_hints(&mut self) {
        let target = *self.shared.uplink_target.lock().expect("target lock");
        let ancestors: Vec<(ProcessId, String)> = self
            .hint_addrs
            .iter()
            .filter(|(p, _)| target.is_none_or(|(tp, _)| **p != tp))
            .take(u8::MAX as usize)
            .map(|(&p, a)| (p, a.to_string()))
            .collect();
        let hint = NetMsg::Uplink {
            parent: target.map(|(p, addr)| (p, addr.to_string())),
            ancestors,
        };
        let children: Vec<(ProcessId, u64)> = self
            .peer_conn
            .iter()
            .filter(|(peer, _)| self.core.engine().has_child(**peer))
            .map(|(&p, &c)| (p, c))
            .collect();
        for (_, conn_id) in children {
            let counters = &self.shared.counters;
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.enqueue(&hint, counters);
            }
        }
    }

    /// One decentralized failure-detection round (the TCP driver of
    /// [`MonitorCore::membership_tick`]): dead children are dropped by
    /// the core itself; a dead parent re-targets the uplink at the
    /// grandparent and severs the current socket — the handshake goes
    /// out once the new connection is established.
    fn membership_round(&mut self, timeout: SimTime) {
        let decisions = self.with_core(|core, t| core.membership_tick(timeout, t));
        for decision in decisions {
            match decision {
                MembershipEvent::AdoptionStarted { target } => {
                    if matches!(&self.uplink, Uplink::Up { peer, .. } if *peer == target) {
                        // Already dialed at the target: (re-)knock directly.
                        self.with_core(|core, t| core.send_adoption_request(t));
                    } else if let Some(&addr) = self.hint_addrs.get(&target) {
                        *self.shared.uplink_target.lock().expect("target lock") =
                            Some((target, addr));
                        // Sever the current session (if any): the backoff
                        // timer re-reads the target and dials the new
                        // adoption candidate.
                        if !matches!(self.uplink, Uplink::Idle) {
                            self.uplink_down();
                        }
                    }
                    // A target with no known address burns its knock
                    // budget in the core and falls down the ladder — on
                    // TCP an id without an address is unreachable.
                }
                // A dropped child may have been the last thing gating Fin;
                // an orphaned node just keeps serving its subtree.
                MembershipEvent::ChildDropped(_) | MembershipEvent::Orphaned { .. } => {}
            }
        }
        self.maybe_finish();
    }

    // -- session messages ----------------------------------------------------

    fn handle_msg(&mut self, conn: u64, msg: NetMsg) {
        match msg {
            NetMsg::Hello { node, kind, proto } => {
                if proto != PROTO_VERSION {
                    // Incompatible peer: kill the connection.
                    if conn == UPLINK_CONN {
                        self.uplink_down();
                    } else {
                        self.close_conn(conn);
                    }
                    return;
                }
                if kind == PeerKind::Child {
                    self.peer_conn.insert(node, conn);
                    let now = self.now();
                    self.core.note_heartbeat(node, now);
                }
                let me = self.config.me;
                let counters = &self.shared.counters;
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.enqueue(&NetMsg::HelloAck { node: me }, counters);
                }
            }
            NetMsg::HelloAck { node } => {
                // Parent accepted our handshake — counts as liveness.
                let now = self.now();
                self.core.note_heartbeat(node, now);
            }
            NetMsg::Detect(d) => {
                self.with_core(|core, t| core.on_message(d, t));
                // An ack may have drained the last unacked report.
                self.maybe_finish();
            }
            NetMsg::Event(interval) => {
                self.with_core(|core, t| core.observe_local(interval, t));
            }
            NetMsg::Fin { from } => {
                if conn == UPLINK_CONN {
                    // Fin from the parent direction is meaningless; ignore.
                    return;
                }
                if self.peer_conn.get(&from) == Some(&conn) {
                    self.child_fins.insert(from);
                } else {
                    // An event client finished its feed.
                    self.feeds_done += 1;
                }
                self.maybe_finish();
            }
            NetMsg::Uplink { parent, ancestors } => {
                if conn != UPLINK_CONN {
                    return; // the hint only makes sense from the parent direction
                }
                // Every rung lands in the address book: the grandparent
                // and the relayed chain above it alike. Unparseable
                // addresses are dropped — a rung without an address just
                // burns its knock budget as before.
                for (p, addr) in parent.into_iter().chain(ancestors) {
                    if let Ok(a) = addr.parse() {
                        self.hint_addrs.insert(p, a);
                    }
                }
            }
        }
    }

    // -- write-side ----------------------------------------------------------

    /// Flushes every connection with queued output and keeps each one's
    /// write-readiness interest in sync with whether a residue remains.
    /// Runs once per loop iteration, right before the poller wait — the
    /// coalescing point.
    fn flush_all(&mut self) {
        if let Uplink::Up { conn, .. } = &mut self.uplink {
            if conn.pending_out() || conn.want_write {
                match conn.flush(&self.shared.counters) {
                    Ok(still_pending) => {
                        if still_pending != conn.want_write {
                            conn.want_write = still_pending;
                            let interest = if still_pending {
                                PollEvent::all(KEY_UPLINK)
                            } else {
                                PollEvent::readable(KEY_UPLINK)
                            };
                            let _ = self.poller.modify(&conn.stream, interest);
                        }
                    }
                    Err(_) => self.uplink_down(),
                }
            }
        }
        let dirty: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.pending_out() || c.want_write)
            .map(|(&id, _)| id)
            .collect();
        for conn_id in dirty {
            let result = {
                let counters = &self.shared.counters;
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    continue;
                };
                conn.flush(counters)
            };
            match result {
                Ok(still_pending) => {
                    let key = KEY_CONN_BASE + conn_id as usize;
                    let Some(conn) = self.conns.get_mut(&conn_id) else {
                        continue;
                    };
                    if still_pending != conn.want_write {
                        conn.want_write = still_pending;
                        let interest = if still_pending {
                            PollEvent::all(key)
                        } else {
                            PollEvent::readable(key)
                        };
                        let _ = self.poller.modify(&conn.stream, interest);
                    }
                }
                Err(_) => self.close_conn(conn_id),
            }
        }
    }
}

fn reactor_loop(listener: TcpListener, config: NodeConfig, shared: Arc<Shared>) -> NodeReport {
    let mut core = MonitorCore::new(
        config.me,
        config.parent.map(|(p, _)| p),
        &config.children,
        config.level,
        config.monitor,
    );
    if config.rejoin {
        if let Some((p, _)) = config.parent {
            // A restarted incarnation must not just resume the stream —
            // the parent dropped it at crash time. Arm the adoption
            // handshake; the first established uplink sends the Adopt
            // frame.
            core.membership_mut().begin_adoption(p, None);
        }
    }
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return NodeReport::default(),
    };
    if listener.set_nonblocking(true).is_err()
        || poller
            .add(&listener, PollEvent::readable(KEY_LISTENER))
            .is_err()
    {
        return NodeReport::default();
    }

    let mut st = ReactorState {
        core,
        config,
        start: Instant::now(),
        poller,
        timers: TimerWheel::new(),
        conns: HashMap::new(),
        next_conn: 1,
        peer_conn: HashMap::new(),
        uplink: Uplink::Idle,
        uplink_ever_up: false,
        hint_addrs: BTreeMap::new(),
        feeds_done: 0,
        child_fins: BTreeSet::new(),
        fin_sent: false,
        shared,
    };

    // Arm the initial timers; each re-arms itself from its handler.
    if let Some(period) = st.config.monitor.heartbeat_period {
        st.timers
            .arm(st.start + to_duration(period), Timer::Heartbeat);
        // Decentralized failure detection: check for silent peers at half
        // the timeout (only meaningful with heartbeats on).
        let suspect_period =
            Duration::from_micros((st.config.heartbeat_timeout.as_micros() / 2).max(1));
        st.timers.arm(st.start + suspect_period, Timer::Suspect);
    }
    if let Some(period) = st.config.monitor.retransmit_period {
        st.timers
            .arm(st.start + to_duration(period), Timer::Retransmit);
    }
    if st.config.parent.is_some() {
        st.timers.arm(st.start, Timer::Reconnect); // dial immediately
    }

    let mut events = Events::new();
    loop {
        let now = Instant::now();
        while let Some(timer) = st.timers.pop_due(now) {
            st.fire_timer(timer);
        }
        if st.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        st.flush_all();

        let timeout = st
            .timers
            .next_deadline()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(WAKE_POLL)
            .min(WAKE_POLL);
        if st.poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }
        for ev in events.iter() {
            match ev.key {
                KEY_LISTENER => st.accept_ready(&listener),
                KEY_UPLINK => match &st.uplink {
                    Uplink::Connecting { .. } if ev.writable => st.uplink_connect_resolved(),
                    Uplink::Connecting { .. } => {}
                    Uplink::Up { .. } => {
                        if ev.readable {
                            st.uplink_readable();
                        }
                        // Write readiness drains via flush_all below.
                    }
                    Uplink::Idle => {}
                },
                key => {
                    let conn_id = (key - KEY_CONN_BASE) as u64;
                    if ev.readable {
                        st.conn_readable(conn_id);
                    }
                    // Write readiness drains via flush_all below.
                }
            }
        }
        if st.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }

    let now = st.now();
    let timeout = st.config.heartbeat_timeout;
    let counters = &st.shared.counters;
    NodeReport {
        detections: st.core.detections().to_vec(),
        bytes_sent: counters.bytes_sent.load(Ordering::Relaxed),
        bytes_received: counters.bytes_received.load(Ordering::Relaxed),
        interval_frames_sent: counters.interval_frames_sent.load(Ordering::Relaxed),
        standalone_frames_sent: counters.standalone_frames_sent.load(Ordering::Relaxed),
        reconnects: counters.reconnects.load(Ordering::Relaxed),
        interval_msgs_sent: st.core.interval_msgs_sent(),
        syscalls: counters.syscalls.load(Ordering::Relaxed) + st.poller.syscalls(),
        suspects_at_exit: st.core.suspects(now, timeout),
    }
}

fn to_duration(t: SimTime) -> Duration {
    Duration::from_micros(t.0)
}
