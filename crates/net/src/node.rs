//! The TCP monitor node: a [`MonitorCore`] driven by real sockets.
//!
//! Thread shape (one accepted connection = one reader + one writer
//! thread, following the per-connection-handler server idiom):
//!
//! ```text
//!             ┌──────────┐   accept   ┌─────────────────────┐
//!  children & │ listener  │──────────▶│ conn reader / writer │──┐
//!  clients ──▶│  thread   │           └─────────────────────┘  │ mpsc
//!             └──────────┘                                      ▼
//!  parent ◀──[ uplink thread: connect → handshake → reader ]─▶ main loop
//!                         (reconnect loop with backoff)        (owns MonitorCore)
//! ```
//!
//! Every thread communicates with the main loop through one mpsc channel
//! of [`Event`]s; the main loop owns all protocol state and is the only
//! thread that touches the [`MonitorCore`]. Outbound frames go through
//! per-connection writer threads, each owning the connection's tx
//! [`ConnCodec`] — frames hit the codec in write order, which keeps the
//! peer's rx codec in lockstep (TCP is FIFO per connection).
//!
//! ## Session layer
//!
//! * **Handshake**: a connecting peer's first frame is `Hello` (role +
//!   protocol version); the acceptor replies `HelloAck`. Version or role
//!   violations kill the connection.
//! * **Heartbeats**: `MonitorCore::send_heartbeats` fires on the
//!   configured period over the same connections; `suspects()` exposes
//!   peers silent past the configured timeout.
//! * **Reconnect-with-resync**: the uplink thread reconnects with backoff
//!   after any disconnect. Both sides start the new connection with cold
//!   codecs, and the main loop calls `MonitorCore::resync_uplink`, so the
//!   first interval frame is standalone (`base_flag = 0`) — the codec's
//!   cold-decoder path, unreachable on the simulated transport without
//!   fault injection, is the *normal* reconnect path here.
//! * **FIN / termination**: event clients `Fin` after their last event; a
//!   node `Fin`s its parent once all its feeds and children have finished
//!   and nothing is unacknowledged. The root signals completion to
//!   [`NodeHandle::wait_done`].

use crate::frame::{write_frame, FrameBuffer};
use crate::wire::{decode_msg, encode_msg, interval_frame_kind, NetMsg, PeerKind, PROTO_VERSION};
use ftscp_core::membership::MembershipEvent;
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_core::report::GlobalDetection;
use ftscp_core::transport::{MonitorCore, Transport};
use ftscp_simnet::SimTime;
use ftscp_vclock::ProcessId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Read timeout on connection sockets: how often blocked readers check
/// the shutdown flag. Latency of an orderly shutdown, nothing else.
const READ_POLL: Duration = Duration::from_millis(50);

/// Configuration of one TCP monitor node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's process id.
    pub me: ProcessId,
    /// Parent's process id and address; `None` for the root.
    pub parent: Option<(ProcessId, SocketAddr)>,
    /// Children expected to connect (their `Fin`s gate this node's own).
    pub children: Vec<ProcessId>,
    /// Level in the paper's numbering (leaves 1, root = height).
    pub level: u32,
    /// Event clients expected on the ingestion endpoint (their `Fin`s
    /// gate this node's own). A pure relay node uses 0.
    pub expected_feeds: usize,
    /// Monitor protocol knobs (heartbeat period, reliability layer).
    /// `SimTime` values are interpreted as wall-clock microseconds.
    pub monitor: MonitorConfig,
    /// Peers silent for longer than this are reported as suspects.
    pub heartbeat_timeout: SimTime,
    /// Delay between uplink reconnect attempts.
    pub reconnect_backoff: Duration,
    /// Fresh incarnation of a crashed node: instead of assuming the
    /// parent still knows it, the node joins through the adoption
    /// handshake (`Adopt` with a fresh epoch on first connect).
    pub rejoin: bool,
}

impl NodeConfig {
    /// A leaf/internal/root config with defaults for the timing knobs.
    pub fn new(me: ProcessId, parent: Option<(ProcessId, SocketAddr)>) -> Self {
        NodeConfig {
            me,
            parent,
            children: Vec::new(),
            level: 1,
            expected_feeds: 0,
            monitor: MonitorConfig::default(),
            heartbeat_timeout: SimTime::from_millis(500),
            reconnect_backoff: Duration::from_millis(20),
            rejoin: false,
        }
    }
}

/// Everything a node did, collected at shutdown.
#[derive(Clone, Debug, Default)]
pub struct NodeReport {
    /// Detections recorded at this node (non-empty only for roots), in
    /// emission order.
    pub detections: Vec<GlobalDetection>,
    /// Bytes written to all sockets (frames incl. length prefixes).
    pub bytes_sent: u64,
    /// Bytes read from all sockets.
    pub bytes_received: u64,
    /// Interval-carrying frames sent (reports + events).
    pub interval_frames_sent: u64,
    /// Of those, standalone (cold-decodable) codec frames — resync points.
    pub standalone_frames_sent: u64,
    /// Times the uplink was re-established after the initial connect.
    pub reconnects: u64,
    /// Interval messages the monitor originated (protocol accounting,
    /// same counter the simulated deployment reports).
    pub interval_msgs_sent: u64,
    /// Peers suspected by the heartbeat failure detector at shutdown.
    pub suspects_at_exit: Vec<ProcessId>,
}

/// Wire/session counters shared across a node's threads.
#[derive(Default)]
struct Counters {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    interval_frames_sent: AtomicU64,
    standalone_frames_sent: AtomicU64,
    reconnects: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    counters: Counters,
    /// Live uplink socket, kept for fault injection
    /// ([`NodeHandle::drop_uplink`]) — severing it from outside exercises
    /// the reconnect-with-resync path.
    uplink_stream: Mutex<Option<TcpStream>>,
    /// Where the uplink thread should dial. Re-targeted by the main loop
    /// when the adoption handshake picks a new parent (the grandparent);
    /// the thread re-reads it on every (re)connect attempt.
    uplink_target: Mutex<Option<(ProcessId, SocketAddr)>>,
}

enum Event {
    /// A decoded frame from connection `conn` (0 = current uplink).
    Msg { conn: u64, msg: NetMsg },
    /// Connection `conn` closed (EOF, error, or framing violation).
    Closed { conn: u64 },
    /// A freshly accepted connection; `writer` feeds its writer thread.
    Accepted { conn: u64, writer: Sender<NetMsg> },
    /// The uplink (re)connected to `peer` and handshake sent; `writer`
    /// is live.
    UplinkUp {
        peer: ProcessId,
        writer: Sender<NetMsg>,
    },
    /// The uplink died; sends will drop until the next `UplinkUp`.
    UplinkDown,
    /// Stop the main loop and report.
    Stop,
}

/// Handle to a running node: poke it, wait for it, collect its report.
pub struct NodeHandle {
    me: ProcessId,
    shared: Arc<Shared>,
    events: Sender<Event>,
    main: Option<JoinHandle<NodeReport>>,
    /// Local address of the node's listener.
    pub addr: SocketAddr,
}

impl NodeHandle {
    /// This node's process id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Blocks until the node has drained every input stream and announced
    /// completion (a root: all feeds and subtrees finished; a non-root:
    /// `Fin` sent upward), or the timeout elapses. Returns whether it
    /// finished. The node keeps serving connections until
    /// [`finish`](Self::finish).
    pub fn wait_done(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut done = self.shared.done.lock().expect("done lock");
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .done_cv
                .wait_timeout(done, deadline - now)
                .expect("done wait");
            done = guard;
        }
        true
    }

    /// Fault injection: severs the current parent connection at the
    /// socket level. The uplink thread notices, reconnects, and the
    /// protocol resyncs — mid-run, with live traffic in flight.
    pub fn drop_uplink(&self) {
        let guard = self.shared.uplink_stream.lock().expect("uplink lock");
        if let Some(stream) = guard.as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Stops the node and collects its report. Idempotent threads unwind
    /// via the shutdown flag; the main loop drains and exits.
    pub fn finish(mut self) -> NodeReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.events.send(Event::Stop);
        match self.main.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => NodeReport::default(),
        }
    }
}

/// Spawns a monitor node on `listener` (children and event clients
/// connect there). The listener must already be bound — binding before
/// spawning lets a deployment allocate all addresses first, so uplinks
/// can name parents that have not started yet.
pub fn spawn(listener: TcpListener, config: NodeConfig) -> io::Result<NodeHandle> {
    let addr = listener.local_addr()?;
    let me = config.me;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        counters: Counters::default(),
        uplink_stream: Mutex::new(None),
        uplink_target: Mutex::new(config.parent),
    });
    let (events_tx, events_rx) = channel::<Event>();

    spawn_listener(listener, Arc::clone(&shared), events_tx.clone());
    if config.parent.is_some() {
        spawn_uplink(
            config.me,
            config.reconnect_backoff,
            Arc::clone(&shared),
            events_tx.clone(),
        );
    }

    let main_shared = Arc::clone(&shared);
    let main = thread::Builder::new()
        .name(format!("ftscp-node-{}", me.0))
        .spawn(move || main_loop(config, main_shared, events_rx))?;

    Ok(NodeHandle {
        me,
        shared,
        events: events_tx,
        main: Some(main),
        addr,
    })
}

// ---------------------------------------------------------------------------
// Connection threads
// ---------------------------------------------------------------------------

fn spawn_listener(listener: TcpListener, shared: Arc<Shared>, events: Sender<Event>) {
    thread::spawn(move || {
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let mut next_conn: u64 = 1; // 0 is reserved for the uplink
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let _ = stream.set_nodelay(true);
                    let writer = spawn_conn_writer(&stream, Arc::clone(&shared));
                    // Announce the connection before its reader exists:
                    // the reader's first Msg must never beat Accepted to
                    // the main loop (the spawn edge orders the sends).
                    if events.send(Event::Accepted { conn, writer }).is_err() {
                        return;
                    }
                    spawn_conn_reader(stream, conn, Arc::clone(&shared), events.clone());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
    });
}

/// Spawns the writer half of a connection: owns the tx codec; frames are
/// encoded and counted in channel order, which is socket order.
fn spawn_conn_writer(stream: &TcpStream, shared: Arc<Shared>) -> Sender<NetMsg> {
    let (tx, rx) = channel::<NetMsg>();
    let mut stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return tx, // sends will pile into a dead channel; reader will report Closed
    };
    thread::spawn(move || {
        let mut codec = ConnCodec::new();
        while let Ok(msg) = rx.recv() {
            let payload = encode_msg(&msg, &mut codec);
            if let Some(kind) = interval_frame_kind(&payload) {
                shared
                    .counters
                    .interval_frames_sent
                    .fetch_add(1, Ordering::Relaxed);
                if kind.is_cold_decodable() {
                    shared
                        .counters
                        .standalone_frames_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            if write_frame(&mut stream, &payload).is_err() {
                return; // the reader observes the close and reports it
            }
            shared
                .counters
                .bytes_sent
                .fetch_add(4 + payload.len() as u64, Ordering::Relaxed);
        }
    });
    tx
}

/// Spawns the reader half: owns the rx codec, reassembles frames, decodes
/// in order, forwards to the main loop.
fn spawn_conn_reader(stream: TcpStream, conn: u64, shared: Arc<Shared>, events: Sender<Event>) {
    thread::spawn(move || {
        read_connection(stream, conn, &shared, &events);
        let _ = events.send(Event::Closed { conn });
    });
}

/// Blocking read loop shared by accepted connections and the uplink.
/// Returns when the connection dies or shutdown is requested.
fn read_connection(stream: TcpStream, conn: u64, shared: &Shared, events: &Sender<Event>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut stream = stream;
    let mut fb = FrameBuffer::new();
    let mut codec = ConnCodec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Drain complete frames before reading more.
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => {
                    let msg = match decode_msg(&frame, &mut codec) {
                        Ok(msg) => msg,
                        Err(_) => return, // corrupt peer: kill the connection
                    };
                    if events.send(Event::Msg { conn, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // framing violation: kill the connection
            }
        }
        match io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => {
                shared
                    .counters
                    .bytes_received
                    .fetch_add(n as u64, Ordering::Relaxed);
                fb.push(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: re-check the shutdown flag
            }
            Err(_) => return,
        }
    }
}

/// The uplink thread: connect → handshake → read until the connection
/// dies → tell the main loop → back off → reconnect. Runs until
/// shutdown. The dial target is re-read from [`Shared::uplink_target`]
/// on every attempt, so the main loop can point the uplink at a new
/// parent (the §III-F adoption path) just by updating the target and
/// severing the current socket.
fn spawn_uplink(me: ProcessId, backoff: Duration, shared: Arc<Shared>, events: Sender<Event>) {
    thread::spawn(move || {
        let mut first = true;
        while !shared.shutdown.load(Ordering::SeqCst) {
            let Some((peer, addr)) = *shared.uplink_target.lock().expect("target lock") else {
                thread::sleep(backoff);
                continue;
            };
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    thread::sleep(backoff);
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            if !first {
                shared.counters.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            first = false;
            *shared.uplink_stream.lock().expect("uplink lock") = stream.try_clone().ok();
            let writer = spawn_conn_writer(&stream, Arc::clone(&shared));
            // Handshake opener; ordered before anything the main loop
            // sends after seeing UplinkUp.
            let _ = writer.send(NetMsg::Hello {
                node: me,
                kind: PeerKind::Child,
                proto: PROTO_VERSION,
            });
            if events.send(Event::UplinkUp { peer, writer }).is_err() {
                return;
            }
            // Read until the connection dies (conn id 0 = uplink).
            read_connection(stream, 0, &shared, &events);
            *shared.uplink_stream.lock().expect("uplink lock") = None;
            if events.send(Event::UplinkDown).is_err() {
                return;
            }
            thread::sleep(backoff);
        }
    });
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

/// [`Transport`] over the node's live connections: `now` is wall-clock
/// microseconds since node start, sends route by process id to the
/// uplink's or a child's writer thread. Sends to unreachable peers are
/// dropped — exactly the lossy-link model the core's reliability layer
/// (unacked + retransmit + resync) is built for.
///
/// Routing is by the peer the uplink is *actually dialed at*
/// (`uplink_peer`), not by `core.parent()`: during an adoption handshake
/// the uplink already points at the prospective parent while the core's
/// parent pointer still names the dead one, and the `Suspect`/`Adopt`
/// frames must reach the former. Frames addressed to the dead parent
/// find no route and drop — the reliability layer re-sends them once the
/// handshake lands.
struct NetTransport<'a> {
    start: &'a Instant,
    uplink_peer: Option<ProcessId>,
    uplink: Option<&'a Sender<NetMsg>>,
    conns: &'a HashMap<u64, Sender<NetMsg>>,
    peer_conn: &'a HashMap<ProcessId, u64>,
}

impl Transport for NetTransport<'_> {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    fn send(&mut self, dst: ProcessId, msg: DetectMsg) {
        let wrapped = NetMsg::Detect(msg);
        if Some(dst) == self.uplink_peer {
            if let Some(up) = self.uplink {
                let _ = up.send(wrapped);
            }
            return;
        }
        if let Some(conn) = self.peer_conn.get(&dst) {
            if let Some(writer) = self.conns.get(conn) {
                let _ = writer.send(wrapped);
            }
        }
    }

    fn send_sized(&mut self, dst: ProcessId, msg: DetectMsg, _size: usize) {
        // The advisory size is the simulator's billing hook; here the
        // writer thread encodes real frames and bills real bytes.
        self.send(dst, msg);
    }
}

struct MainState {
    core: MonitorCore,
    config: NodeConfig,
    start: Instant,
    conns: HashMap<u64, Sender<NetMsg>>,
    peer_conn: HashMap<ProcessId, u64>,
    uplink: Option<Sender<NetMsg>>,
    /// The peer the live uplink is dialed at (≠ `core.parent()` while an
    /// adoption handshake is in flight).
    uplink_peer: Option<ProcessId>,
    /// Address book built from the parent's `Uplink` frames: every
    /// ancestor ever hinted, by id. The core's membership ladder picks
    /// *which* ancestor to adopt toward (freshest hint first, written-off
    /// targets skipped); this map answers *where* to dial it — so a
    /// fallback target from an older hint is reachable even after the
    /// freshest one turned out to be dead.
    hint_addrs: BTreeMap<ProcessId, SocketAddr>,
    feeds_done: usize,
    child_fins: BTreeSet<ProcessId>,
    fin_sent: bool,
}

impl MainState {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    /// Runs `f` with a transport over the current connection tables.
    fn with_transport<R>(&mut self, f: impl FnOnce(&mut MonitorCore, &mut NetTransport) -> R) -> R {
        let mut t = NetTransport {
            start: &self.start,
            uplink_peer: self.uplink_peer,
            uplink: self.uplink.as_ref(),
            conns: &self.conns,
            peer_conn: &self.peer_conn,
        };
        f(&mut self.core, &mut t)
    }

    /// True once every input stream this node will ever get has finished:
    /// all expected event feeds and all *current* children sent `Fin`,
    /// and nothing is waiting for an ack. Children are the engine's live
    /// set, not the static config: adoption adds children mid-run and a
    /// crashed child must not gate termination forever.
    fn drained(&self) -> bool {
        self.feeds_done >= self.config.expected_feeds
            && self
                .core
                .engine()
                .children()
                .iter()
                .all(|c| self.child_fins.contains(c))
            && self.core.unacked_count() == 0
    }

    /// Propagates completion: a root flips the done flag; anyone else
    /// `Fin`s its parent (re-sent after reconnects — receivers treat
    /// `Fin` as idempotent) and then also flips the flag, so
    /// [`NodeHandle::wait_done`] means "drained and announced" on every
    /// role. The node keeps running after the flag — it still answers
    /// reconnects and re-`Fin`s until [`NodeHandle::finish`].
    fn maybe_finish(&mut self, shared: &Shared) {
        if !self.drained() {
            return;
        }
        let mut announced = self.config.parent.is_none();
        if self.fin_sent {
            announced = true; // already told this parent connection
        } else if let (Some(_), Some(up)) = (self.config.parent, &self.uplink) {
            let me = self.config.me;
            let _ = up.send(NetMsg::Fin { from: me });
            self.fin_sent = true;
            announced = true;
        }
        if announced {
            let mut done = shared.done.lock().expect("done lock");
            if !*done {
                *done = true;
                shared.done_cv.notify_all();
            }
        }
    }
}

fn main_loop(config: NodeConfig, shared: Arc<Shared>, events: Receiver<Event>) -> NodeReport {
    let mut core = MonitorCore::new(
        config.me,
        config.parent.map(|(p, _)| p),
        &config.children,
        config.level,
        config.monitor,
    );
    if config.rejoin {
        if let Some((p, _)) = config.parent {
            // A restarted incarnation must not just resume the stream —
            // the parent dropped it at crash time. Arm the adoption
            // handshake; the first UplinkUp sends the Adopt frame.
            core.membership_mut().begin_adoption(p, None);
        }
    }
    let mut st = MainState {
        core,
        config,
        start: Instant::now(),
        conns: HashMap::new(),
        peer_conn: HashMap::new(),
        uplink: None,
        uplink_peer: None,
        hint_addrs: BTreeMap::new(),
        feeds_done: 0,
        child_fins: BTreeSet::new(),
        fin_sent: false,
    };

    let heartbeat_period = st.config.monitor.heartbeat_period.map(to_duration);
    let mut next_heartbeat = heartbeat_period.map(|p| st.start + p);
    let mut next_retransmit = st
        .config
        .monitor
        .retransmit_period
        .map(|p| st.start + to_duration(p));
    // Decentralized failure detection: check for silent peers at half the
    // timeout (only meaningful with heartbeats on).
    let suspect_timeout = st.config.heartbeat_timeout;
    let suspect_period = Duration::from_micros((suspect_timeout.as_micros() / 2).max(1));
    let mut next_suspect = heartbeat_period.map(|_| st.start + suspect_period);

    loop {
        // Fire due timers (heartbeats, retransmit bursts, suspicion).
        let now = Instant::now();
        if let (Some(at), Some(period)) = (next_heartbeat, heartbeat_period) {
            if now >= at {
                st.with_transport(|core, t| core.send_heartbeats(t));
                send_uplink_hints(&mut st, &shared);
                next_heartbeat = Some(now + period);
            }
        }
        if let Some(at) = next_retransmit {
            if now >= at {
                let delay = st.with_transport(|core, t| core.on_retransmit_due(t));
                next_retransmit = delay.map(|d| now + to_duration(d));
            }
        }
        if let Some(at) = next_suspect {
            if now >= at {
                membership_round(&mut st, &shared, suspect_timeout);
                next_suspect = Some(now + suspect_period);
            }
        }

        // Sleep until the next deadline or event.
        let deadline = [next_heartbeat, next_retransmit, next_suspect]
            .into_iter()
            .flatten()
            .min();
        let timeout = deadline
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(READ_POLL)
            .min(READ_POLL);
        let event = match events.recv_timeout(timeout) {
            Ok(ev) => ev,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        };

        match event {
            Event::Accepted { conn, writer } => {
                st.conns.insert(conn, writer);
            }
            Event::Closed { conn } => {
                st.conns.remove(&conn);
                // Only unmap the peer if it still points at this
                // connection — its replacement may have registered first.
                st.peer_conn.retain(|_, &mut c| c != conn);
            }
            Event::UplinkUp { peer, writer } => {
                st.uplink = Some(writer);
                st.uplink_peer = Some(peer);
                if st.core.membership().is_adopting() {
                    // The uplink now points at the prospective parent:
                    // open (or re-knock on) the adoption handshake. The
                    // resync happens when the AdoptAck lands.
                    st.with_transport(|core, t| core.send_adoption_request(t));
                } else {
                    // New connection, cold decoder on the other end:
                    // restart the uplink stream from a standalone frame.
                    st.with_transport(|core, t| core.resync_uplink(t));
                    st.maybe_finish(&shared); // re-announce Fin if we were done
                }
            }
            Event::UplinkDown => {
                st.uplink = None;
                st.uplink_peer = None;
                // The next connection is a new session: a Fin already sent
                // on the dead one must be announced again.
                st.fin_sent = false;
            }
            Event::Msg { conn, msg } => {
                handle_msg(&mut st, &shared, conn, msg);
            }
            Event::Stop => break,
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }

    let now = st.now();
    let timeout = st.config.heartbeat_timeout;
    NodeReport {
        detections: st.core.detections().to_vec(),
        bytes_sent: shared.counters.bytes_sent.load(Ordering::Relaxed),
        bytes_received: shared.counters.bytes_received.load(Ordering::Relaxed),
        interval_frames_sent: shared.counters.interval_frames_sent.load(Ordering::Relaxed),
        standalone_frames_sent: shared
            .counters
            .standalone_frames_sent
            .load(Ordering::Relaxed),
        reconnects: shared.counters.reconnects.load(Ordering::Relaxed),
        interval_msgs_sent: st.core.interval_msgs_sent(),
        suspects_at_exit: st.core.suspects(now, timeout),
    }
}

/// Sends the TCP half of the grandparent hint to every connected child:
/// where this node's own uplink points (id + address). A child that
/// loses this node dials that address for the adoption handshake.
fn send_uplink_hints(st: &mut MainState, shared: &Shared) {
    let target = *shared.uplink_target.lock().expect("target lock");
    let hint = NetMsg::Uplink {
        parent: target.map(|(p, addr)| (p, addr.to_string())),
    };
    for (peer, conn) in &st.peer_conn {
        if st.core.engine().has_child(*peer) {
            if let Some(writer) = st.conns.get(conn) {
                let _ = writer.send(hint.clone());
            }
        }
    }
}

/// One decentralized failure-detection round (the TCP driver of
/// [`MonitorCore::membership_tick`]): dead children are dropped by the
/// core itself; a dead parent re-targets the uplink thread at the
/// grandparent and severs the current socket — the handshake goes out
/// once `UplinkUp` reports the new connection.
fn membership_round(st: &mut MainState, shared: &Shared, timeout: SimTime) {
    let decisions = st.with_transport(|core, t| core.membership_tick(timeout, t));
    for decision in decisions {
        match decision {
            MembershipEvent::AdoptionStarted { target } => {
                if st.uplink_peer == Some(target) && st.uplink.is_some() {
                    // Already dialed at the target: (re-)knock directly.
                    st.with_transport(|core, t| core.send_adoption_request(t));
                } else if let Some(&addr) = st.hint_addrs.get(&target) {
                    *shared.uplink_target.lock().expect("target lock") = Some((target, addr));
                    // Sever the current socket (if any): the uplink
                    // thread re-reads the target and dials the new
                    // adoption candidate.
                    if let Some(stream) = shared.uplink_stream.lock().expect("uplink lock").as_ref()
                    {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                }
            }
            // A dropped child may have been the last thing gating Fin;
            // an orphaned node just keeps serving its subtree.
            MembershipEvent::ChildDropped(_) | MembershipEvent::Orphaned { .. } => {}
        }
    }
    st.maybe_finish(shared);
}

fn handle_msg(st: &mut MainState, shared: &Shared, conn: u64, msg: NetMsg) {
    match msg {
        NetMsg::Hello { node, kind, proto } => {
            if proto != PROTO_VERSION {
                // Incompatible peer: drop its writer; its reader will
                // observe the close when the socket goes away at shutdown.
                st.conns.remove(&conn);
                return;
            }
            if kind == PeerKind::Child {
                st.peer_conn.insert(node, conn);
                let now = st.now();
                st.core.note_heartbeat(node, now);
            }
            let me = st.config.me;
            if let Some(writer) = st.conns.get(&conn) {
                let _ = writer.send(NetMsg::HelloAck { node: me });
            }
        }
        NetMsg::HelloAck { node } => {
            // Parent accepted our handshake — counts as liveness.
            let now = st.now();
            st.core.note_heartbeat(node, now);
        }
        NetMsg::Detect(d) => {
            st.with_transport(|core, t| core.on_message(d, t));
            // An ack may have drained the last unacked report.
            st.maybe_finish(shared);
        }
        NetMsg::Event(interval) => {
            st.with_transport(|core, t| core.observe_local(interval, t));
        }
        NetMsg::Fin { from } => {
            if conn == 0 {
                // Fin from the parent direction is meaningless; ignore.
                return;
            }
            if st.peer_conn.get(&from) == Some(&conn) {
                st.child_fins.insert(from);
            } else {
                // An event client finished its feed.
                st.feeds_done += 1;
            }
            st.maybe_finish(shared);
        }
        NetMsg::Uplink { parent } => {
            if conn != 0 {
                return; // the hint only makes sense from the parent direction
            }
            if let Some((p, a)) = parent.and_then(|(p, addr)| addr.parse().ok().map(|a| (p, a))) {
                st.hint_addrs.insert(p, a);
            }
        }
    }
}

fn to_duration(t: SimTime) -> Duration {
    Duration::from_micros(t.0)
}
