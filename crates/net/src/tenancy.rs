//! Multi-tenant uplink over real sockets.
//!
//! The registry's transport story is per-connection batching: one
//! [`DetectMsg::IntervalBatch`] frame per flush carries the pending
//! intervals of *every* tenant fed by that connection, each interval
//! encoded once and tagged with the predicate ids consuming it (see
//! `ftscp_intervals::codec::encode_tenant_batch`). This module stands up
//! the smallest honest deployment of that path: a registry server on a
//! real TCP listener, one feeder connection per monitored process, and
//! predicate-tagged batches on the wire — so the differential test can
//! assert that detection through real sockets is bit-identical to the
//! in-memory [`PredicateRegistry`], and the bench can measure real bytes.
//!
//! The server feeds each decoded group to the tenants it names, in frame
//! order per connection. Per-process interval order is preserved by TCP
//! FIFO; interleaving *across* connections is whatever the scheduler
//! produces, which is exactly the interleaving-invariance the detector
//! guarantees (and the differential verifies).

use crate::frame::{read_frame, write_frame, FrameBuffer};
use crate::wire::{decode_msg, encode_msg, NetMsg, PeerKind, PROTO_VERSION};
use ftscp_core::protocol::{ConnCodec, DetectMsg};
use ftscp_core::registry::{PredicateRegistry, TenantSpec};
use ftscp_core::PredicateId;
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::Execution;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Knobs for a tenancy run.
#[derive(Clone, Debug)]
pub struct TenancyConfig {
    /// Max intervals coalesced into one batch frame per connection flush.
    pub batch_span: usize,
    /// Per-socket read timeout (a hung peer fails the run instead of
    /// wedging it).
    pub read_timeout: Duration,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            batch_span: 8,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One tenant's time-blind solution sequence:
/// `(solution index, coverage (process, seq) pairs)` per root detection,
/// in order — the same shape `TenantSlot::solution_sequence` returns.
pub type SolutionSeq = Vec<(u64, Vec<(u32, u64)>)>;

/// What a tenancy run produced.
#[derive(Clone, Debug)]
pub struct TenancyReport {
    /// Per-tenant time-blind solution sequences, in registration order.
    /// The differential anchor — compare against an in-memory registry
    /// fed the same execution.
    pub solution_sequences: Vec<(PredicateId, SolutionSeq)>,
    /// Total root detections across tenants.
    pub total_detections: usize,
    /// Bytes actually written to sockets by the feeders (frames incl.
    /// length prefixes and handshake).
    pub batched_bytes: u64,
    /// What the same routed traffic would have cost as per-predicate
    /// `Interval` frames (one frame per `(interval, tenant)` pair, each
    /// predicate with its own delta stream) — the naive uplink the batch
    /// replaces. Computed with shadow codecs, not sent.
    pub naive_bytes: u64,
    /// Events fed across all connections.
    pub events_sent: u64,
    /// Batch frames sent across all connections.
    pub frames_sent: u64,
}

/// Per-feeder tally returned by each client thread.
struct FeederStats {
    batched_bytes: u64,
    naive_bytes: u64,
    events: u64,
    frames: u64,
}

const FRAME_PREFIX: u64 = 4; // u32 length prefix per frame

fn serve_conn(
    stream: TcpStream,
    registry: &Mutex<PredicateRegistry>,
    timeout: Duration,
) -> io::Result<()> {
    let mut stream = stream;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout)).ok();
    let mut fb = FrameBuffer::new();
    let mut rx = ConnCodec::new();
    let mut tx = ConnCodec::new();
    // Handshake: Hello(Client) in, HelloAck out.
    let hello = read_frame(&mut stream, &mut fb)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello"))?;
    let node = match decode_msg(&hello, &mut rx) {
        Ok(NetMsg::Hello { node, proto, .. }) if proto == PROTO_VERSION => node,
        Ok(NetMsg::Hello { .. }) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "proto version mismatch",
            ))
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected hello")),
    };
    let ack = encode_msg(&NetMsg::HelloAck { node }, &mut tx);
    write_frame(&mut stream, &ack)?;
    loop {
        let Some(frame) = read_frame(&mut stream, &mut fb)? else {
            return Ok(()); // orderly close after Fin
        };
        match decode_msg(&frame, &mut rx) {
            Ok(NetMsg::Detect(DetectMsg::IntervalBatch { groups, .. })) => {
                // One lock per frame, not per interval: the batch is the
                // unit of ingestion just as it is the unit of framing.
                let mut reg = registry.lock().expect("registry poisoned");
                for (preds, iv) in groups {
                    for pred in preds {
                        reg.feed_tenant(PredicateId(pred), iv.clone());
                    }
                }
            }
            Ok(NetMsg::Fin { .. }) => return Ok(()),
            Ok(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected message: {other:?}"),
                ))
            }
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.0)),
        }
    }
}

fn feed_conn(
    addr: SocketAddr,
    process: ProcessId,
    preds: Vec<u32>,
    intervals: Vec<ftscp_intervals::Interval>,
    batch_span: usize,
) -> io::Result<FeederStats> {
    let mut stats = FeederStats {
        batched_bytes: 0,
        naive_bytes: 0,
        events: 0,
        frames: 0,
    };
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut tx = ConnCodec::new();
    let hello = encode_msg(
        &NetMsg::Hello {
            node: process,
            kind: PeerKind::Client,
            proto: PROTO_VERSION,
        },
        &mut tx,
    );
    write_frame(&mut stream, &hello)?;
    stats.batched_bytes += FRAME_PREFIX + hello.len() as u64;
    let mut fb = FrameBuffer::new();
    let mut rx = ConnCodec::new();
    match read_frame(&mut stream, &mut fb)? {
        Some(frame) => match decode_msg(&frame, &mut rx) {
            Ok(NetMsg::HelloAck { .. }) => {}
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "handshake: expected HelloAck",
                ))
            }
        },
        None => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "handshake: connection closed",
            ))
        }
    }
    // The naive comparison stream: one delta codec per tenant, as if each
    // predicate ran its own pre-registry uplink over this edge.
    let mut naive_codecs: Vec<ConnCodec> = preds.iter().map(|_| ConnCodec::new()).collect();
    for chunk in intervals.chunks(batch_span.max(1)) {
        let groups: Vec<(Vec<u32>, ftscp_intervals::Interval)> =
            chunk.iter().map(|iv| (preds.clone(), iv.clone())).collect();
        for iv in chunk {
            for (codec, &pred) in naive_codecs.iter_mut().zip(&preds) {
                let msg = DetectMsg::Interval {
                    from: process,
                    interval: iv.clone(),
                    resync: false,
                };
                // 1 tag + 1 subtag bytes ride ahead of the codec payload.
                stats.naive_bytes += FRAME_PREFIX + 2 + codec.msg_size(&msg) as u64;
                codec.note_sent(iv);
                let _ = pred;
            }
        }
        let msg = NetMsg::Detect(DetectMsg::IntervalBatch {
            from: process,
            groups,
            resync: false,
        });
        let payload = encode_msg(&msg, &mut tx);
        write_frame(&mut stream, &payload)?;
        stats.batched_bytes += FRAME_PREFIX + payload.len() as u64;
        stats.events += chunk.len() as u64;
        stats.frames += 1;
    }
    let fin = encode_msg(&NetMsg::Fin { from: process }, &mut tx);
    write_frame(&mut stream, &fin)?;
    stats.batched_bytes += FRAME_PREFIX + fin.len() as u64;
    Ok(stats)
}

/// Runs `exec` through a registry server over real loopback sockets: one
/// feeder connection per process, predicate-tagged batches on the wire,
/// every tenant detected server-side. Returns the per-tenant solution
/// sequences plus wire accounting (batched vs per-predicate bytes).
///
/// Callers should gate on [`crate::sockets_available`].
pub fn run_tenancy(
    tree: &SpanningTree,
    specs: &[TenantSpec],
    exec: &Execution,
    config: &TenancyConfig,
) -> io::Result<TenancyReport> {
    let registry = PredicateRegistry::new(tree, specs);
    // Routing is decided feeder-side from the registry's own index, the
    // same relevance filter `ingest` applies in memory.
    let routes: Vec<Vec<u32>> = (0..exec.n)
        .map(|p| {
            registry
                .tenants_for(ProcessId(p as u32))
                .into_iter()
                .map(|id| id.0)
                .collect()
        })
        .collect();
    let registry = Arc::new(Mutex::new(registry));

    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    // Only processes with at least one tenant dial in (a group may not be
    // empty on the wire, and an untenanted process has nothing to say).
    let feeding: Vec<usize> = (0..exec.n).filter(|&p| !routes[p].is_empty()).collect();
    let server = {
        let registry = Arc::clone(&registry);
        let conns = feeding.len();
        let timeout = config.read_timeout;
        thread::spawn(move || -> io::Result<()> {
            let mut handlers = Vec::with_capacity(conns);
            for _ in 0..conns {
                let (stream, _) = listener.accept()?;
                let registry = Arc::clone(&registry);
                handlers.push(thread::spawn(move || {
                    serve_conn(stream, &registry, timeout)
                }));
            }
            for h in handlers {
                h.join()
                    .map_err(|_| io::Error::other("server handler panicked"))??;
            }
            Ok(())
        })
    };

    let feeders: Vec<_> = feeding
        .iter()
        .map(|&p| {
            let process = ProcessId(p as u32);
            let preds = routes[p].clone();
            let intervals = exec.intervals_of(process).to_vec();
            let span = config.batch_span;
            thread::spawn(move || feed_conn(addr, process, preds, intervals, span))
        })
        .collect();

    let mut batched_bytes = 0;
    let mut naive_bytes = 0;
    let mut events_sent = 0;
    let mut frames_sent = 0;
    for f in feeders {
        let stats = f
            .join()
            .map_err(|_| io::Error::other("feeder thread panicked"))??;
        batched_bytes += stats.batched_bytes;
        naive_bytes += stats.naive_bytes;
        events_sent += stats.events;
        frames_sent += stats.frames;
    }
    server
        .join()
        .map_err(|_| io::Error::other("server thread panicked"))??;

    let registry = Arc::into_inner(registry)
        .expect("all server threads joined")
        .into_inner()
        .expect("registry poisoned");
    let solution_sequences = registry
        .tenants()
        .map(|t| (t.id(), t.solution_sequence()))
        .collect();
    Ok(TenancyReport {
        solution_sequences,
        total_detections: registry.total_detections(),
        batched_bytes,
        naive_bytes,
        events_sent,
        frames_sent,
    })
}
