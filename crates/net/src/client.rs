//! Event-ingestion client: feeds local-predicate intervals into a
//! node over TCP.
//!
//! This is the external face of the system: the monitored application
//! (or a test harness replaying a recorded execution) connects to its
//! node's listener, handshakes as a [`PeerKind::Client`], and streams
//! [`NetMsg::Event`] frames — one per completed local interval, in
//! per-process order. A final [`NetMsg::Fin`] tells the node the feed is
//! complete, which is what lets a run terminate deterministically.

use crate::frame::{read_frame, write_frame, FrameBuffer};
use crate::wire::{decode_msg, encode_msg, NetMsg, PeerKind, PROTO_VERSION};
use ftscp_core::protocol::ConnCodec;
use ftscp_intervals::Interval;
use ftscp_vclock::ProcessId;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A connected event feed for one process.
pub struct EventClient {
    stream: TcpStream,
    tx_codec: ConnCodec,
    from: ProcessId,
}

impl EventClient {
    /// Connects to `addr`, handshakes as an event client for process
    /// `from`, and waits for the node's `HelloAck`.
    pub fn connect(addr: SocketAddr, from: ProcessId) -> io::Result<EventClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let mut tx_codec = ConnCodec::new();
        let hello = encode_msg(
            &NetMsg::Hello {
                node: from,
                kind: PeerKind::Client,
                proto: PROTO_VERSION,
            },
            &mut tx_codec,
        );
        write_frame(&mut stream, &hello)?;
        // Wait for the ack so a caller knows the node is live before it
        // starts blasting events.
        let mut fb = FrameBuffer::new();
        let mut rx_codec = ConnCodec::new();
        match read_frame(&mut stream, &mut fb)? {
            Some(frame) => match decode_msg(&frame, &mut rx_codec) {
                Ok(NetMsg::HelloAck { .. }) => {}
                Ok(_) | Err(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "handshake: expected HelloAck",
                    ))
                }
            },
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "handshake: connection closed",
                ))
            }
        }
        Ok(EventClient {
            stream,
            tx_codec,
            from,
        })
    }

    /// Streams one completed local interval. Intervals must be sent in
    /// per-process order (ascending `seq`), like any monitored process
    /// observes them.
    pub fn send_event(&mut self, interval: &Interval) -> io::Result<()> {
        let payload = encode_msg(&NetMsg::Event(interval.clone()), &mut self.tx_codec);
        write_frame(&mut self.stream, &payload)
    }

    /// Ends the feed: sends `Fin` and closes the connection. TCP's
    /// orderly close delivers everything already written.
    pub fn fin(mut self) -> io::Result<()> {
        let payload = encode_msg(&NetMsg::Fin { from: self.from }, &mut self.tx_codec);
        write_frame(&mut self.stream, &payload)
    }
}
