//! Failure-injection fuzzing: random crash schedules against random
//! workloads — the system must never panic, never emit an invalid
//! detection, and remain deterministic.

use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::HierarchicalDetector;
use ftscp_intervals::definitely_holds;
use ftscp_simnet::{SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::RandomExecution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In-memory detector under random failure points.
    #[test]
    fn in_memory_random_failures_stay_valid(
        seed in 0u64..10_000,
        kills in proptest::collection::vec((0u32..15, 0usize..100), 0..8),
    ) {
        let n = 15;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(6)
            .skip_prob(0.1)
            .seed(seed)
            .build();
        let topo = Topology::dary_tree(n, 2, 1);
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut det = HierarchicalDetector::new(&tree);

        let all: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
        let mut kill_at: Vec<(usize, u32)> = kills
            .iter()
            .map(|&(v, at)| (at % (all.len() + 1), v))
            .collect();
        kill_at.sort();
        let mut alive = vec![true; n];
        let mut next_kill = 0;
        for (i, iv) in all.iter().enumerate() {
            while next_kill < kill_at.len() && kill_at[next_kill].0 <= i {
                let v = kill_at[next_kill].1;
                if alive[v as usize] {
                    alive[v as usize] = false;
                    det.fail_node(ProcessId(v), &topo);
                }
                next_kill += 1;
            }
            if alive[iv.source.index()] {
                det.feed(iv.clone());
            }
        }
        // Safety: every detection satisfies Definitely over its members'
        // original local intervals.
        det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
            .unwrap();
        // And directly re-validate via the raw overlap condition.
        for d in det.root_solutions() {
            let members: Vec<_> = d
                .coverage
                .iter()
                .map(|r| exec.intervals[r.process.index()][r.seq as usize].clone())
                .collect();
            prop_assert!(definitely_holds(&members));
        }
    }

    /// Networked deployment under random crash times: deterministic and
    /// panic-free, with only valid detections.
    #[test]
    fn deployed_random_crashes_are_safe_and_deterministic(
        seed in 0u64..10_000,
        crashes in proptest::collection::vec((1u32..7, 20u64..500), 0..3),
    ) {
        let n = 7;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(5)
            .seed(seed)
            .build();
        let topo = Topology::dary_tree(n, 2, 1);
        let tree = SpanningTree::balanced_dary(n, 2);

        let run = || {
            let mut dep = Deployment::new(
                topo.clone(),
                tree.clone(),
                &exec,
                DeployConfig { sim: ftscp_simnet::SimConfig { seed, ..Default::default() }, ..Default::default() },
            );
            for &(v, at_ms) in &crashes {
                dep.schedule_crash(ProcessId(v), SimTime::from_millis(at_ms));
            }
            dep.run();
            let dets = dep.detections();
            for d in &dets {
                let members: Vec<_> = d
                    .coverage
                    .iter()
                    .map(|r| exec.intervals[r.process.index()][r.seq as usize].clone())
                    .collect();
                assert!(definitely_holds(&members), "invalid detection {d:?}");
            }
            dets.len()
        };
        prop_assert_eq!(run(), run(), "deterministic under crashes");
    }
}
