//! Integration tests: the in-memory hierarchical detector on the paper's
//! Figure 2 scenario and on random executions.

use ftscp_core::HierarchicalDetector;
use ftscp_intervals::IntervalRef;
use ftscp_simnet::{NodeId, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{scenarios, RandomExecution};

/// The Figure 2 spanning tree: P3 (node 2) roots, children P2 (1) and
/// P4 (3); P1 (0) is P2's child. Topology adds the P2–P4 link used by the
/// Figure 2(c) reconnection.
fn fig2_tree_and_topo() -> (SpanningTree, Topology) {
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
    let tree = SpanningTree::from_parents(vec![
        Some(NodeId(1)), // P1 under P2
        Some(NodeId(2)), // P2 under P3
        None,            // P3 root
        Some(NodeId(2)), // P4 under P3
    ]);
    assert!(tree.is_subgraph_of(&topo));
    (tree, topo)
}

fn iv_ref(p: u32, seq: u64) -> IntervalRef {
    IntervalRef {
        process: ProcessId(p),
        seq,
    }
}

#[test]
fn figure2_detects_exactly_once_with_the_fresh_aggregate() {
    let (tree, _) = fig2_tree_and_topo();
    let exec = scenarios::figure2();
    let mut det = HierarchicalDetector::new(&tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }
    let dets = det.root_solutions();
    assert_eq!(dets.len(), 1, "one global satisfaction");
    // The detection is made of x1, x3, x4, x5 — not the stale x2.
    assert_eq!(
        dets[0].coverage,
        vec![iv_ref(0, 0), iv_ref(1, 1), iv_ref(2, 0), iv_ref(3, 0)]
    );
    assert_eq!(dets[0].at_node, ProcessId(2), "reported at the root P3");
    // P2 found two subtree-level solutions ({x1,x2} then {x1,x3}).
    assert_eq!(det.solutions_at(ProcessId(1)), 2);
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .unwrap();
}

#[test]
fn figure2_failure_of_p3_preserves_partial_detection() {
    let (tree, topo) = fig2_tree_and_topo();
    let exec = scenarios::figure2();
    let mut det = HierarchicalDetector::new(&tree);

    // Feed everything except x1 (which completes last), so nothing global
    // has been detected yet when P3 dies.
    let all = exec.intervals_interleaved();
    let (x1_feed, rest): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|iv| iv.source == ProcessId(0));
    for iv in rest {
        det.feed(iv.clone());
    }
    assert!(det.root_solutions().is_empty());

    // P3 (node 2, the root) fails; P2 is promoted (larger subtree) and P4
    // re-attaches under it via the P2–P4 topology link.
    det.fail_node(ProcessId(2), &topo);
    assert_eq!(det.tree().root(), NodeId(1), "P2 promoted");
    assert!(det.tree().children(NodeId(1)).contains(&NodeId(3)));

    // Now x1 completes: the partial predicate over {P1, P2, P4} fires.
    for iv in x1_feed {
        det.feed(iv.clone());
    }
    let dets = det.root_solutions();
    assert_eq!(dets.len(), 1, "partial predicate detected after failure");
    assert_eq!(
        dets[0].coverage,
        vec![iv_ref(0, 0), iv_ref(1, 1), iv_ref(3, 0)],
        "the surviving solution is {{x1, x3, x5}}"
    );
    assert_eq!(dets[0].at_node, ProcessId(1), "reported at the new root P2");
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .unwrap();
}

#[test]
fn clean_rounds_detect_once_per_round_at_every_tree_shape() {
    // Every round of a no-skip/no-solo workload is one global satisfaction.
    for (n, d) in [(7usize, 2usize), (13, 3), (5, 4), (15, 2)] {
        let rounds = 5;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(rounds)
            .seed(42)
            .build();
        let tree = SpanningTree::balanced_dary(n, d);
        let mut det = HierarchicalDetector::new(&tree);
        for iv in exec.intervals_interleaved() {
            det.feed(iv.clone());
        }
        assert_eq!(
            det.root_solutions().len(),
            rounds,
            "n={n} d={d}: one detection per clean round"
        );
        // Every detection covers all n processes.
        for det_rec in det.root_solutions() {
            assert_eq!(det_rec.covered_processes().len(), n);
        }
        det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
            .unwrap();
    }
}

#[test]
fn noisy_workloads_never_emit_invalid_detections() {
    for seed in 0..20 {
        let n = 9;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(8)
            .skip_prob(0.25)
            .solo_prob(0.2)
            .noise_msg_prob(0.5)
            .seed(seed)
            .build();
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut det = HierarchicalDetector::new(&tree);
        for iv in exec.intervals_interleaved() {
            det.feed(iv.clone());
        }
        det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn detection_happens_at_every_level() {
    // Interior nodes detect the partial predicate over their subtrees even
    // when the global predicate never holds: make the last round global-
    // breaking by killing one process's participation.
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(3)
        .build();
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut det = HierarchicalDetector::new(&tree);
    // Drop process 6's intervals entirely: the right subtree of the root
    // can never complete, so no global detection...
    for iv in exec.intervals_interleaved() {
        if iv.source != ProcessId(6) {
            det.feed(iv.clone());
        }
    }
    assert!(det.root_solutions().is_empty(), "global predicate blocked");
    // ...but the left subtree (node 1 over {1, 3, 4}) kept detecting.
    assert_eq!(det.solutions_at(ProcessId(1)), 6);
    // And leaves always detect their own intervals.
    assert_eq!(det.solutions_at(ProcessId(3)), 6);
}

#[test]
fn leaf_failure_only_narrows_coverage() {
    let n = 7;
    let rounds = 4;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(8)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut det = HierarchicalDetector::new(&tree);

    // Feed two full rounds, kill leaf 6, feed the rest.
    let all: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
    let (first, second) = all.split_at(all.len() / 2);
    for iv in first {
        det.feed(iv.clone());
    }
    det.fail_node(ProcessId(6), &topo);
    for iv in second {
        if iv.source != ProcessId(6) {
            det.feed(iv.clone());
        }
    }
    let dets = det.root_solutions();
    assert_eq!(dets.len(), rounds, "every round still detected");
    assert!(dets
        .iter()
        .take(2)
        .all(|d| d.covered_processes().len() == n));
    assert!(
        dets.iter()
            .skip(2)
            .all(|d| d.covered_processes().len() == n - 1),
        "post-failure detections cover the survivors"
    );
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .unwrap();
}

#[test]
fn crash_recovery_rejoins_and_detection_resumes() {
    let n = 7;
    let rounds = 6;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(29)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut det = HierarchicalDetector::new(&tree);

    let all: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
    let third = all.len() / 3;

    // Phase 1: two rounds; then node 5 checkpoints and crashes.
    for iv in &all[..third] {
        det.feed(iv.clone());
    }
    // In a real deployment the node persists this itself; here we take it
    // just before the crash.
    let checkpoint = det.checkpoint_node(ProcessId(5)).expect("node alive");
    det.fail_node(ProcessId(5), &topo);

    // Phase 2: detection continues without node 5 (coverage n-1).
    for iv in &all[third..2 * third] {
        if iv.source != ProcessId(5) {
            det.feed(iv.clone());
        }
    }
    let mid_detections = det.root_solutions().len();
    assert!(mid_detections > 0);

    // Phase 3: node 5 reboots from its checkpoint and rejoins; rounds in
    // which it participates cover all n processes again.
    det.rejoin_node(ProcessId(5), checkpoint, &topo).unwrap();
    assert!(det.tree().contains(NodeId(5)));
    for iv in &all[2 * third..] {
        det.feed(iv.clone());
    }
    let final_detections = det.root_solutions();
    assert!(final_detections.len() > mid_detections, "detection resumed");
    assert_eq!(
        final_detections.last().unwrap().covered_processes().len(),
        n,
        "full coverage restored after recovery"
    );
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .unwrap();
}

#[test]
fn rejoin_rejects_bad_requests() {
    let n = 7;
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut det = HierarchicalDetector::new(&tree);
    let cp5 = det.checkpoint_node(ProcessId(5)).unwrap();
    // Alive node cannot rejoin.
    assert!(det.rejoin_node(ProcessId(5), cp5.clone(), &topo).is_err());
    det.fail_node(ProcessId(5), &topo);
    // Wrong checkpoint owner rejected.
    let cp3 = det.checkpoint_node(ProcessId(3)).unwrap();
    assert!(det.rejoin_node(ProcessId(5), cp3, &topo).is_err());
    // Correct checkpoint accepted.
    assert!(det.rejoin_node(ProcessId(5), cp5, &topo).is_ok());
    // Dead-node checkpoint requests error.
    det.fail_node(ProcessId(6), &topo);
    assert!(det.checkpoint_node(ProcessId(6)).is_none());
}

#[test]
fn cascading_failures_down_to_two_nodes() {
    let n = 15;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(10)
        .seed(17)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut det = HierarchicalDetector::new(&tree);

    let all: Vec<_> = exec.intervals_interleaved().into_iter().cloned().collect();
    let mut alive: Vec<bool> = vec![true; n];
    let victims = [3u32, 1, 9, 0, 12, 5, 7, 11, 2, 13, 4, 8, 6];
    let chunk = all.len() / (victims.len() + 1) + 1;
    for (round, part) in all.chunks(chunk).enumerate() {
        for iv in part {
            if alive[iv.source.index()] {
                det.feed(iv.clone());
            }
        }
        if round < victims.len() {
            let v = victims[round];
            alive[v as usize] = false;
            det.fail_node(ProcessId(v), &topo);
        }
    }
    // No invalid detections through 13 failures.
    det.verify_detections(|p, s| exec.intervals[p.index()].get(s as usize).cloned())
        .unwrap();
    // The final tree holds the two survivors.
    assert_eq!(det.tree().node_count(), 2);
}
