//! Integration tests: the distributed deployment on the simulated
//! non-FIFO multi-hop network.

use ftscp_core::deploy::{DeployConfig, Deployment};
use ftscp_core::HierarchicalDetector;
use ftscp_simnet::{LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{scenarios, Execution, RandomExecution};
use std::collections::BTreeSet;

fn config(seed: u64) -> DeployConfig {
    DeployConfig {
        sim: SimConfig {
            seed,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        ..Default::default()
    }
}

/// Reference: detections of the in-memory detector on the same execution.
fn reference_coverages(tree: &SpanningTree, exec: &Execution) -> Vec<Vec<(u32, u64)>> {
    let mut det = HierarchicalDetector::new(tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }
    det.root_solutions()
        .iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

#[test]
fn deployment_matches_in_memory_detector() {
    for seed in [1u64, 2, 3] {
        let n = 7;
        let exec = RandomExecution::builder(n)
            .intervals_per_process(5)
            .skip_prob(0.15)
            .seed(seed)
            .build();
        let topo = Topology::dary_tree(n, 2, 1);
        let tree = SpanningTree::balanced_dary(n, 2);

        let mut dep = Deployment::new(topo, tree.clone(), &exec, config(seed));
        dep.run();

        let got: Vec<Vec<(u32, u64)>> = dep
            .detections()
            .iter()
            .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
            .collect();
        let want = reference_coverages(&tree, &exec);
        assert_eq!(
            got, want,
            "seed {seed}: network run must match in-memory run"
        );
    }
}

#[test]
fn deployment_is_deterministic() {
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(4)
        .seed(5)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let run = |seed| {
        let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, config(seed));
        dep.run();
        (
            dep.detections().len(),
            dep.metrics().sends,
            dep.metrics().hop_messages,
        )
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn heartbeats_flow_along_tree_edges() {
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(2)
        .seed(1)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut dep = Deployment::new(topo, tree, &exec, config(1));
    dep.run();
    // The root has heard heartbeats from both children.
    let root_app = dep.app(ProcessId(0));
    assert!(root_app.heartbeat_seen().contains_key(&ProcessId(1)));
    assert!(root_app.heartbeat_seen().contains_key(&ProcessId(2)));
}

#[test]
fn heartbeat_timeouts_expose_suspects() {
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(3)
        .seed(2)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut dep = Deployment::new(topo, tree, &exec, config(2));
    // Node 1 (child of the root) dies early; the repair later removes it
    // from the root's peer set, so `suspects` only ever reasons about the
    // *current* peers.
    dep.schedule_crash(ProcessId(1), SimTime::from_millis(60));
    dep.run();
    let root = dep.app(ProcessId(0));
    // The dead node stopped beaconing at its crash; its live sibling kept
    // going until the run's end.
    let last_1 = root.heartbeat_seen().get(&ProcessId(1)).copied().unwrap();
    let last_2 = root.heartbeat_seen().get(&ProcessId(2)).copied().unwrap();
    assert!(
        last_1 < SimTime::from_millis(70),
        "node 1 stopped beaconing at death"
    );
    assert!(last_2 > last_1, "node 2 outlived node 1's beacons");
    // After the repair, node 1 is no longer a peer at all.
    assert!(!root.engine().has_child(ProcessId(1)));
    // Timeout arithmetic: probing right after the last heartbeat flags
    // nobody; probing far past it flags every current peer.
    let fresh_probe = last_2 + SimTime::from_millis(1);
    assert!(root.suspects(fresh_probe, SimTime::from_secs(1)).is_empty());
    let stale_probe = last_2 + SimTime::from_secs(30);
    let suspects = root.suspects(stale_probe, SimTime::from_secs(1));
    assert!(
        suspects.contains(&ProcessId(2)),
        "silence past timeout ⇒ suspect"
    );
}

#[test]
fn figure2_scenario_over_the_network_with_p3_crash() {
    let exec = scenarios::figure2();
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
    let tree = SpanningTree::from_parents(vec![
        Some(NodeId(1)),
        Some(NodeId(2)),
        None,
        Some(NodeId(2)),
    ]);
    let cfg = DeployConfig {
        interval_spacing: SimTime::from_millis(20),
        // Fast failure detector: repair completes before x1 arrives at P2.
        repair_delay: SimTime::from_millis(5),
        ..config(11)
    };
    // The completion order is x2, x3, x5, x4, x1 → x1 completes at 100ms.
    // Crash P3 at 90ms: after repair (at 95ms), P2 is promoted, P4
    // re-attaches under it, and when x1 completes the partial predicate
    // {x1, x3, x5} is detected at the new root P2 — Figure 2(c).
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    dep.schedule_crash(ProcessId(2), SimTime::from_millis(90));
    dep.run();

    let dets = dep.detections();
    assert_eq!(dets.len(), 1, "partial predicate detected exactly once");
    assert_eq!(dets[0].at_node, ProcessId(1), "at the promoted root P2");
    let covered: BTreeSet<u32> = dets[0].covered_processes().iter().map(|p| p.0).collect();
    assert_eq!(covered, BTreeSet::from([0, 1, 3]), "survivors P1, P2, P4");
    assert_eq!(dep.tree().root(), NodeId(1));
}

#[test]
fn crash_free_figure2_detects_globally_over_network() {
    let exec = scenarios::figure2();
    let topo = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
    let tree = SpanningTree::from_parents(vec![
        Some(NodeId(1)),
        Some(NodeId(2)),
        None,
        Some(NodeId(2)),
    ]);
    let mut dep = Deployment::new(topo, tree, &exec, config(2));
    dep.run();
    let dets = dep.detections();
    assert_eq!(dets.len(), 1);
    assert_eq!(dets[0].covered_processes().len(), 4);
    assert_eq!(dets[0].at_node, ProcessId(2), "at the original root P3");
}

#[test]
fn mid_run_leaf_crash_narrows_coverage() {
    let n = 7;
    let rounds = 6;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(23)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = config(23);
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    // Intervals complete every 10ms; n*rounds = 42 intervals → 420ms span.
    // Kill leaf 5 midway.
    dep.schedule_crash(ProcessId(5), SimTime::from_millis(200));
    dep.run();
    let dets = dep.detections();
    assert!(!dets.is_empty());
    assert!(
        dets.iter().any(|d| d.covered_processes().len() == n),
        "full-coverage detections before the crash"
    );
    assert!(
        dets.last().unwrap().covered_processes().len() == n - 1,
        "post-crash detections cover the 6 survivors"
    );
}

#[test]
fn non_fifo_reordering_is_tolerated() {
    // Huge delay variance: child reports routinely overtake each other.
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(31)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = DeployConfig {
        sim: SimConfig {
            seed: 31,
            link: LinkModel {
                min_delay: SimTime(10),
                max_delay: SimTime(400_000),
                drop_prob: 0.0,
            },
        },
        interval_spacing: SimTime::from_millis(1),
        ..Default::default()
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    dep.run();
    let got: Vec<Vec<(u32, u64)>> = dep
        .detections()
        .iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect();
    let want = reference_coverages(&tree, &exec);
    assert_eq!(got, want, "reorder buffers restore per-child order");
}

#[test]
fn lossy_links_with_reliability_layer_lose_nothing() {
    use ftscp_core::monitor::MonitorConfig;
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(41)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = DeployConfig {
        sim: SimConfig {
            seed: 41,
            link: LinkModel {
                min_delay: SimTime(100),
                max_delay: SimTime(2_000),
                drop_prob: 0.25, // every 4th hop-transmission vanishes
            },
        },
        interval_spacing: SimTime::from_millis(10),
        monitor: MonitorConfig {
            heartbeat_period: None,
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    dep.run();
    assert!(dep.metrics().lost > 0, "losses actually occurred");
    let got: Vec<Vec<(u32, u64)>> = dep
        .detections()
        .iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect();
    let want = reference_coverages(&tree, &exec);
    assert_eq!(got, want, "ack/retransmit recovers every report");
    // Everything eventually acknowledged.
    for i in 1..n {
        assert_eq!(
            dep.app(ProcessId(i as u32)).unacked_count(),
            0,
            "node {i} fully acknowledged"
        );
    }
}

#[test]
fn lossy_links_without_reliability_lose_detections() {
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(8)
        .seed(43)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = DeployConfig {
        sim: SimConfig {
            seed: 43,
            link: LinkModel {
                min_delay: SimTime(100),
                max_delay: SimTime(2_000),
                drop_prob: 0.3,
            },
        },
        interval_spacing: SimTime::from_millis(10),
        ..Default::default()
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    dep.run();
    let want = reference_coverages(&tree, &exec);
    assert!(
        dep.detections().len() < want.len(),
        "without the reliability layer, lost reports cost detections \
         ({} < {})",
        dep.detections().len(),
        want.len()
    );
}

#[test]
fn heartbeat_driven_repair_matches_scheduled_outcome() {
    use ftscp_core::deploy::RepairMode;
    let n = 15;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(8)
        .seed(61)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);

    let run = |mode: RepairMode| {
        let cfg = DeployConfig {
            repair_delay: SimTime::from_millis(150),
            repair_mode: mode,
            ..config(61)
        };
        let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, cfg);
        dep.schedule_crash(ProcessId(3), SimTime::from_millis(200));
        dep.run();
        (
            dep.tree().node_count(),
            dep.tree().contains(NodeId(3)),
            dep.detections().len(),
            dep.detections().last().map(|d| d.covered_processes().len()),
        )
    };

    let scheduled = run(RepairMode::Scheduled);
    let heartbeat = run(RepairMode::HeartbeatDriven);
    // Identical structural outcome; detection counts may differ by the
    // round in flight at repair time, but both keep detecting and end on
    // the same survivor coverage.
    assert_eq!(scheduled.0, heartbeat.0, "same final tree size");
    assert!(!scheduled.1 && !heartbeat.1, "node 3 removed in both");
    assert!(scheduled.2 > 0 && heartbeat.2 > 0);
    assert_eq!(scheduled.3, heartbeat.3, "same final coverage");
}

#[test]
fn heartbeat_driven_repair_without_false_positives() {
    use ftscp_core::deploy::RepairMode;
    // No crashes at all: heartbeat-driven mode must never mutate the tree.
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(5)
        .seed(3)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = DeployConfig {
        repair_mode: RepairMode::HeartbeatDriven,
        ..config(3)
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    dep.run();
    assert_eq!(dep.tree().node_count(), n);
    assert_eq!(dep.detections().len(), 5, "all rounds detected");
    for i in 0..n as u32 {
        assert_eq!(dep.tree().parent(NodeId(i)), tree.parent(NodeId(i)));
    }
}

#[test]
fn crash_recovery_over_the_network() {
    // Node 5 crashes at 150ms and reboots from its checkpoint at 400ms;
    // from then on, rounds cover all 15 processes again.
    let n = 15;
    let rounds = 8;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(51)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut dep = Deployment::new(topo, tree, &exec, config(51));
    dep.enable_checkpointing();
    dep.schedule_crash(ProcessId(5), SimTime::from_millis(150));
    dep.schedule_recovery(ProcessId(5), SimTime::from_millis(400));
    dep.run();

    let dets = dep.detections();
    assert!(!dets.is_empty());
    // Some detections happened without node 5 (during the outage, the
    // round in flight at the crash also loses whatever nodes 11/12 had
    // already aggregated into messages addressed to the dead node 5)...
    assert!(
        dets.iter().any(|d| d.covered_processes().len() < n),
        "outage detections exclude the crashed node"
    );
    // ...and the final ones include it again.
    assert_eq!(
        dets.last().unwrap().covered_processes().len(),
        n,
        "full coverage after recovery"
    );
    // The tree holds all 15 nodes again, with node 5 rejoined as a leaf.
    assert_eq!(dep.tree().node_count(), n);
    assert!(dep.tree().is_leaf(NodeId(5)));
    // Every detection remains valid.
    for d in &dets {
        let members: Vec<_> = d
            .coverage
            .iter()
            .map(|r| exec.intervals[r.process.index()][r.seq as usize].clone())
            .collect();
        assert!(ftscp_intervals::definitely_holds(&members));
    }
}

#[test]
fn recovery_without_checkpointing_stays_down() {
    let n = 7;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(4)
        .seed(5)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let mut dep = Deployment::new(topo, tree, &exec, config(5));
    // No enable_checkpointing().
    dep.schedule_crash(ProcessId(5), SimTime::from_millis(50));
    dep.schedule_recovery(ProcessId(5), SimTime::from_millis(150));
    dep.run();
    assert!(
        !dep.tree().contains(NodeId(5)),
        "no stable storage ⇒ no rejoin"
    );
}

#[test]
fn overlapping_failures_reattach_stranded_subtrees() {
    // Crash 0 (the root) lands BEFORE crash 5's repair completes, so the
    // first repair runs with a dead, unrepaired root: node 5's orphan
    // subtrees cannot find the main tree and are temporarily partitioned.
    // The second repair must retry and re-attach them.
    let n = 31;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(6)
        .seed(7)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    let cfg = DeployConfig {
        interval_spacing: SimTime::from_millis(10),
        repair_delay: SimTime::from_millis(250),
        ..config(7)
    };
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    dep.schedule_crash(ProcessId(5), SimTime::from_millis(200));
    dep.schedule_crash(ProcessId(0), SimTime::from_millis(400)); // < 200+250
    dep.run();

    // While partitioned, the stranded forests detected their own partial
    // predicates...
    let dets = dep.detections();
    assert!(
        dets.iter().any(|d| d.covered_processes().len() <= 3),
        "partitioned forests detect their own partial predicate"
    );
    // ...and after the second repair, global detections cover all 29
    // survivors again.
    let last = dets.last().expect("detections continued");
    assert_eq!(last.covered_processes().len(), n - 2, "fully re-attached");
    // The final tree is one connected forest over the survivors.
    assert_eq!(dep.tree().node_count(), n - 2);
    for node in dep.tree().nodes() {
        let mut cur = node;
        while let Some(p) = dep.tree().parent(cur) {
            cur = p;
        }
        assert_eq!(cur, dep.tree().root(), "{node} reaches the root");
    }
}

#[test]
fn interval_message_count_is_bounded_by_paper_formula() {
    // Clean rounds, balanced d-ary tree: every node's every solution sends
    // one message (except the root). Eq. (11) with α = 1 gives
    // p·d^{h-1}·(h-1) as the hop count; interval sends are ≤ that.
    let n = 13; // d = 3, h = 3
    let rounds = 4;
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(2)
        .build();
    let topo = Topology::dary_tree(n, 3, 1);
    let tree = SpanningTree::balanced_dary(n, 3);
    let mut dep = Deployment::new(topo, tree, &exec, config(2));
    dep.run();
    // Non-root nodes each solve once per round: 12 messages per round.
    assert_eq!(dep.interval_messages(), (rounds * (n - 1)) as u64);
}
