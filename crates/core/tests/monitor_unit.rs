//! Direct unit tests of [`MonitorApp`]'s protocol logic, driven through
//! the simnet test harness (no full simulation).

use ftscp_core::monitor::{MonitorApp, MonitorConfig};
use ftscp_core::protocol::DetectMsg;
use ftscp_intervals::Interval;
use ftscp_simnet::sim::testkit;
use ftscp_simnet::{Application, NodeId, SimTime};
use ftscp_vclock::{ProcessId, VectorClock};

fn iv(p: u32, seq: u64, lo: &[u32], hi: &[u32]) -> Interval {
    Interval::local(
        ProcessId(p),
        seq,
        VectorClock::from_components(lo.to_vec()),
        VectorClock::from_components(hi.to_vec()),
    )
}

fn cfg_plain() -> MonitorConfig {
    MonitorConfig {
        heartbeat_period: None,
        retransmit_period: None,
        ..Default::default()
    }
}

/// An interior node (1 child) with no schedule, parent = node 9.
fn interior() -> MonitorApp {
    MonitorApp::new(
        ProcessId(1),
        Some(ProcessId(9)),
        &[ProcessId(0)],
        2,
        Vec::new(),
        cfg_plain(),
    )
}

fn deliver(
    app: &mut MonitorApp,
    from: u32,
    interval: Interval,
    resync: bool,
) -> Vec<(NodeId, DetectMsg)> {
    let effects = testkit::drive(NodeId(1), SimTime(100), 10, &[], |ctx| {
        app.on_message(
            ctx,
            NodeId(from),
            DetectMsg::Interval {
                from: ProcessId(from),
                interval,
                resync,
            },
        );
    });
    effects.sends
}

#[test]
fn out_of_order_child_reports_are_reassembled() {
    let mut app = interior();
    // Local interval arrives via schedule path — instead push directly
    // through a child-only scenario: deliver child seq 1 before seq 0.
    let a0 = iv(0, 0, &[1, 0], &[4, 3]);
    let a1 = iv(0, 1, &[5, 4], &[8, 7]);
    let sends = deliver(&mut app, 0, a1.clone(), false);
    assert!(sends.is_empty(), "seq 1 buffered until seq 0 arrives");
    assert_eq!(app.engine().child_enqueued(), 0);
    let _ = deliver(&mut app, 0, a0, false);
    assert_eq!(app.engine().child_enqueued(), 2, "both delivered in order");
}

#[test]
fn stale_duplicates_are_dropped() {
    let mut app = interior();
    let a0 = iv(0, 0, &[1, 0], &[4, 3]);
    deliver(&mut app, 0, a0.clone(), false);
    deliver(&mut app, 0, a0, false); // duplicate
    assert_eq!(app.engine().child_enqueued(), 1);
}

#[test]
fn resync_fast_forwards_the_stream() {
    let mut app = interior();
    // The child was re-parented to us and re-reports from seq 5.
    let a5 = iv(0, 5, &[1, 0], &[4, 3]);
    deliver(&mut app, 0, a5, true);
    assert_eq!(app.engine().child_enqueued(), 1, "resync accepted seq 5");
    // Continuation at seq 6 flows.
    let a6 = iv(0, 6, &[5, 4], &[8, 7]);
    deliver(&mut app, 0, a6, false);
    assert_eq!(app.engine().child_enqueued(), 2);
    // Pre-resync stragglers are dropped.
    let a4 = iv(0, 4, &[0, 0], &[1, 1]);
    deliver(&mut app, 0, a4, false);
    assert_eq!(app.engine().child_enqueued(), 2);
}

#[test]
fn set_parent_re_reports_last_output() {
    let mut app = interior();
    // Complete a subtree solution so last_output exists: child interval +
    // local interval via direct schedule is absent; use child + remove to
    // force a solution: child reports, then local queue… simpler: child is
    // the only queue after removing the local? Q0 always exists. Use a
    // 2-wide overlap: deliver child interval, then local interval through
    // the timer path is unavailable — instead check that with no output
    // yet, SetParent sends nothing.
    let effects = testkit::drive(NodeId(1), SimTime(200), 10, &[], |ctx| {
        app.on_message(
            ctx,
            NodeId(7),
            DetectMsg::SetParent {
                parent: Some(ProcessId(7)),
            },
        );
    });
    assert!(effects.sends.is_empty(), "nothing to re-report yet");
    assert_eq!(app.parent(), Some(ProcessId(7)));

    // Produce an output: overlap child + local by removing the child
    // queue? Instead feed both queues: local intervals only arrive via
    // schedule, so emulate a leaf: a monitor with no children forwards
    // local intervals — construct one with a schedule and fire its timer.
    let leaf_iv = iv(2, 0, &[0, 0, 1], &[0, 0, 2]);
    let mut leaf = MonitorApp::new(
        ProcessId(2),
        Some(ProcessId(1)),
        &[],
        1,
        vec![(SimTime(50), leaf_iv)],
        cfg_plain(),
    );
    let effects = testkit::drive(NodeId(2), SimTime(0), 10, &[], |ctx| leaf.on_init(ctx));
    assert_eq!(effects.timers.len(), 1, "interval timer armed");
    let effects = testkit::drive(NodeId(2), SimTime(50), 10, &[], |ctx| {
        leaf.on_timer(ctx, effects.timers[0].1)
    });
    assert_eq!(effects.sends.len(), 1, "leaf forwarded its interval");
    assert!(matches!(
        effects.sends[0].1,
        DetectMsg::Interval { resync: false, .. }
    ));

    // Now re-parent the leaf: it re-reports with resync.
    let effects = testkit::drive(NodeId(2), SimTime(60), 10, &[], |ctx| {
        leaf.on_message(
            ctx,
            NodeId(3),
            DetectMsg::SetParent {
                parent: Some(ProcessId(3)),
            },
        );
    });
    assert_eq!(effects.sends.len(), 1);
    assert_eq!(effects.sends[0].0, NodeId(3));
    assert!(matches!(
        effects.sends[0].1,
        DetectMsg::Interval { resync: true, .. }
    ));
}

#[test]
fn promote_root_records_detections_locally() {
    // A leaf with one interval forwarded becomes root: its reseeded last
    // output turns into a local detection.
    let leaf_iv = iv(2, 0, &[0, 0, 1], &[0, 0, 2]);
    let mut leaf = MonitorApp::new(
        ProcessId(2),
        Some(ProcessId(1)),
        &[],
        1,
        vec![(SimTime(50), leaf_iv)],
        cfg_plain(),
    );
    let effects = testkit::drive(NodeId(2), SimTime(0), 10, &[], |ctx| leaf.on_init(ctx));
    testkit::drive(NodeId(2), SimTime(50), 10, &[], |ctx| {
        leaf.on_timer(ctx, effects.timers[0].1)
    });
    assert!(leaf.detections().is_empty());
    testkit::drive(NodeId(2), SimTime(70), 10, &[], |ctx| {
        leaf.on_message(ctx, NodeId(0), DetectMsg::PromoteRoot);
    });
    assert_eq!(
        leaf.detections().len(),
        1,
        "the un-consumed output resurfaces as a detection at the new root"
    );
}

#[test]
fn ack_clears_unacked_buffer() {
    let leaf_iv0 = iv(2, 0, &[0, 0, 1], &[0, 0, 2]);
    let leaf_iv1 = iv(2, 1, &[0, 0, 3], &[0, 0, 4]);
    let mut leaf = MonitorApp::new(
        ProcessId(2),
        Some(ProcessId(1)),
        &[],
        1,
        vec![(SimTime(10), leaf_iv0), (SimTime(20), leaf_iv1)],
        MonitorConfig {
            heartbeat_period: None,
            retransmit_period: Some(SimTime(1_000)),
            ..Default::default()
        },
    );
    let effects = testkit::drive(NodeId(2), SimTime(0), 10, &[], |ctx| leaf.on_init(ctx));
    let token = effects
        .timers
        .iter()
        .map(|&(_, t)| t)
        .find(|&t| t == 1)
        .expect("interval timer");
    testkit::drive(NodeId(2), SimTime(10), 10, &[], |ctx| {
        leaf.on_timer(ctx, token)
    });
    testkit::drive(NodeId(2), SimTime(20), 10, &[], |ctx| {
        leaf.on_timer(ctx, token)
    });
    assert_eq!(leaf.unacked_count(), 2);
    // Cumulative ack up to (not incl.) seq 1.
    testkit::drive(NodeId(2), SimTime(25), 10, &[], |ctx| {
        leaf.on_message(
            ctx,
            NodeId(1),
            DetectMsg::Ack {
                from: ProcessId(1),
                upto: 1,
            },
        );
    });
    assert_eq!(leaf.unacked_count(), 1);
    testkit::drive(NodeId(2), SimTime(30), 10, &[], |ctx| {
        leaf.on_message(
            ctx,
            NodeId(1),
            DetectMsg::Ack {
                from: ProcessId(1),
                upto: 2,
            },
        );
    });
    assert_eq!(leaf.unacked_count(), 0);
}
