//! Fault-injection integration tests: scripted [`FaultPlan`]s driven
//! through the full deployment, with post-hoc invariant checking.
//!
//! Every test asserts the two §III-F obligations — no fault may produce an
//! *invalid* detection (safety), and the survivors' solutions must still be
//! detected (liveness over the live portion) — plus determinism: the same
//! seed and the same plan replay the identical detection sequence.

use ftscp_core::deploy::{DeployConfig, Deployment, RepairMode};
use ftscp_core::faultcheck::{detection_fingerprint, verify_detections, verify_no_silent_drops};
use ftscp_core::monitor::MonitorConfig;
use ftscp_core::HierarchicalDetector;
use ftscp_simnet::{FaultPlan, FaultPlanParams, LinkModel, NodeId, SimConfig, SimTime, Topology};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::{Execution, RandomExecution};
use proptest::prelude::*;

fn config(seed: u64) -> DeployConfig {
    DeployConfig {
        sim: SimConfig {
            seed,
            link: LinkModel {
                min_delay: SimTime(200),
                max_delay: SimTime(4_000),
                drop_prob: 0.0,
            },
        },
        ..Default::default()
    }
}

fn workload(n: usize, rounds: usize, seed: u64) -> (Execution, Topology, SpanningTree) {
    let exec = RandomExecution::builder(n)
        .intervals_per_process(rounds)
        .seed(seed)
        .build();
    let topo = Topology::dary_tree(n, 2, 1);
    let tree = SpanningTree::balanced_dary(n, 2);
    (exec, topo, tree)
}

/// Reference: coverage sequences of the in-memory detector on the same
/// execution (what a fault-free run must reproduce).
fn reference_coverages(tree: &SpanningTree, exec: &Execution) -> Vec<Vec<(u32, u64)>> {
    let mut det = HierarchicalDetector::new(tree);
    for iv in exec.intervals_interleaved() {
        det.feed(iv.clone());
    }
    det.root_solutions()
        .iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

fn coverages(dep: &Deployment) -> Vec<Vec<(u32, u64)>> {
    dep.detections()
        .iter()
        .map(|d| d.coverage.iter().map(|r| (r.process.0, r.seq)).collect())
        .collect()
}

/// Same seed + same plan ⇒ byte-identical detection sequence, across a
/// plan that exercises every fault primitive at once.
#[test]
fn same_seed_same_plan_replays_identical_detection_sequence() {
    let (exec, topo, tree) = workload(7, 6, 13);
    let plan = FaultPlan::new()
        .crash_at(SimTime::from_millis(200), NodeId(5))
        .partition_at(SimTime::from_millis(60), &[NodeId(3)])
        .heal_at(SimTime::from_millis(160))
        .duplicate_between(SimTime::from_millis(20), SimTime::from_millis(300), 0.4)
        .reorder_between(
            SimTime::from_millis(10),
            SimTime::from_millis(350),
            SimTime::from_millis(8),
            0.5,
        )
        .skew_timers_at(SimTime::ZERO, NodeId(4), 5, 4);
    let cfg = DeployConfig {
        monitor: MonitorConfig {
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..config(13)
    };
    let run = |seed_cfg: DeployConfig| {
        let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, seed_cfg);
        dep.apply_fault_plan(&plan);
        dep.run();
        detection_fingerprint(&dep.detections())
    };
    let a = run(cfg);
    let b = run(cfg);
    assert_eq!(a, b, "identical seed + plan ⇒ identical detections");
    // Sanity: the fingerprint is actually sensitive — a different network
    // seed perturbs delivery timing and thus detection times.
    let c = run(DeployConfig {
        sim: SimConfig {
            seed: 14,
            ..cfg.sim
        },
        ..cfg
    });
    assert_ne!(a, c, "a different seed yields a different sequence");
}

/// Crash primitive: a mid-run leaf crash narrows coverage to the
/// survivors without ever emitting an invalid detection.
#[test]
fn crash_injection_preserves_survivor_solutions() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 23);
    let mut dep = Deployment::new(topo, tree, &exec, config(23));
    dep.apply_fault_plan(&FaultPlan::new().crash_at(SimTime::from_millis(200), NodeId(5)));
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(!dets.is_empty());
    assert!(
        dets.iter().any(|d| d.covered_processes().len() == n),
        "full-coverage detections before the crash"
    );
    assert_eq!(
        dets.last().unwrap().covered_processes().len(),
        n - 1,
        "post-crash detections cover the six survivors"
    );
}

/// Hold-after-drop regression (the model checker's prune/adopt race,
/// shipped per docs/DST.md §2). An internal monitor (node 1) crashes
/// mid-stream under heartbeat-driven repair. Without the hold, the root
/// finalizes Q₁'s removal the instant suspicion fires and — while nodes
/// 3 and 4 are still re-adopting — emits solutions assembled from only
/// {root, subtree 2}: eight-process "detections" that silently exclude
/// six live survivors. With the hold, the dead child's queue is retired
/// only after the full hold window, by which point the orphans have
/// re-joined, so every detection covers all fourteen survivors.
#[test]
fn internal_crash_hold_prevents_narrow_detections_during_readoption() {
    let n = 15;
    for seed in [0u64, 9, 23] {
        let (exec, topo, tree) = workload(n, 20, seed);
        let cfg = DeployConfig {
            repair_mode: RepairMode::HeartbeatDriven,
            ..config(seed)
        };
        let mut dep = Deployment::new(topo, tree, &exec, cfg);
        dep.apply_fault_plan(&FaultPlan::new().crash_at(SimTime::from_millis(60), NodeId(1)));
        dep.run();
        let dets = dep.detections();
        assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
        assert!(!dets.is_empty());
        for d in dets.iter() {
            assert_eq!(
                d.covered_processes().len(),
                n - 1,
                "seed {seed}: every detection covers all fourteen survivors \
                 (anything narrower means the root released solutions while \
                 node 1's orphans were still re-adopting)"
            );
        }
    }
}

/// Restart primitive: a crash-restart pair reboots the node from its
/// checkpoint, rejoins it as a leaf, and full coverage returns.
#[test]
fn restart_injection_rejoins_and_restores_full_coverage() {
    let n = 15;
    let (exec, topo, tree) = workload(n, 8, 51);
    let mut dep = Deployment::new(topo, tree, &exec, config(51));
    dep.enable_checkpointing();
    dep.apply_fault_plan(
        &FaultPlan::new()
            .crash_at(SimTime::from_millis(150), NodeId(5))
            .restart_at(SimTime::from_millis(400), NodeId(5)),
    );
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(
        dets.iter().any(|d| d.covered_processes().len() < n),
        "outage detections exclude the crashed node"
    );
    assert_eq!(
        dets.last().unwrap().covered_processes().len(),
        n,
        "full coverage after the restart"
    );
    assert_eq!(dep.tree().node_count(), n);
    assert!(dep.tree().is_leaf(NodeId(5)));
}

/// Partition primitive: with the reliability layer on, a healed partition
/// costs nothing — the detection sequence equals the fault-free reference
/// and no surviving node's intervals are dropped.
#[test]
fn partition_with_heal_loses_no_detection() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 41);
    let cfg = DeployConfig {
        monitor: MonitorConfig {
            heartbeat_period: None,
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..config(41)
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    // Cut off the subtree {1, 3, 4} for a quarter of the run.
    dep.apply_fault_plan(
        &FaultPlan::new()
            .partition_at(SimTime::from_millis(50), &[NodeId(1), NodeId(3), NodeId(4)])
            .heal_at(SimTime::from_millis(180)),
    );
    dep.run();
    assert!(
        dep.metrics().undeliverable > 0,
        "the cut actually blocked traffic"
    );
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(verify_no_silent_drops(&dep).is_empty(), "nothing dropped");
    assert_eq!(
        coverages(&dep),
        reference_coverages(&tree, &exec),
        "retransmission recovers every report after the heal"
    );
}

/// Duplication primitive: per-child sequence numbers deduplicate injected
/// copies, so the detection sequence equals the fault-free reference.
#[test]
fn duplication_is_absorbed_by_sequence_numbers() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 31);
    let mut dep = Deployment::new(topo, tree.clone(), &exec, config(31));
    dep.apply_fault_plan(&FaultPlan::new().duplicate_between(
        SimTime::ZERO,
        SimTime::from_secs(600),
        1.0,
    ));
    dep.run();
    assert!(dep.metrics().duplicated > 0, "duplicates were injected");
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert_eq!(
        coverages(&dep),
        reference_coverages(&tree, &exec),
        "every duplicate is dropped, no detection repeats"
    );
}

/// Reordering primitive: aggravated non-FIFO bursts are restored to
/// per-child order by the reorder buffers; the detection sequence equals
/// the fault-free reference.
#[test]
fn reordering_bursts_are_tolerated() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 37);
    let mut dep = Deployment::new(topo, tree.clone(), &exec, config(37));
    // Up to 60ms of extra delay per message — several interval spacings,
    // so streams heavily interleave and overtake.
    dep.apply_fault_plan(&FaultPlan::new().reorder_between(
        SimTime::ZERO,
        SimTime::from_secs(600),
        SimTime::from_millis(60),
        0.7,
    ));
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert_eq!(
        coverages(&dep),
        reference_coverages(&tree, &exec),
        "reorder buffers restore per-child order"
    );
}

/// Timer-skew primitive, fast-clock direction: a clock running at 2/3
/// speed chases every interval deadline with geometrically shrinking
/// re-arms. Regression for the DST-campaign find (seed 30) where the
/// skew truncated the final 1µs re-arm to zero and the run livelocked;
/// the skew now rounds up, so the run completes and loses nothing.
#[test]
fn fast_clock_skew_completes_losslessly() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 53);
    let cfg = DeployConfig {
        monitor: MonitorConfig {
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..config(53)
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    dep.apply_fault_plan(&FaultPlan::new().skew_timers_at(SimTime::ZERO, NodeId(1), 2, 3));
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(verify_no_silent_drops(&dep).is_empty(), "nothing dropped");
    assert_eq!(
        coverages(&dep),
        reference_coverages(&tree, &exec),
        "a fast local clock shifts timings, never content"
    );
}

/// §III-F compound scenario: two *internal* monitors on different tree
/// levels crash at the same instant under heartbeat-driven repair.
/// Node 1 (level 1) and node 3 (level 2, a child of node 1) die
/// together, so node 3's children find their grandparent hint already
/// dead. Safety and determinism must survive the storm outright.
///
/// Node 4 re-adopts under the root via its grandparent hint. Nodes 7/8
/// knock at dead node 1 first, exhaust its budget, then fall back one
/// rung up the ancestor chain their parent's heartbeats relayed — the
/// root — and re-join there (the model checker's `with_deep_hints`
/// escape from the `orphan_dead_end`). The companion test below asserts
/// the full-recovery endpoint; this one pins safety and determinism of
/// the storm itself.
#[test]
fn simultaneous_internal_crash_storm_stays_safe_and_deterministic() {
    let n = 15;
    let (exec, topo, tree) = workload(n, 8, 61);
    let cfg = DeployConfig {
        repair_mode: RepairMode::HeartbeatDriven,
        ..config(61)
    };
    let storm = FaultPlan::new()
        .crash_at(SimTime::from_millis(150), NodeId(1))
        .crash_at(SimTime::from_millis(150), NodeId(3));
    let run = || {
        let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, cfg);
        dep.apply_fault_plan(&storm);
        dep.run();
        dep
    };
    let dep = run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(!dets.is_empty());
    let last = dets.last().unwrap().covered_processes();
    assert!(
        !last.contains(&ProcessId(1)) && !last.contains(&ProcessId(3)),
        "post-storm detections exclude the dead"
    );
    assert_eq!(
        detection_fingerprint(&dets),
        detection_fingerprint(&run().detections()),
        "the storm replays deterministically"
    );
}

/// After the simultaneous internal crashes, *all* thirteen survivors
/// re-join and are covered — including node 3's children, whose
/// grandparent (node 1) died with their parent. They climb the ancestor
/// chain carried on heartbeats: knock at dead node 1 until the budget
/// runs out, then dial the next rung up, the root. This closes
/// ROADMAP's failure-storm item for the simulated backend (the TCP
/// runtime still needs an *address* for a rung to dial it — see
/// `net/tests/crash_recovery.rs` for the knock-budget contract there).
#[test]
fn simultaneous_internal_crash_storm_recovers_all_survivors() {
    let n = 15;
    let (exec, topo, tree) = workload(n, 8, 61);
    let cfg = DeployConfig {
        repair_mode: RepairMode::HeartbeatDriven,
        ..config(61)
    };
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    dep.apply_fault_plan(
        &FaultPlan::new()
            .crash_at(SimTime::from_millis(150), NodeId(1))
            .crash_at(SimTime::from_millis(150), NodeId(3)),
    );
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert_eq!(
        dets.last().unwrap().covered_processes().len(),
        n - 2,
        "every survivor is covered again after the storm"
    );
}

/// A partition shorter than the suspicion timeout under heartbeat
/// repair: nobody is suspected, the reliability layer re-delivers what
/// the cut blocked, and the run is indistinguishable from fault-free.
#[test]
fn short_partition_under_heartbeat_repair_is_lossless() {
    let n = 15;
    let (exec, topo, tree) = workload(n, 8, 67);
    let cfg = DeployConfig {
        repair_mode: RepairMode::HeartbeatDriven,
        monitor: MonitorConfig {
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..config(67)
    };
    let mut dep = Deployment::new(topo, tree.clone(), &exec, cfg);
    // Cut off node 2's whole subtree for 70ms — under the 120ms
    // suspicion timeout, so the repair machinery must stay quiet.
    dep.apply_fault_plan(
        &FaultPlan::new()
            .partition_at(
                SimTime::from_millis(50),
                &[
                    NodeId(2),
                    NodeId(5),
                    NodeId(6),
                    NodeId(11),
                    NodeId(12),
                    NodeId(13),
                    NodeId(14),
                ],
            )
            .heal_at(SimTime::from_millis(120)),
    );
    dep.run();
    assert!(dep.metrics().undeliverable > 0, "the cut blocked traffic");
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(verify_no_silent_drops(&dep).is_empty(), "nothing dropped");
    assert_eq!(
        coverages(&dep),
        reference_coverages(&tree, &exec),
        "a sub-timeout partition is invisible after the heal"
    );
}

/// A partition *longer* than the suspicion timeout: both sides start
/// repairing around each other (the root prunes the severed subtree's
/// queues), yet after the heal resumed heartbeats and re-reports must
/// stitch the subtree back in and restore full coverage. This narrows
/// ROADMAP's partition-rejoin item: the single-cut subtree scenario
/// recovers today; divergent multi-cut membership remains open.
#[test]
fn long_partition_under_heartbeat_repair_rejoins_after_heal() {
    let n = 15;
    let (exec, topo, tree) = workload(n, 8, 67);
    let cfg = DeployConfig {
        repair_mode: RepairMode::HeartbeatDriven,
        monitor: MonitorConfig {
            retransmit_period: Some(SimTime::from_millis(15)),
            ..Default::default()
        },
        ..config(67)
    };
    let mut dep = Deployment::new(topo, tree, &exec, cfg);
    dep.apply_fault_plan(
        &FaultPlan::new()
            .partition_at(
                SimTime::from_millis(50),
                &[
                    NodeId(2),
                    NodeId(5),
                    NodeId(6),
                    NodeId(11),
                    NodeId(12),
                    NodeId(13),
                    NodeId(14),
                ],
            )
            .heal_at(SimTime::from_millis(400)),
    );
    dep.run();
    let dets = dep.detections();
    assert!(verify_detections(&exec, &dets).is_empty(), "safety holds");
    assert!(
        dep.metrics().undeliverable > 0,
        "the cut actually blocked traffic"
    );
    assert_eq!(
        dets.last().unwrap().covered_processes().len(),
        n,
        "full coverage returns after the heal"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// DST cornerstone: `FaultPlan::randomized` is a pure function of
    /// `(params, seed)`, and the deployment is a pure function of the
    /// plan — so any campaign seed replays to the identical
    /// faultcheck fingerprint. This is what makes a failing seed a
    /// complete, shrinkable bug report.
    #[test]
    fn randomized_plans_replay_to_identical_fingerprints(seed in 0u64..100_000) {
        let params = FaultPlanParams::for_network(7, SimTime::from_millis(60));
        let plan = FaultPlan::randomized(&params, seed);
        prop_assert_eq!(&plan, &FaultPlan::randomized(&params, seed));

        let (exec, topo, tree) = workload(7, 6, seed);
        let cfg = DeployConfig {
            monitor: MonitorConfig {
                retransmit_period: Some(SimTime::from_millis(15)),
                ..Default::default()
            },
            ..config(seed)
        };
        let run = || {
            let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, cfg);
            if !plan.restarts().is_empty() {
                dep.enable_checkpointing();
            }
            dep.apply_fault_plan(&plan);
            dep.run();
            detection_fingerprint(&dep.detections())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Recovery hardening: during a long outage the retransmit timer backs
/// off exponentially to its cap instead of hammering the dead route, and
/// each firing re-sends at most a bounded burst.
#[test]
fn retransmit_backoff_caps_traffic_during_outage() {
    let n = 7;
    let (exec, topo, tree) = workload(n, 6, 47);
    let run = |cap: u32| {
        let cfg = DeployConfig {
            monitor: MonitorConfig {
                heartbeat_period: None,
                retransmit_period: Some(SimTime::from_millis(15)),
                retransmit_burst: 2,
                retransmit_backoff_cap: cap,
                ..Default::default()
            },
            ..config(47)
        };
        let mut dep = Deployment::new(topo.clone(), tree.clone(), &exec, cfg);
        // Node 3 is cut off for the whole run: its reports can never be
        // delivered or acknowledged.
        dep.apply_fault_plan(&FaultPlan::new().partition_at(SimTime::ZERO, &[NodeId(3)]));
        dep.run();
        (
            dep.app(ProcessId(3)).retransmit_backoff(),
            dep.metrics().undeliverable,
        )
    };
    let (backoff, undeliverable_capped) = run(8);
    assert_eq!(backoff, 8, "backoff reached and held the cap");
    let (_, undeliverable_flat) = run(1);
    assert!(
        undeliverable_capped < undeliverable_flat,
        "exponential backoff sends less into a dead route than a flat \
         period ({undeliverable_capped} < {undeliverable_flat})"
    );
}
