//! [`Deployment`] — the full distributed system on the simulated network.
//!
//! Wires one [`crate::monitor::MonitorApp`] per node onto an
//! [`ftscp_simnet::Simulation`], schedules each process's local intervals
//! at simulated times, injects crash-stop failures, and performs the
//! spanning-tree repair the paper assumes as a substrate (§III-F): after a
//! failure is detected (heartbeat timeout), the maintenance service
//! computes the repaired tree and issues `SetParent` / `AddChild` /
//! `RemoveChild` / `PromoteRoot` control messages to the affected nodes.

use crate::monitor::{MonitorApp, MonitorConfig};
use crate::protocol::DetectMsg;
use crate::report::GlobalDetection;
use crate::{nid, pid};
use ftscp_intervals::Interval;
use ftscp_simnet::{
    FaultOp, FaultPlan, NetMetrics, NodeId, SimConfig, SimTime, Simulation, Topology,
};
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use ftscp_workload::Execution;

/// How failures are *detected* (repair itself is always the maintenance
/// service's tree surgery).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// The harness repairs at `crash_time + repair_delay` (deterministic,
    /// used by the measurement experiments).
    #[default]
    Scheduled,
    /// Repairs trigger from the monitors' own heartbeat timeouts: the
    /// simulation advances in slices, and when a dead node's tree parent
    /// stops hearing its heartbeats for `repair_delay`, the maintenance
    /// service repairs. No clairvoyance about crash times — the faithful
    /// §III-F mode. Requires heartbeats to be enabled.
    HeartbeatDriven,
}

/// Deployment parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeployConfig {
    /// Simulation seed and link model.
    pub sim: SimConfig,
    /// Spacing between successive interval completions in the global
    /// completion order.
    pub interval_spacing: SimTime,
    /// Monitor options (heartbeats).
    pub monitor: MonitorConfig,
    /// Delay between a crash and the completion of failure detection +
    /// tree repair (models heartbeat timeout + repair protocol). In
    /// [`RepairMode::HeartbeatDriven`] this is the heartbeat timeout.
    pub repair_delay: SimTime,
    /// Failure-detection mode.
    pub repair_mode: RepairMode,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            sim: SimConfig::default(),
            interval_spacing: SimTime::from_millis(10),
            monitor: MonitorConfig::default(),
            repair_delay: SimTime::from_millis(120),
            repair_mode: RepairMode::Scheduled,
        }
    }
}

/// A running deployment.
pub struct Deployment {
    sim: Simulation<MonitorApp>,
    tree: SpanningTree,
    topology: Topology,
    /// Pending crash events (time, node), sorted ascending.
    crash_plan: Vec<(SimTime, ProcessId)>,
    /// Pending recovery events (time, node), sorted ascending.
    recovery_plan: Vec<(SimTime, ProcessId)>,
    /// Orphan subtree roots partitioned by earlier (possibly overlapping)
    /// failures, retried at every subsequent repair.
    pending_orphans: Vec<NodeId>,
    config: DeployConfig,
    end_of_schedule: SimTime,
}

impl Deployment {
    /// Builds the deployment: every interval of `exec` completes at its
    /// position in the global completion order times `interval_spacing`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is not a subgraph of the topology (parent links
    /// must be single-hop) or sizes disagree.
    pub fn new(
        topology: Topology,
        tree: SpanningTree,
        exec: &Execution,
        config: DeployConfig,
    ) -> Self {
        assert_eq!(topology.len(), exec.n, "topology/execution size mismatch");
        assert!(
            tree.is_subgraph_of(&topology),
            "tree edges must be topology edges"
        );
        let n = topology.len();

        // Assign completion times in global completion order.
        let mut schedules: Vec<Vec<(SimTime, Interval)>> = vec![Vec::new(); n];
        let mut t = SimTime::ZERO;
        for (p, seq) in &exec.completion_order {
            t += config.interval_spacing;
            let iv = exec.intervals[p.index()][*seq as usize].clone();
            schedules[p.index()].push((t, iv));
        }
        let end_of_schedule = t;

        // Heartbeat-driven mode is decentralized: every monitor runs its
        // own failure detector and the adoption handshake, with the
        // repair delay as the suspicion timeout. Scheduled mode leaves
        // repair to the clairvoyant maintenance service.
        let mut monitor_cfg = config.monitor;
        if config.repair_mode == RepairMode::HeartbeatDriven {
            monitor_cfg.suspect_timeout = Some(config.repair_delay);
        }

        let height = tree.height();
        let apps: Vec<MonitorApp> = (0..n)
            .map(|i| {
                let node = NodeId(i as u32);
                let parent = tree.parent(node).map(pid);
                let children: Vec<ProcessId> =
                    tree.children(node).iter().map(|&c| pid(c)).collect();
                let level = (height - tree.depth(node)) as u32;
                MonitorApp::new(
                    pid(node),
                    parent,
                    &children,
                    level,
                    std::mem::take(&mut schedules[i]),
                    monitor_cfg,
                )
            })
            .collect();

        let sim = Simulation::new(topology.clone(), apps, config.sim);
        Deployment {
            sim,
            tree,
            topology,
            crash_plan: Vec::new(),
            recovery_plan: Vec::new(),
            pending_orphans: Vec::new(),
            config,
            end_of_schedule,
        }
    }

    /// Schedules `node` to crash-stop at `at`.
    pub fn schedule_crash(&mut self, node: ProcessId, at: SimTime) {
        self.sim.schedule_crash(nid(node), at);
        self.crash_plan.push((at, node));
        self.crash_plan.sort_by_key(|&(t, _)| t);
    }

    /// Schedules `node` to reboot from its stable checkpoint at `at`
    /// (crash-**recovery**; requires the monitors to have been built with
    /// checkpointing — see [`Deployment::enable_checkpointing`]). The node
    /// rejoins the tree as a leaf under an alive topology neighbor.
    pub fn schedule_recovery(&mut self, node: ProcessId, at: SimTime) {
        self.recovery_plan.push((at, node));
        self.recovery_plan.sort_by_key(|&(t, _)| t);
    }

    /// Installs a [`FaultPlan`] across both layers of the deployment:
    /// `Crash` operations become scheduled crash-stops (with maintenance
    /// tree repair), `Restart` operations become scheduled recoveries
    /// (checkpoint reboot + leaf rejoin — enable checkpointing first for
    /// state to survive), and every remaining operation (partitions,
    /// duplication, reordering, timer skew) is installed directly into the
    /// network simulation. Like the simulator-level plan, this draws no
    /// randomness: `(deployment config, seed, plan)` replays identically.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let mut residual = FaultPlan::new();
        for (at, op) in plan.sorted_ops() {
            match op {
                FaultOp::Crash(node) => self.schedule_crash(pid(node), at),
                FaultOp::Restart(node) => self.schedule_recovery(pid(node), at),
                other => residual = residual.op_at(at, other),
            }
        }
        if !residual.is_empty() {
            self.sim.apply_fault_plan(&residual);
        }
    }

    /// Enables write-through engine checkpointing on every node (stable
    /// storage for crash-recovery).
    pub fn enable_checkpointing(&mut self) {
        for i in 0..self.sim.len() {
            let node = NodeId(i as u32);
            self.sim
                .with_app_ctx(node, |app, _ctx| app.enable_checkpointing());
        }
    }

    /// Runs the deployment to completion: all scheduled intervals fire,
    /// failures are repaired, recoveries rejoin, and the network drains.
    pub fn run(&mut self) {
        if self.config.repair_mode == RepairMode::HeartbeatDriven {
            self.run_heartbeat_driven();
            return;
        }
        enum Action {
            Repair(ProcessId),
            Recover(ProcessId),
        }
        let mut actions: Vec<(SimTime, Action)> = std::mem::take(&mut self.crash_plan)
            .into_iter()
            .map(|(t, n)| (t + self.config.repair_delay, Action::Repair(n)))
            .chain(
                std::mem::take(&mut self.recovery_plan)
                    .into_iter()
                    .map(|(t, n)| (t, Action::Recover(n))),
            )
            .collect();
        actions.sort_by_key(|&(t, _)| t);
        for (at, action) in actions {
            self.sim.run_until(at);
            match action {
                Action::Repair(node) => self.repair(node),
                Action::Recover(node) => self.recover(node),
            }
        }
        // Drain the schedules and all in-flight messages. Heartbeats
        // re-arm forever, so the run is bounded by time, not quiescence:
        // the slack comfortably exceeds any in-flight delay.
        let deadline = self.end_of_schedule + SimTime::from_secs(10);
        self.sim.run_until(deadline);
    }

    /// Heartbeat-driven run loop — a *thin driver*: failure detection and
    /// repair run inside the monitors themselves (suspicion timers, the
    /// grandparent-adoption handshake, re-reports — see
    /// [`crate::membership`]); this loop only advances simulated time,
    /// honors the recovery schedule, and keeps the harness's tree
    /// *mirror* in sync with what the monitors decided, so observers
    /// ([`Deployment::tree`]) and the recovery path keep working.
    fn run_heartbeat_driven(&mut self) {
        assert!(
            self.config.monitor.heartbeat_period.is_some(),
            "HeartbeatDriven repair requires heartbeats"
        );
        let timeout = self.config.repair_delay;
        let slice = SimTime(timeout.0.max(2) / 2);
        let deadline = self.end_of_schedule + SimTime::from_secs(10);
        let mut recoveries = std::mem::take(&mut self.recovery_plan);
        recoveries.sort_by_key(|&(t, _)| t);
        let mut next_recovery = 0usize;
        let mut t = SimTime::ZERO;
        while t < deadline {
            t = (t + slice).min(deadline);
            self.sim.run_until(t);
            self.sync_tree_mirror();
            while next_recovery < recoveries.len() && recoveries[next_recovery].0 <= t {
                let (_, node) = recoveries[next_recovery];
                next_recovery += 1;
                self.recover(node);
            }
        }
        self.sync_tree_mirror();
    }

    /// Rebuilds the harness's tree view from the monitors' own parent
    /// pointers (decentralized repair moves edges without telling the
    /// harness). Dead nodes and not-yet-adopted orphan subtrees are out
    /// of the view; if no root is currently claimed (the root itself
    /// died), the last known view is kept.
    fn sync_tree_mirror(&mut self) {
        let members: Vec<(NodeId, Option<NodeId>)> = (0..self.sim.len())
            .map(|i| NodeId(i as u32))
            .filter(|&n| self.sim.is_alive(n))
            .map(|n| (n, self.sim.app(n).parent().map(nid)))
            .collect();
        let root = members
            .iter()
            .find(|&&(n, p)| p.is_none() && self.sim.app(n).engine().is_root())
            .map(|&(n, _)| n);
        if let Some(root) = root {
            self.tree = SpanningTree::from_membership(&members, self.sim.len(), root);
        }
    }

    /// The tree-maintenance service: repairs the spanning tree after
    /// `failed` crashed and issues control messages to the survivors.
    fn repair(&mut self, failed: ProcessId) {
        let alive = self.sim.alive().to_vec();
        let old_parents: Vec<Option<NodeId>> = (0..self.tree.capacity())
            .map(|i| self.tree.parent(NodeId(i as u32)))
            .collect();
        let mut report = self
            .tree
            .handle_failure(nid(failed), &self.topology, &alive);
        // Overlapping failures can strand orphan subtrees (e.g. a repair
        // that runs while the root's own crash is still unrepaired).
        // Retry every previously partitioned orphan now, and merge the
        // outcome into this repair's report.
        let mut pending = std::mem::take(&mut self.pending_orphans);
        pending.extend(report.partitioned.iter().copied());
        pending.sort_unstable();
        pending.dedup();
        let retry = self.tree.reattach_orphans(&pending, &self.topology, &alive);
        report.reattached.extend(retry.reattached.iter().copied());
        let mut affected: Vec<NodeId> = report
            .affected
            .iter()
            .chain(retry.affected.iter())
            .copied()
            .collect();
        affected.sort_unstable();
        affected.dedup();
        report.affected = affected;
        self.pending_orphans = retry.partitioned;
        // Orphans that stayed partitioned in this round's own failure are
        // also pending (reattach_orphans already retried them; keep only
        // the still-unattached ones — retry.partitioned covers both).
        let report = report;

        // The control plan itself is shared with the decentralized path:
        // `membership::repair_actions` derives the messages from the
        // repaired tree, the deploy layer only injects them.
        let now = self.sim.time();
        let service = nid(failed); // nominal "from" for injected control msgs
        let plan = crate::membership::repair_actions(
            &self.tree,
            &report,
            &old_parents,
            |n| self.sim.app(n).engine().children().to_vec(),
            failed,
        );
        for (dst, msg) in plan {
            self.sim.inject(now, service, dst, msg);
        }
    }

    /// The recovery path of the maintenance service: revive the node,
    /// reboot its monitor from stable storage, and rejoin it as a leaf.
    fn recover(&mut self, node: ProcessId) {
        if self.sim.is_alive(nid(node)) || self.tree.contains(nid(node)) {
            return; // never crashed, or already back
        }
        // Find an adopter first; without one the node stays down.
        let adopter = self
            .topology
            .neighbors(nid(node))
            .iter()
            .copied()
            .find(|&nb| self.tree.contains(nb) && self.sim.is_alive(nb));
        let Some(parent) = adopter else { return };

        self.sim.revive(nid(node));
        let mut rebooted = false;
        self.sim.with_app_ctx(nid(node), |app, ctx| {
            rebooted = app.reboot_from_checkpoint(ctx);
        });
        if !rebooted {
            // No stable storage: leave the node revived but detached (it
            // can still be adopted manually); do not rejoin the tree with
            // inconsistent volatile state.
            return;
        }
        self.tree.rejoin_leaf(nid(node), parent);
        let now = self.sim.time();
        let service = nid(node);
        self.sim
            .inject(now, service, parent, DetectMsg::AddChild { child: node });
        self.sim.inject(
            now,
            service,
            nid(node),
            DetectMsg::SetParent {
                parent: Some(pid(parent)),
            },
        );
    }

    /// All detections recorded anywhere in the network (roots past and
    /// present), sorted by time.
    ///
    /// This *observer* view includes logs of nodes that later crashed —
    /// convenient for analysis, though a real consumer would only see
    /// live roots' reports. Combined with failover re-publication,
    /// detection delivery across failures is at-least-once; consumers
    /// needing exactly-once should dedup by coverage.
    pub fn detections(&self) -> Vec<GlobalDetection> {
        let mut all: Vec<GlobalDetection> = self
            .sim
            .apps()
            .iter()
            .flat_map(|a| a.detections().iter().cloned())
            .collect();
        all.sort_by_key(|d| d.time);
        all
    }

    /// Network metrics (hop-weighted message counts etc.).
    pub fn metrics(&self) -> &NetMetrics {
        self.sim.metrics()
    }

    /// Interval messages sent network-wide (the paper's message count).
    pub fn interval_messages(&self) -> u64 {
        self.sim.apps().iter().map(|a| a.interval_msgs_sent()).sum()
    }

    /// The current (possibly repaired) spanning tree.
    pub fn tree(&self) -> &SpanningTree {
        &self.tree
    }

    /// Access to a node's monitor.
    pub fn app(&self, node: ProcessId) -> &MonitorApp {
        self.sim.app(nid(node))
    }

    /// True iff `node`'s monitor is currently up.
    pub fn is_alive(&self, node: ProcessId) -> bool {
        self.sim.is_alive(nid(node))
    }

    /// Number of nodes in the deployment.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// True iff the deployment has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Peak intervals resident at any single node (space accounting).
    pub fn peak_queue_len(&self) -> usize {
        self.sim
            .apps()
            .iter()
            .map(|a| a.engine().bank_stats().peak_queue_len)
            .max()
            .unwrap_or(0)
    }

    /// Sum over nodes of peak resident intervals (global space bound).
    pub fn total_peak_resident(&self) -> usize {
        self.sim
            .apps()
            .iter()
            .map(|a| a.engine().bank_stats().peak_resident)
            .sum()
    }
}
