//! Monitoring several conjunctive predicates over one spanning tree.
//!
//! Continuous-monitoring deployments rarely watch a single predicate:
//! a WSN tracks "all readings high", "all batteries low", "all nodes
//! calibrated" simultaneously. Each predicate `Φ_k` induces its own local
//! intervals and its own detection state, but the tree, the failure
//! handling, and (in a deployment) the transport are shared.
//! [`MultiDetector`] packages that as `k` full-coverage tenants of a
//! [`PredicateRegistry`], driven through one façade with failures applied
//! consistently to all.
//!
//! **Deprecated as the primary API.** `MultiDetector` predates the
//! registry and models the naive shape — every predicate pays for every
//! event, with *separate* per-predicate feed streams. It is retained as
//! the differential baseline for the registry's relevance filter (the
//! routing-equivalence tests and the tenancy bench compare against it)
//! and as a convenience for the "few predicates, all-process" case. New
//! code monitoring many predicates over one shared event stream should
//! use [`PredicateRegistry`](crate::registry::PredicateRegistry) with
//! member-restricted [`TenantSpec`](crate::registry::TenantSpec)s
//! directly.

use crate::hier::HierarchicalDetector;
use crate::registry::{PredicateRegistry, TenantSpec};
use crate::report::GlobalDetection;
use ftscp_intervals::Interval;
use ftscp_simnet::Topology;
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use serde::{Deserialize, Serialize};

/// Identifies one of the monitored predicates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PredicateId(pub u32);

/// `k` full-coverage tenants over one tree, fed per-predicate streams
/// (see the module docs for its deprecated-baseline status).
pub struct MultiDetector {
    registry: PredicateRegistry,
}

impl MultiDetector {
    /// Builds a detector for `predicates` independent conjunctive
    /// predicates over `tree`, registered as full-coverage tenants
    /// `PredicateId(0..predicates)`.
    pub fn new(tree: &SpanningTree, predicates: usize) -> Self {
        assert!(predicates > 0, "at least one predicate");
        let specs: Vec<TenantSpec> = (0..predicates)
            .map(|k| TenantSpec::full(PredicateId(k as u32)))
            .collect();
        MultiDetector {
            registry: PredicateRegistry::new(tree, &specs),
        }
    }

    /// Number of monitored predicates.
    pub fn predicate_count(&self) -> usize {
        self.registry.tenant_count()
    }

    /// Feeds a completed local interval of predicate `pred` (each
    /// predicate has its own stream — the pre-registry model).
    ///
    /// # Panics
    ///
    /// Panics on an unknown predicate id.
    pub fn feed(&mut self, pred: PredicateId, interval: Interval) {
        self.registry.feed_tenant(pred, interval);
    }

    /// §III-F: `node` crash-stops; the repair applies to every predicate's
    /// detector identically (the repair is deterministic given the same
    /// topology and tree state).
    pub fn fail_node(&mut self, node: ProcessId, topology: &Topology) {
        self.registry.fail_node(node, topology);
    }

    /// Root-level detections of predicate `pred`.
    pub fn root_solutions(&self, pred: PredicateId) -> &[GlobalDetection] {
        self.registry.root_solutions(pred)
    }

    /// The detector of one predicate (full API access).
    pub fn detector(&self, pred: PredicateId) -> &HierarchicalDetector {
        self.registry.detector(pred)
    }

    /// The backing registry (tenant slots, routing stats, clock pool).
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }

    /// Total detections across all predicates.
    pub fn total_detections(&self) -> usize {
        self.registry.total_detections()
    }

    /// All trees evolve in lockstep; expose the (shared) current shape.
    pub fn tree(&self) -> &SpanningTree {
        self.registry.detector(PredicateId(0)).tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_simnet::Topology;
    use ftscp_tree::SpanningTree;
    use ftscp_workload::RandomExecution;

    #[test]
    fn independent_predicates_detect_independently() {
        let n = 7;
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 2);
        // Predicate 0: 4 clean rounds. Predicate 1: 2 clean rounds.
        let exec0 = RandomExecution::builder(n)
            .intervals_per_process(4)
            .seed(1)
            .build();
        let exec1 = RandomExecution::builder(n)
            .intervals_per_process(2)
            .seed(2)
            .build();
        for iv in exec0.intervals_interleaved() {
            multi.feed(PredicateId(0), iv.clone());
        }
        for iv in exec1.intervals_interleaved() {
            multi.feed(PredicateId(1), iv.clone());
        }
        assert_eq!(multi.root_solutions(PredicateId(0)).len(), 4);
        assert_eq!(multi.root_solutions(PredicateId(1)).len(), 2);
        assert_eq!(multi.total_detections(), 6);
        assert_eq!(multi.predicate_count(), 2);
    }

    #[test]
    fn failure_applies_to_every_predicate() {
        let n = 7;
        let topo = Topology::dary_tree(n, 2, 1);
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 3);
        multi.fail_node(ProcessId(3), &topo);
        for k in 0..3 {
            assert!(!multi
                .detector(PredicateId(k))
                .tree()
                .contains(ftscp_simnet::NodeId(3)));
        }
        assert_eq!(multi.tree().node_count(), 6);
    }

    #[test]
    fn interleaved_feeding_keeps_predicates_isolated() {
        let n = 5;
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 2);
        let exec = RandomExecution::builder(n)
            .intervals_per_process(3)
            .seed(9)
            .build();
        // Feed the SAME intervals to both predicates, interleaved.
        for iv in exec.intervals_interleaved() {
            multi.feed(PredicateId(0), iv.clone());
            multi.feed(PredicateId(1), iv.clone());
        }
        assert_eq!(
            multi.root_solutions(PredicateId(0)).len(),
            multi.root_solutions(PredicateId(1)).len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn zero_predicates_rejected() {
        let tree = SpanningTree::balanced_dary(3, 2);
        let _ = MultiDetector::new(&tree, 0);
    }

    /// The satellite differential: the registry's relevance-filtered
    /// routing must produce per-tenant solution sequences bit-identical
    /// to the naive `MultiDetector` baseline (every tenant offered every
    /// event of the shared stream).
    #[test]
    fn registry_matches_naive_multidetector_baseline() {
        use crate::registry::{PredicateRegistry, TenantSpec};

        let n = 13;
        let tree = SpanningTree::balanced_dary(n, 3);
        let specs = vec![
            TenantSpec::full(PredicateId(0)),
            TenantSpec::restricted(PredicateId(1), vec![ProcessId(3), ProcessId(10)]),
            TenantSpec::restricted(
                PredicateId(2),
                vec![ProcessId(1), ProcessId(5), ProcessId(6)],
            ),
        ];
        let mut registry = PredicateRegistry::new(&tree, &specs);
        // Naive baseline: the same tenants, but every event broadcast to
        // every tenant — the pre-registry MultiDetector cost model.
        let mut naive = PredicateRegistry::new(&tree, &specs);
        // And the legacy façade itself for the full-coverage tenant.
        let mut legacy = MultiDetector::new(&tree, 1);

        let exec = RandomExecution::builder(n)
            .intervals_per_process(5)
            .seed(77)
            .build();
        for iv in exec.intervals_interleaved() {
            registry.ingest(iv.clone());
            naive.ingest_broadcast(iv.clone());
            legacy.feed(PredicateId(0), iv.clone());
        }
        for spec in &specs {
            assert_eq!(
                registry.tenant(spec.id).solution_sequence(),
                naive.tenant(spec.id).solution_sequence(),
                "tenant {:?} diverged registry-vs-naive",
                spec.id
            );
        }
        assert_eq!(
            registry.root_solutions(PredicateId(0)),
            legacy.root_solutions(PredicateId(0)),
            "full tenant must match the legacy façade bit-for-bit"
        );
        // The filter routed strictly fewer touches for the same answers.
        assert!(registry.stats().tenant_touches < naive.stats().broadcast_touches);
    }
}
