//! Monitoring several conjunctive predicates over one spanning tree.
//!
//! Continuous-monitoring deployments rarely watch a single predicate:
//! a WSN tracks "all readings high", "all batteries low", "all nodes
//! calibrated" simultaneously. Each predicate `Φ_k` induces its own local
//! intervals and its own detection state, but the tree, the failure
//! handling, and (in a deployment) the transport are shared.
//! [`MultiDetector`] packages that: `k` independent hierarchical detectors
//! driven through one façade, with failures applied consistently to all.

use crate::hier::HierarchicalDetector;
use crate::report::GlobalDetection;
use ftscp_intervals::Interval;
use ftscp_simnet::Topology;
use ftscp_tree::SpanningTree;
use ftscp_vclock::ProcessId;
use serde::{Deserialize, Serialize};

/// Identifies one of the monitored predicates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PredicateId(pub u32);

/// `k` hierarchical detectors over one tree.
pub struct MultiDetector {
    detectors: Vec<HierarchicalDetector>,
}

impl MultiDetector {
    /// Builds a detector for `predicates` independent conjunctive
    /// predicates over `tree`.
    pub fn new(tree: &SpanningTree, predicates: usize) -> Self {
        assert!(predicates > 0, "at least one predicate");
        MultiDetector {
            detectors: (0..predicates)
                .map(|_| HierarchicalDetector::new(tree))
                .collect(),
        }
    }

    /// Number of monitored predicates.
    pub fn predicate_count(&self) -> usize {
        self.detectors.len()
    }

    /// Feeds a completed local interval of predicate `pred`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown predicate id.
    pub fn feed(&mut self, pred: PredicateId, interval: Interval) {
        self.detectors[pred.0 as usize].feed(interval);
    }

    /// §III-F: `node` crash-stops; the repair applies to every predicate's
    /// detector identically (the repair is deterministic given the same
    /// topology and tree state).
    pub fn fail_node(&mut self, node: ProcessId, topology: &Topology) {
        for det in &mut self.detectors {
            det.fail_node(node, topology);
        }
    }

    /// Root-level detections of predicate `pred`.
    pub fn root_solutions(&self, pred: PredicateId) -> &[GlobalDetection] {
        self.detectors[pred.0 as usize].root_solutions()
    }

    /// The detector of one predicate (full API access).
    pub fn detector(&self, pred: PredicateId) -> &HierarchicalDetector {
        &self.detectors[pred.0 as usize]
    }

    /// Total detections across all predicates.
    pub fn total_detections(&self) -> usize {
        self.detectors
            .iter()
            .map(|d| d.root_solutions().len())
            .sum()
    }

    /// All trees evolve in lockstep; expose the (shared) current shape.
    pub fn tree(&self) -> &SpanningTree {
        self.detectors[0].tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftscp_simnet::Topology;
    use ftscp_tree::SpanningTree;
    use ftscp_workload::RandomExecution;

    #[test]
    fn independent_predicates_detect_independently() {
        let n = 7;
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 2);
        // Predicate 0: 4 clean rounds. Predicate 1: 2 clean rounds.
        let exec0 = RandomExecution::builder(n)
            .intervals_per_process(4)
            .seed(1)
            .build();
        let exec1 = RandomExecution::builder(n)
            .intervals_per_process(2)
            .seed(2)
            .build();
        for iv in exec0.intervals_interleaved() {
            multi.feed(PredicateId(0), iv.clone());
        }
        for iv in exec1.intervals_interleaved() {
            multi.feed(PredicateId(1), iv.clone());
        }
        assert_eq!(multi.root_solutions(PredicateId(0)).len(), 4);
        assert_eq!(multi.root_solutions(PredicateId(1)).len(), 2);
        assert_eq!(multi.total_detections(), 6);
        assert_eq!(multi.predicate_count(), 2);
    }

    #[test]
    fn failure_applies_to_every_predicate() {
        let n = 7;
        let topo = Topology::dary_tree(n, 2, 1);
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 3);
        multi.fail_node(ProcessId(3), &topo);
        for k in 0..3 {
            assert!(!multi
                .detector(PredicateId(k))
                .tree()
                .contains(ftscp_simnet::NodeId(3)));
        }
        assert_eq!(multi.tree().node_count(), 6);
    }

    #[test]
    fn interleaved_feeding_keeps_predicates_isolated() {
        let n = 5;
        let tree = SpanningTree::balanced_dary(n, 2);
        let mut multi = MultiDetector::new(&tree, 2);
        let exec = RandomExecution::builder(n)
            .intervals_per_process(3)
            .seed(9)
            .build();
        // Feed the SAME intervals to both predicates, interleaved.
        for iv in exec.intervals_interleaved() {
            multi.feed(PredicateId(0), iv.clone());
            multi.feed(PredicateId(1), iv.clone());
        }
        assert_eq!(
            multi.root_solutions(PredicateId(0)).len(),
            multi.root_solutions(PredicateId(1)).len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn zero_predicates_rejected() {
        let tree = SpanningTree::balanced_dary(3, 2);
        let _ = MultiDetector::new(&tree, 0);
    }
}
