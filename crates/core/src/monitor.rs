//! [`MonitorApp`] — one node's monitor process on the simulated network.

use crate::engine::{EngineCheckpoint, EngineOutput, NodeEngine};
use crate::nid;
use crate::protocol::{ConnCodec, DetectMsg, INTERVAL_MSG_OVERHEAD};
use crate::report::GlobalDetection;
use ftscp_intervals::Interval;
use ftscp_simnet::{Application, Ctx, NodeId, SimTime, TimerToken};
use ftscp_vclock::ProcessId;
use std::collections::{BTreeMap, VecDeque};

const TIMER_NEXT_INTERVAL: TimerToken = 1;
const TIMER_HEARTBEAT: TimerToken = 2;
const TIMER_RETRANSMIT: TimerToken = 3;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Heartbeat period along tree edges; `None` disables heartbeats
    /// (used by the message-counting experiments, which — like the paper —
    /// count only interval traffic).
    pub heartbeat_period: Option<SimTime>,
    /// Reliability layer for lossy links: when set, interval reports are
    /// held until cumulatively acknowledged by the parent and re-sent at
    /// this period. `None` assumes reliable channels (the paper's model).
    pub retransmit_period: Option<SimTime>,
    /// Maximum unacknowledged outputs re-sent per retransmit firing. A
    /// bounded burst keeps a long outage (crashed parent, partition) from
    /// flooding the network with the entire backlog at every firing; the
    /// cumulative-ack scheme drains the rest over subsequent firings.
    pub retransmit_burst: usize,
    /// Cap on the exponential backoff multiplier: after consecutive
    /// retransmit firings with no acknowledgement progress the period
    /// doubles up to `retransmit_period × cap`, then resets to the base
    /// period as soon as an ack makes progress (or a new parent is set).
    pub retransmit_backoff_cap: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            heartbeat_period: Some(SimTime::from_millis(50)),
            retransmit_period: None,
            retransmit_burst: 8,
            retransmit_backoff_cap: 8,
        }
    }
}

/// The per-node monitor: wraps a [`NodeEngine`], reports aggregated
/// intervals to the parent over the network, reassembles per-child FIFO
/// order on top of the non-FIFO channels, and applies tree-repair control
/// messages.
///
/// ## Non-FIFO channels and interval order
///
/// Algorithm 1's queues assume each child's intervals arrive in the order
/// they were produced (that is what makes queue heads "earliest remaining",
/// Theorem 2). The system model explicitly allows out-of-order delivery,
/// so the monitor restores per-child order with sequence numbers and a
/// reorder buffer — a standard engineering completion the paper leaves
/// implicit. Stale re-transmissions (possible after a reattachment
/// re-report) are dropped.
pub struct MonitorApp {
    me: ProcessId,
    engine: NodeEngine,
    parent: Option<ProcessId>,
    /// Local intervals this node will observe, with completion times
    /// (the simulated "application" whose predicate we monitor).
    schedule: VecDeque<(SimTime, Interval)>,
    config: MonitorConfig,
    /// Per-child reorder state: next expected seq + held-back intervals.
    reorder: BTreeMap<ProcessId, (u64, BTreeMap<u64, Interval>)>,
    /// Detections recorded while this node was a root.
    detections: Vec<GlobalDetection>,
    /// Interval messages sent (for per-node accounting).
    interval_msgs_sent: u64,
    /// Reliability layer: outputs not yet acknowledged by the parent,
    /// keyed by output sequence number.
    unacked: BTreeMap<u64, Interval>,
    /// Current retransmit backoff multiplier (1 = base period); doubles on
    /// each firing without ack progress up to the configured cap.
    retransmit_backoff: u32,
    /// Delta-codec state of the uplink to the current parent: fresh
    /// reports go out as stateful frames against the previous report's
    /// `lo`; retransmissions and re-reports are standalone and leave this
    /// untouched. Determines only the byte sizes charged to the simulated
    /// network — the detection path carries structured messages.
    uplink_codec: ConnCodec,
    /// Heartbeats observed: peer → last time.
    pub heartbeat_seen: BTreeMap<ProcessId, SimTime>,
    /// Last persisted checkpoint ("stable storage"): taken after every
    /// engine-state change when checkpointing is enabled.
    stable_checkpoint: Option<EngineCheckpoint>,
    checkpointing: bool,
}

impl MonitorApp {
    /// Builds a monitor for `me` with the given children and local
    /// interval schedule (must be sorted by time).
    pub fn new(
        me: ProcessId,
        parent: Option<ProcessId>,
        children: &[ProcessId],
        level: u32,
        schedule: Vec<(SimTime, Interval)>,
        config: MonitorConfig,
    ) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut engine = NodeEngine::new(me, children, parent.is_none());
        engine.set_level(level);
        MonitorApp {
            me,
            engine,
            parent,
            schedule: schedule.into(),
            config,
            reorder: BTreeMap::new(),
            detections: Vec::new(),
            interval_msgs_sent: 0,
            unacked: BTreeMap::new(),
            retransmit_backoff: 1,
            uplink_codec: ConnCodec::new(),
            heartbeat_seen: BTreeMap::new(),
            stable_checkpoint: None,
            checkpointing: false,
        }
    }

    /// Enables write-through checkpointing: after every state change the
    /// engine image is "persisted" (kept aside), surviving a crash of the
    /// in-memory state. Models a node with stable storage.
    pub fn with_checkpointing(mut self) -> Self {
        self.enable_checkpointing();
        self
    }

    /// Non-consuming form of [`with_checkpointing`](Self::with_checkpointing).
    pub fn enable_checkpointing(&mut self) {
        self.checkpointing = true;
        self.stable_checkpoint = Some(self.engine.checkpoint());
    }

    /// The last persisted checkpoint, if checkpointing is enabled.
    pub fn stable_checkpoint(&self) -> Option<&EngineCheckpoint> {
        self.stable_checkpoint.as_ref()
    }

    /// Reboot: discard volatile state and restore the engine from stable
    /// storage. The node rejoins as a leaf (its children have been
    /// re-parented during its downtime): child queues are dropped, the
    /// reorder buffers and unacked set are volatile and reset, and the
    /// interval schedule continues from wherever simulated time now is.
    /// Returns false if no checkpoint exists.
    pub fn reboot_from_checkpoint(&mut self, ctx: &mut Ctx<'_, DetectMsg>) -> bool {
        let Some(cp) = self.stable_checkpoint.clone() else {
            return false;
        };
        let mut engine = NodeEngine::restore(cp);
        engine.set_root(false);
        engine.set_level(1);
        // Drop stale child queues; discard any released (stale) outputs —
        // they refer to children that now live elsewhere.
        for child in engine.children().to_vec() {
            let _ = engine.remove_child(child);
        }
        self.engine = engine;
        self.parent = None; // the maintenance service will SetParent us
        self.reorder.clear();
        self.unacked.clear();
        self.retransmit_backoff = 1;
        self.uplink_codec.reset(); // connection state is volatile
                                   // Intervals that would have completed during the outage never
                                   // happened (the node was down): drop them.
        while let Some(&(t, _)) = self.schedule.front() {
            if t <= ctx.now() {
                self.schedule.pop_front();
            } else {
                break;
            }
        }
        // Re-arm volatile timers.
        self.arm_next_interval(ctx);
        if let Some(period) = self.config.heartbeat_period {
            ctx.set_timer(period, TIMER_HEARTBEAT);
        }
        if let Some(period) = self.config.retransmit_period {
            ctx.set_timer(period, TIMER_RETRANSMIT);
        }
        true
    }

    fn persist(&mut self) {
        if self.checkpointing {
            self.stable_checkpoint = Some(self.engine.checkpoint());
        }
    }

    /// Outputs awaiting parent acknowledgement (reliability layer).
    pub fn unacked_count(&self) -> usize {
        self.unacked.len()
    }

    /// Detections recorded at this node (non-empty only for roots).
    pub fn detections(&self) -> &[GlobalDetection] {
        &self.detections
    }

    /// This node's current parent.
    pub fn parent(&self) -> Option<ProcessId> {
        self.parent
    }

    /// The wrapped engine (for statistics).
    pub fn engine(&self) -> &NodeEngine {
        &self.engine
    }

    /// Interval messages this node originated.
    pub fn interval_msgs_sent(&self) -> u64 {
        self.interval_msgs_sent
    }

    /// Tree peers (parent + children) whose last heartbeat is older than
    /// `timeout` at time `now` — the local failure-detector view that a
    /// full deployment's maintenance service would act on. Peers never
    /// heard from at all are suspected once a full timeout has elapsed
    /// since the start of time.
    pub fn suspects(&self, now: SimTime, timeout: SimTime) -> Vec<ProcessId> {
        let mut peers: Vec<ProcessId> = self.engine.children().to_vec();
        if let Some(p) = self.parent {
            peers.push(p);
        }
        peers
            .into_iter()
            .filter(|peer| {
                let last = self
                    .heartbeat_seen
                    .get(peer)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                now.saturating_sub(last) > timeout
            })
            .collect()
    }

    fn handle_outputs(&mut self, ctx: &mut Ctx<'_, DetectMsg>, outputs: Vec<EngineOutput>) {
        for out in outputs {
            match out {
                EngineOutput::ToParent { interval, .. } => {
                    if self.config.retransmit_period.is_some() {
                        self.unacked.insert(interval.seq, interval.clone());
                    }
                    if let Some(parent) = self.parent {
                        self.interval_msgs_sent += 1;
                        // Fresh report: the next stateful frame of the
                        // uplink stream, charged at its delta-coded size.
                        let size =
                            INTERVAL_MSG_OVERHEAD + self.uplink_codec.stateful_len(&interval);
                        self.uplink_codec.note_sent(&interval);
                        ctx.send_sized(
                            nid(parent),
                            DetectMsg::Interval {
                                from: self.me,
                                interval,
                                resync: false,
                            },
                            size,
                        );
                    }
                    // No parent (orphan root): the detection is recorded at
                    // engine level; nothing to transmit.
                }
                EngineOutput::Detected(sol) => {
                    self.detections
                        .push(GlobalDetection::new(self.me, sol, ctx.now()));
                }
            }
        }
    }

    /// Current retransmit backoff multiplier (for tests/telemetry).
    pub fn retransmit_backoff(&self) -> u32 {
        self.retransmit_backoff
    }

    /// Local intervals not yet observed (schedule remainder).
    pub fn pending_schedule_len(&self) -> usize {
        self.schedule.len()
    }

    /// Re-sends unacknowledged outputs to the current parent, oldest
    /// first, flagging the first as a stream resync. At most
    /// `retransmit_burst` outputs go out per call — a long outage must not
    /// flood the network with the whole backlog at once; the cumulative
    /// ack moves the window so later calls pick up where this one stopped.
    fn retransmit_unacked(&mut self, ctx: &mut Ctx<'_, DetectMsg>, resync_first: bool) {
        let Some(parent) = self.parent else { return };
        let mut first = true;
        for interval in self.unacked.values().take(self.config.retransmit_burst) {
            self.interval_msgs_sent += 1;
            // Retransmissions are standalone frames (decodable by a parent
            // that missed the originals) and do not advance the uplink
            // codec — the live stream's base is unaffected by re-sends.
            let size = INTERVAL_MSG_OVERHEAD + ConnCodec::standalone_len(interval);
            ctx.send_sized(
                nid(parent),
                DetectMsg::Interval {
                    from: self.me,
                    interval: interval.clone(),
                    resync: resync_first && first,
                },
                size,
            );
            first = false;
        }
    }

    /// Feeds `interval` from `child` through the per-child reorder buffer,
    /// delivering to the engine everything that is now in order.
    fn deliver_in_order(
        &mut self,
        ctx: &mut Ctx<'_, DetectMsg>,
        child: ProcessId,
        interval: Interval,
        resync: bool,
    ) {
        let ready = {
            let (next_expected, buffer) = self
                .reorder
                .entry(child)
                .or_insert_with(|| (0, BTreeMap::new()));
            if resync && interval.seq > *next_expected {
                // Re-report after a tree repair: earlier sequence numbers
                // were consumed by the child's previous parent and will
                // never arrive here.
                *next_expected = interval.seq;
                buffer.retain(|&s, _| s >= interval.seq);
            }
            match interval.seq.cmp(next_expected) {
                std::cmp::Ordering::Less => Vec::new(), // stale duplicate
                std::cmp::Ordering::Greater => {
                    buffer.insert(interval.seq, interval);
                    Vec::new()
                }
                std::cmp::Ordering::Equal => {
                    let mut ready = vec![interval];
                    let mut next = *next_expected + 1;
                    while let Some(iv) = buffer.remove(&next) {
                        ready.push(iv);
                        next += 1;
                    }
                    *next_expected = next;
                    ready
                }
            }
        };
        for iv in ready {
            let outputs = self.engine.on_child_interval(child, iv);
            self.handle_outputs(ctx, outputs);
        }
    }

    fn arm_next_interval(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        if let Some(&(t, _)) = self.schedule.front() {
            let delay = t.saturating_sub(ctx.now());
            ctx.set_timer(delay, TIMER_NEXT_INTERVAL);
        }
    }
}

impl Application for MonitorApp {
    type Msg = DetectMsg;

    fn on_init(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        self.arm_next_interval(ctx);
        if let Some(period) = self.config.heartbeat_period {
            ctx.set_timer(period, TIMER_HEARTBEAT);
        }
        if let Some(period) = self.config.retransmit_period {
            ctx.set_timer(period, TIMER_RETRANSMIT);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DetectMsg>, token: TimerToken) {
        match token {
            TIMER_NEXT_INTERVAL => {
                while let Some(&(t, _)) = self.schedule.front() {
                    if t > ctx.now() {
                        break;
                    }
                    let (_, interval) = self.schedule.pop_front().expect("peeked");
                    let outputs = self.engine.on_local_interval(interval);
                    self.handle_outputs(ctx, outputs);
                }
                self.persist();
                self.arm_next_interval(ctx);
            }
            TIMER_RETRANSMIT => {
                if let Some(period) = self.config.retransmit_period {
                    if self.unacked.is_empty() {
                        // Nothing outstanding: idle at the base period.
                        self.retransmit_backoff = 1;
                    } else {
                        self.retransmit_unacked(ctx, false);
                        // No ack progress since the last firing (an ack
                        // would have reset the multiplier): back off
                        // exponentially so a dead or partitioned parent
                        // is not hammered at full rate.
                        self.retransmit_backoff = (self.retransmit_backoff * 2)
                            .min(self.config.retransmit_backoff_cap.max(1));
                    }
                    let delay = SimTime(period.0 * u64::from(self.retransmit_backoff));
                    ctx.set_timer(delay, TIMER_RETRANSMIT);
                }
            }
            TIMER_HEARTBEAT => {
                if let Some(period) = self.config.heartbeat_period {
                    let me = self.me;
                    let mut peers: Vec<ProcessId> = self.engine.children().to_vec();
                    if let Some(p) = self.parent {
                        peers.push(p);
                    }
                    for peer in peers {
                        ctx.send(nid(peer), DetectMsg::Heartbeat { from: me });
                    }
                    ctx.set_timer(period, TIMER_HEARTBEAT);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DetectMsg>, _from: NodeId, msg: DetectMsg) {
        match msg {
            DetectMsg::Interval {
                from,
                interval,
                resync,
            } => {
                self.deliver_in_order(ctx, from, interval, resync);
                // Reliability layer: cumulatively acknowledge the child's
                // stream position (idempotent; sent per received report).
                if self.config.retransmit_period.is_some() {
                    if let Some((next_expected, _)) = self.reorder.get(&from) {
                        let upto = *next_expected;
                        ctx.send(
                            nid(from),
                            DetectMsg::Ack {
                                from: self.me,
                                upto,
                            },
                        );
                    }
                }
            }
            DetectMsg::Ack { upto, .. } => {
                let before = self.unacked.len();
                self.unacked.retain(|&seq, _| seq >= upto);
                if self.unacked.len() < before {
                    // Ack progress: the parent is responsive again, so the
                    // retransmit timer returns to its base period.
                    self.retransmit_backoff = 1;
                }
            }
            DetectMsg::Heartbeat { from } => {
                self.heartbeat_seen.insert(from, ctx.now());
            }
            DetectMsg::SetParent { parent } => {
                self.parent = parent;
                self.engine.set_root(parent.is_none());
                // A fresh parent gets a fresh backoff window and a cold
                // uplink codec (the old connection's base is meaningless
                // to the new parent's decoder).
                self.retransmit_backoff = 1;
                self.uplink_codec.reset();
                if self.config.retransmit_period.is_some() && !self.unacked.is_empty() {
                    // Reliability layer: the new parent needs everything
                    // the dead parent never acknowledged.
                    self.retransmit_unacked(ctx, true);
                } else if let (Some(p), Some(last)) = (parent, self.engine.last_output().cloned()) {
                    // Re-report the latest output so the new parent's
                    // fresh queue is seeded (§III-B). Standalone frame:
                    // the new parent's decoder is cold.
                    self.interval_msgs_sent += 1;
                    let size = INTERVAL_MSG_OVERHEAD + ConnCodec::standalone_len(&last);
                    ctx.send_sized(
                        nid(p),
                        DetectMsg::Interval {
                            from: self.me,
                            interval: last,
                            resync: true,
                        },
                        size,
                    );
                }
            }
            DetectMsg::AddChild { child } => {
                if !self.engine.has_child(child) {
                    self.engine.add_child(child);
                    // A fresh queue accepts any sequence number.
                    self.reorder.remove(&child);
                }
            }
            DetectMsg::RemoveChild { child } => {
                self.reorder.remove(&child);
                let outputs = self.engine.remove_child(child);
                self.handle_outputs(ctx, outputs);
            }
            DetectMsg::PromoteRoot => {
                self.parent = None;
                self.engine.set_root(true);
                // Fold the last output (shipped only to the dead root)
                // back into detection.
                let outputs = self.engine.reseed_last_output();
                self.handle_outputs(ctx, outputs);
            }
            DetectMsg::DemoteRoot => {
                self.engine.set_root(false);
            }
        }
        self.persist();
    }

    fn msg_size(msg: &DetectMsg) -> usize {
        msg.wire_size()
    }
}
