//! [`MonitorApp`] — one node's monitor process on the simulated network.
//!
//! All protocol logic (queue feeding, reorder buffers, acks/retransmits,
//! uplink codec state, tree-repair control messages) lives in the
//! transport-agnostic [`MonitorCore`](crate::transport::MonitorCore);
//! this wrapper adds only what is simulator-specific: the local interval
//! *schedule* (the simulated application whose predicate we monitor),
//! timer plumbing, and crash/reboot checkpointing. The TCP runtime in
//! `ftscp-net` wraps the very same core, which is what makes the two
//! backends differentially comparable.

use crate::engine::{EngineCheckpoint, NodeEngine};
use crate::membership::{Membership, MembershipEvent};
use crate::protocol::DetectMsg;
use crate::report::GlobalDetection;
use crate::transport::MonitorCore;
use ftscp_intervals::{Interval, SweepMode};
use ftscp_simnet::{Application, Ctx, NodeId, SimTime, TimerToken};
use ftscp_vclock::ProcessId;
use std::collections::{BTreeMap, VecDeque};

const TIMER_NEXT_INTERVAL: TimerToken = 1;
const TIMER_HEARTBEAT: TimerToken = 2;
const TIMER_RETRANSMIT: TimerToken = 3;
const TIMER_SUSPECT: TimerToken = 4;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Heartbeat period along tree edges; `None` disables heartbeats
    /// (used by the message-counting experiments, which — like the paper —
    /// count only interval traffic).
    pub heartbeat_period: Option<SimTime>,
    /// Reliability layer for lossy links: when set, interval reports are
    /// held until cumulatively acknowledged by the parent and re-sent at
    /// this period. `None` assumes reliable channels (the paper's model).
    pub retransmit_period: Option<SimTime>,
    /// Maximum unacknowledged outputs re-sent per retransmit firing. A
    /// bounded burst keeps a long outage (crashed parent, partition) from
    /// flooding the network with the entire backlog at every firing; the
    /// cumulative-ack scheme drains the rest over subsequent firings.
    pub retransmit_burst: usize,
    /// Cap on the exponential backoff multiplier: after consecutive
    /// retransmit firings with no acknowledgement progress the period
    /// doubles up to `retransmit_period × cap`, then resets to the base
    /// period as soon as an ack makes progress (or a new parent is set).
    pub retransmit_backoff_cap: u32,
    /// Decentralized failure detection: when set, the node itself runs
    /// [`MonitorCore::membership_tick`] on a timer with this suspicion
    /// timeout — a silent child's queue is dropped and a silent parent
    /// triggers the grandparent-adoption handshake, with no harness
    /// involvement. `None` (the default) leaves repair to the
    /// deployment's maintenance service (the clairvoyant oracle).
    pub suspect_timeout: Option<SimTime>,
    /// Sweep evaluation strategy installed into every node engine. The
    /// default is [`SweepMode::Incremental`] unless the
    /// `FTSCP_SWEEP_THREADS` env var is set, in which case the whole
    /// deployment runs `AggregateParallel { threads: 0 }` (resolving the
    /// worker count from that same variable) — the CI lever that forces
    /// the tier-1 suite through the parallel sweep at a chosen thread
    /// count. Detection outcomes are mode-invariant, so flipping this
    /// can never change what a test observes, only how it is computed.
    pub sweep_mode: SweepMode,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            heartbeat_period: Some(SimTime::from_millis(50)),
            retransmit_period: None,
            retransmit_burst: 8,
            retransmit_backoff_cap: 8,
            suspect_timeout: None,
            sweep_mode: if std::env::var(ftscp_intervals::par::SWEEP_THREADS_ENV).is_ok() {
                SweepMode::AggregateParallel { threads: 0 }
            } else {
                SweepMode::default()
            },
        }
    }
}

/// The per-node monitor on the simulated network: a [`MonitorCore`] plus
/// the node's local interval schedule and timer/checkpoint plumbing.
pub struct MonitorApp {
    core: MonitorCore,
    /// Local intervals this node will observe, with completion times
    /// (the simulated "application" whose predicate we monitor).
    schedule: VecDeque<(SimTime, Interval)>,
    /// Last persisted checkpoint ("stable storage"): taken after every
    /// engine-state change when checkpointing is enabled.
    stable_checkpoint: Option<EngineCheckpoint>,
    checkpointing: bool,
}

impl MonitorApp {
    /// Builds a monitor for `me` with the given children and local
    /// interval schedule (must be sorted by time).
    pub fn new(
        me: ProcessId,
        parent: Option<ProcessId>,
        children: &[ProcessId],
        level: u32,
        schedule: Vec<(SimTime, Interval)>,
        config: MonitorConfig,
    ) -> Self {
        debug_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        MonitorApp {
            core: MonitorCore::new(me, parent, children, level, config),
            schedule: schedule.into(),
            stable_checkpoint: None,
            checkpointing: false,
        }
    }

    /// Enables write-through checkpointing: after every state change the
    /// engine image is "persisted" (kept aside), surviving a crash of the
    /// in-memory state. Models a node with stable storage.
    pub fn with_checkpointing(mut self) -> Self {
        self.enable_checkpointing();
        self
    }

    /// Non-consuming form of [`with_checkpointing`](Self::with_checkpointing).
    pub fn enable_checkpointing(&mut self) {
        self.checkpointing = true;
        self.stable_checkpoint = Some(self.core.engine.checkpoint());
    }

    /// The last persisted checkpoint, if checkpointing is enabled.
    pub fn stable_checkpoint(&self) -> Option<&EngineCheckpoint> {
        self.stable_checkpoint.as_ref()
    }

    /// Reboot: discard volatile state and restore the engine from stable
    /// storage. The node rejoins as a leaf (its children have been
    /// re-parented during its downtime): child queues are dropped, the
    /// reorder buffers and unacked set are volatile and reset, and the
    /// interval schedule continues from wherever simulated time now is.
    /// Returns false if no checkpoint exists.
    pub fn reboot_from_checkpoint(&mut self, ctx: &mut Ctx<'_, DetectMsg>) -> bool {
        let Some(cp) = self.stable_checkpoint.clone() else {
            return false;
        };
        let mut engine = NodeEngine::restore(cp);
        engine.set_root(false);
        engine.set_level(1);
        // Drop stale child queues; discard any released (stale) outputs —
        // they refer to children that now live elsewhere.
        for child in engine.children().to_vec() {
            let _ = engine.remove_child(child);
        }
        self.core.engine = engine;
        self.core.parent = None; // the maintenance service will SetParent us
        self.core.reorder.clear();
        self.core.unacked.clear();
        self.core.retransmit_backoff = 1;
        self.core.uplink_codec.reset(); // connection state is volatile
                                        // Fresh incarnation: peers must treat beacons from the crashed
                                        // life as stale. Peer-epoch observations are volatile too.
        self.core.membership = Membership::new(self.core.membership.epoch() + 1);
        // Intervals that would have completed during the outage never
        // happened (the node was down): drop them.
        while let Some(&(t, _)) = self.schedule.front() {
            if t <= ctx.now() {
                self.schedule.pop_front();
            } else {
                break;
            }
        }
        // Re-arm volatile timers.
        self.arm_next_interval(ctx);
        if let Some(period) = self.core.config.heartbeat_period {
            ctx.set_timer(period, TIMER_HEARTBEAT);
        }
        if let Some(period) = self.core.config.retransmit_period {
            ctx.set_timer(period, TIMER_RETRANSMIT);
        }
        self.arm_suspect_timer(ctx);
        true
    }

    fn persist(&mut self) {
        if self.checkpointing {
            self.stable_checkpoint = Some(self.core.engine.checkpoint());
        }
    }

    /// Outputs awaiting parent acknowledgement (reliability layer).
    pub fn unacked_count(&self) -> usize {
        self.core.unacked_count()
    }

    /// Detections recorded at this node (non-empty only for roots).
    pub fn detections(&self) -> &[GlobalDetection] {
        self.core.detections()
    }

    /// This node's current parent.
    pub fn parent(&self) -> Option<ProcessId> {
        self.core.parent()
    }

    /// The wrapped engine (for statistics).
    pub fn engine(&self) -> &NodeEngine {
        self.core.engine()
    }

    /// Interval messages this node originated.
    pub fn interval_msgs_sent(&self) -> u64 {
        self.core.interval_msgs_sent()
    }

    /// Interval messages sent through the re-report/resync path.
    pub fn re_report_msgs(&self) -> u64 {
        self.core.re_report_msgs()
    }

    /// Bytes billed for the re-report/resync path.
    pub fn re_report_bytes(&self) -> u64 {
        self.core.re_report_bytes()
    }

    /// This node's membership view (epoch, repair state, grandparent).
    pub fn membership(&self) -> &Membership {
        self.core.membership()
    }

    /// Heartbeats observed so far: peer → last time.
    pub fn heartbeat_seen(&self) -> &BTreeMap<ProcessId, SimTime> {
        self.core.heartbeat_seen()
    }

    /// Tree peers (parent + children) whose last heartbeat is older than
    /// `timeout` at time `now` — see [`MonitorCore::suspects`].
    pub fn suspects(&self, now: SimTime, timeout: SimTime) -> Vec<ProcessId> {
        self.core.suspects(now, timeout)
    }

    /// Current retransmit backoff multiplier (for tests/telemetry).
    pub fn retransmit_backoff(&self) -> u32 {
        self.core.retransmit_backoff()
    }

    /// Local intervals not yet observed (schedule remainder).
    pub fn pending_schedule_len(&self) -> usize {
        self.schedule.len()
    }

    fn arm_next_interval(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        if let Some(&(t, _)) = self.schedule.front() {
            let delay = t.saturating_sub(ctx.now());
            ctx.set_timer(delay, TIMER_NEXT_INTERVAL);
        }
    }

    /// Suspicion-check period: half the timeout, so a dead peer is caught
    /// within 1.5× the configured timeout in the worst case.
    fn suspect_period(timeout: SimTime) -> SimTime {
        SimTime((timeout.as_micros() / 2).max(1))
    }

    fn arm_suspect_timer(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        if let Some(timeout) = self.core.config.suspect_timeout {
            ctx.set_timer(Self::suspect_period(timeout), TIMER_SUSPECT);
        }
    }
}

impl Application for MonitorApp {
    type Msg = DetectMsg;

    fn on_init(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        self.arm_next_interval(ctx);
        if let Some(period) = self.core.config.heartbeat_period {
            ctx.set_timer(period, TIMER_HEARTBEAT);
        }
        if let Some(period) = self.core.config.retransmit_period {
            ctx.set_timer(period, TIMER_RETRANSMIT);
        }
        self.arm_suspect_timer(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DetectMsg>, token: TimerToken) {
        match token {
            TIMER_NEXT_INTERVAL => {
                while let Some(&(t, _)) = self.schedule.front() {
                    if t > ctx.now() {
                        break;
                    }
                    let (_, interval) = self.schedule.pop_front().expect("peeked");
                    self.core.observe_local(interval, ctx);
                }
                self.persist();
                self.arm_next_interval(ctx);
            }
            TIMER_RETRANSMIT => {
                if let Some(delay) = self.core.on_retransmit_due(ctx) {
                    ctx.set_timer(delay, TIMER_RETRANSMIT);
                }
            }
            TIMER_HEARTBEAT => {
                if let Some(period) = self.core.config.heartbeat_period {
                    self.core.send_heartbeats(ctx);
                    ctx.set_timer(period, TIMER_HEARTBEAT);
                }
            }
            TIMER_SUSPECT => {
                if let Some(timeout) = self.core.config.suspect_timeout {
                    let events = self.core.membership_tick(timeout, ctx);
                    if events
                        .iter()
                        .any(|e| matches!(e, MembershipEvent::AdoptionStarted { .. }))
                    {
                        // The simulated network routes by id: the handshake
                        // can go out immediately (the TCP runtime instead
                        // re-dials its uplink first — see `ftscp-net`).
                        self.core.send_adoption_request(ctx);
                    }
                    if !events.is_empty() {
                        self.persist();
                    }
                    ctx.set_timer(Self::suspect_period(timeout), TIMER_SUSPECT);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DetectMsg>, _from: NodeId, msg: DetectMsg) {
        self.core.on_message(msg, ctx);
        self.persist();
    }

    fn msg_size(msg: &DetectMsg) -> usize {
        msg.wire_size()
    }
}
